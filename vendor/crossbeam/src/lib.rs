//! Offline stand-in for `crossbeam`, covering `crossbeam::thread::scope`.
//!
//! Backed by `std::thread::scope` (stable since 1.63), wrapped in
//! crossbeam's result-returning signature. Nested scope handles are not
//! supported: the closure passed to [`thread::Scope::spawn`] receives a
//! placeholder token instead of a re-entrant scope, which is all this
//! workspace's fan-out/join usage needs.

pub mod thread {
    //! Scoped threads with the crossbeam calling convention.

    /// Token passed to spawned closures where crossbeam would pass the scope.
    ///
    /// Spawning nested scoped threads through it is unsupported.
    pub struct SpawnToken(());

    /// Scope handle for spawning borrowing threads.
    pub struct Scope<'scope, 'env> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle joining one spawned thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result
        /// (`Err` if it panicked).
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure's argument is a placeholder
        /// for crossbeam's nested scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&SpawnToken) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle(self.inner.spawn(move || f(&SpawnToken(()))))
        }
    }

    /// Runs `f` with a scope in which borrowing threads can be spawned; all
    /// spawned threads are joined before this returns.
    ///
    /// Unlike crossbeam, a panicking child propagates by panicking here
    /// rather than by returning `Err`; callers that `.expect()` the result
    /// observe the same abort-on-panic behaviour either way.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_borrowing_threads() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|scope| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|part| scope.spawn(move |_| part.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
