//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! value-tree serialization framework under serde's names: [`Serialize`]
//! turns a value into a JSON-shaped [`Value`], [`Deserialize`] rebuilds it,
//! and the re-exported derive macros generate both impls. The shapes match
//! real serde's JSON conventions (externally tagged enums, newtype structs as
//! their inner value, non-finite floats as null) so persisted files keep
//! their schema if the real crates ever return.
//!
//! `serde_json` in `vendor/serde_json` builds its text layer on this tree.

mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Number, Value};

/// Serialization error (unused by the tree builder itself, present for API
/// compatibility and used by [`Deserialize`] impls).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible to a [`Value`] tree.
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn serialize(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from `value`.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(unexpected("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| unexpected("unsigned integer", value))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| unexpected("integer", value))?;
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                // Like serde_json: NaN and infinities have no JSON number
                // representation and serialize as null.
                let f = *self as f64;
                if f.is_finite() {
                    Value::Number(Number::from_f64(f))
                } else {
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                value
                    .as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| unexpected("number", value))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(unexpected("string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            other => Err(unexpected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let items = match value {
                    Value::Array(items) => items,
                    other => return Err(unexpected("array", other)),
                };
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected array of length {expected}, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => Err(unexpected("object", other)),
        }
    }
}

// Matches upstream serde's representation: `{"secs": u64, "nanos": u32}`.
impl Serialize for std::time::Duration {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), self.as_secs().serialize()),
            ("nanos".to_string(), self.subsec_nanos().serialize()),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let secs: u64 = __private::field(value, "secs")?;
        let nanos: u32 = __private::field(value, "nanos")?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

fn unexpected(expected: &str, found: &Value) -> Error {
    Error::custom(format!("expected {expected}, found {}", found.kind()))
}

/// Support code referenced by the output of the derive macros. Not public
/// API; path-stable because generated code names it.
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Looks up `name` in the fields of an object `Value` and deserializes
    /// it, treating a missing field as JSON `null` (so `Option` fields may be
    /// omitted). Errors are prefixed with the field name.
    pub fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, Error> {
        let entries = match value {
            Value::Object(entries) => entries,
            other => {
                return Err(Error::custom(format!(
                    "expected object, found {}",
                    other.kind()
                )))
            }
        };
        let found = entries
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or(&Value::Null);
        T::deserialize(found).map_err(|e| Error::custom(format!("field {name:?}: {e}")))
    }

    /// Unwraps the payload of an externally tagged enum variant:
    /// `{"Variant": payload}` → `("Variant", payload)`. A bare string is a
    /// unit variant with a null payload.
    pub fn variant(value: &Value) -> Result<(&str, &Value), Error> {
        match value {
            Value::String(name) => Ok((name, &Value::Null)),
            Value::Object(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), &entries[0].1))
            }
            other => Err(Error::custom(format!(
                "expected enum (string or single-key object), found {}",
                other.kind()
            ))),
        }
    }
}
