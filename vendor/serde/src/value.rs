//! The JSON-shaped value tree shared by `serde` and `serde_json`.
//!
//! Lives here (rather than in `serde_json`) because the [`Serialize`] trait
//! produces it directly; `serde_json` re-exports it as `serde_json::Value`.
//!
//! Objects preserve insertion order (a `Vec` of pairs, like serde_json with
//! `preserve_order`), so serialized structs keep their field order.

use std::fmt;
use std::ops::Index;

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A finite float.
    Float(f64),
}

impl Number {
    /// Wraps a `u64`.
    pub fn from_u64(v: u64) -> Self {
        Number::UInt(v)
    }

    /// Wraps an `i64`, normalizing non-negative values to [`Number::UInt`].
    pub fn from_i64(v: i64) -> Self {
        if v >= 0 {
            Number::UInt(v as u64)
        } else {
            Number::Int(v)
        }
    }

    /// Wraps a finite `f64`, normalizing integral values without precision
    /// loss to integers (so `2.0` round-trips as `2`, matching JSON text).
    pub fn from_f64(v: f64) -> Self {
        if v.fract() == 0.0 && v.abs() < 9.007_199_254_740_992e15 {
            // 2^53: below this every integral f64 is exact.
            if v >= 0.0 {
                Number::UInt(v as u64)
            } else {
                Number::Int(v as i64)
            }
        } else {
            Number::Float(v)
        }
    }

    /// This number as `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::UInt(v) => v as f64,
            Number::Int(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// This number as `u64` if non-negative integral.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::UInt(v) => Some(v),
            Number::Int(_) | Number::Float(_) => None,
        }
    }

    /// This number as `i64` if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::UInt(v) => i64::try_from(v).ok(),
            Number::Int(v) => Some(v),
            Number::Float(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::UInt(v) => write!(f, "{v}"),
            Number::Int(v) => write!(f, "{v}"),
            Number::Float(v) => {
                // Keep a float marker so the value re-parses as written.
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; field order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable name of this value's JSON type.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// `true` if this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// `true` if this is a number.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// `true` if this is a string.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// `true` if this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// `true` if this is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// The number as `f64`, if a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The number as non-negative `u64`, if one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `i64`, if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object entries (in insertion order), if an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up a field of an object; `None` for missing fields or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

const NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;
    /// Field access; missing fields and non-objects index to `Null` (like
    /// serde_json).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    /// Array element access; out of range indexes to `Null`.
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(n) => {
                        #[allow(unused_comparisons)]
                        if *other < 0 {
                            n.as_i64() == Some(*other as i64)
                        } else {
                            n.as_u64() == Some(*other as u64)
                        }
                    }
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_missing_fields_yields_null() {
        let v = Value::Object(vec![("a".into(), Value::Bool(true))]);
        assert_eq!(v["a"], true);
        assert!(v["missing"].is_null());
        assert!(v["a"]["nested"].is_null());
    }

    #[test]
    fn numbers_compare_across_representations() {
        let v = Value::Number(Number::from_f64(16.0));
        assert_eq!(v, 16);
        assert_eq!(v, 16u64);
        assert_eq!(v.as_u64(), Some(16));
        let neg = Value::Number(Number::from_i64(-3));
        assert_eq!(neg, -3);
        assert_eq!(neg.as_u64(), None);
    }

    #[test]
    fn integral_floats_normalize() {
        assert_eq!(Number::from_f64(2.0), Number::UInt(2));
        assert_eq!(Number::from_f64(2.5), Number::Float(2.5));
        assert_eq!(Number::from_f64(-4.0), Number::Int(-4));
    }
}
