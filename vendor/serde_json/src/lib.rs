//! Offline stand-in for `serde_json`, layered on the vendored `serde`
//! value tree.
//!
//! Serialization walks the [`Value`] produced by `serde::Serialize` and
//! renders JSON text (compact or pretty, 2-space indent); deserialization
//! parses JSON text into a [`Value`] and hands it to `serde::Deserialize`.
//! Output conventions match real serde_json where this workspace can
//! observe them: object field order is preserved, non-finite floats were
//! already mapped to `null` by the serializer, and `to_string_pretty`
//! indents with two spaces.

mod parse;
mod write;

pub use parse::from_str;
pub use serde::{Number, Value};

use serde::{Deserialize, Serialize};

/// Error raised by JSON parsing (serialization to text is infallible but
/// keeps `Result` signatures for API compatibility).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Serializes to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write::compact(&value.serialize(), &mut out);
    Ok(out)
}

/// Serializes to pretty-printed JSON text (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write::pretty(&value.serialize(), &mut out, 0);
    Ok(out)
}

/// Serializes to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serializes to pretty-printed JSON bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

/// Deserializes from JSON bytes (must be UTF-8).
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

/// Builds a [`Value`] in place.
///
/// Object values and array elements must each be a single token tree:
/// literals, identifiers, nested `{...}` / `[...]`, or an arbitrary
/// expression wrapped in parentheses — `json!({"len": (xs.len())})`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $value:tt),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($key), $crate::json!($value)) ),*
        ])
    };
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_objects() {
        let n = 7usize;
        let v = json!({
            "name": "kgfd",
            "count": n,
            "nested": { "flag": true, "items": [1, 2, 3] },
            "nothing": null,
        });
        assert_eq!(v["name"], "kgfd");
        assert_eq!(v["count"], 7);
        assert_eq!(v["nested"]["flag"], true);
        assert_eq!(v["nested"]["items"][2], 3);
        assert!(v["nothing"].is_null());
    }

    #[test]
    fn round_trips_typed_values() {
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct Point {
            x: f64,
            label: String,
            tags: Vec<u32>,
        }
        let p = Point {
            x: -1.25,
            label: "a \"quoted\" name\n".to_string(),
            tags: vec![1, 2, 3],
        };
        let text = to_string(&p).unwrap();
        let back: Point = from_str(&text).unwrap();
        assert_eq!(back, p);

        let pretty = to_string_pretty(&p).unwrap();
        let back2: Point = from_str(&pretty).unwrap();
        assert_eq!(back2, p);
        assert!(pretty.contains("\n  \"x\""));
    }

    #[test]
    fn nan_serializes_as_null() {
        let text = to_string(&f64::NAN).unwrap();
        assert_eq!(text, "null");
    }

    #[test]
    fn untyped_value_parsing() {
        let v: Value = from_str(r#"{"a": [1, 2.5, "x", false, null], "b": {"c": -3}}"#).unwrap();
        assert_eq!(v["a"][0], 1);
        assert_eq!(v["a"][1], 2.5);
        assert_eq!(v["a"][2], "x");
        assert_eq!(v["a"][3], false);
        assert!(v["a"][4].is_null());
        assert_eq!(v["b"]["c"], -3);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 trailing").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "tab\t newline\n quote\" backslash\\ unicode\u{263A} control\u{0001}";
        let text = to_string(&original.to_string()).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, original);
    }
}
