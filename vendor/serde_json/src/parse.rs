//! Recursive-descent JSON text parser producing a `serde::Value` tree.

use crate::Error;
use serde::{Deserialize, Number, Value};

/// Parses JSON text and deserializes it into `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(T::deserialize(&value)?)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn eat_literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::String),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), Error> {
        let c = self.peek().ok_or_else(|| self.error("bad escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{08}'),
            b'f' => out.push('\u{0C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let first = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&first) {
                    // Surrogate pair: require a following \uXXXX low half.
                    if !self.eat_literal("\\u") {
                        return Err(self.error("unpaired surrogate"));
                    }
                    let low = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&low) {
                        return Err(self.error("invalid low surrogate"));
                    }
                    0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                } else {
                    first
                };
                out.push(char::from_u32(code).ok_or_else(|| self.error("invalid unicode escape"))?);
            }
            _ => return Err(self.error("unknown escape character")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        let number = if is_float {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| self.error("invalid number"))?,
            )
        } else if let Ok(u) = text.parse::<u64>() {
            Number::UInt(u)
        } else if let Ok(i) = text.parse::<i64>() {
            Number::Int(i)
        } else {
            // Integer out of 64-bit range: keep the value approximately.
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| self.error("invalid number"))?,
            )
        };
        Ok(Value::Number(number))
    }
}
