//! JSON text emission (compact and pretty).

use serde::Value;

/// Writes `value` as compact JSON (no whitespace).
pub(crate) fn compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                compact(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(key, out);
                out.push(':');
                compact(item, out);
            }
            out.push('}');
        }
    }
}

/// Writes `value` as pretty JSON with 2-space indentation.
pub(crate) fn pretty(value: &Value, out: &mut String, depth: usize) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                pretty(item, out, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                escape_into(key, out);
                out.push_str(": ");
                pretty(item, out, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push('}');
        }
        other => compact(other, out),
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Writes `s` as a quoted JSON string with the required escapes.
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
