//! Offline stand-in for the `rand` crate (0.9-flavoured API).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the exact API surface it uses: [`rngs::StdRng`], [`SeedableRng`], the
//! [`Rng`] extension methods (`random`, `random_range`), and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256** seeded via
//! SplitMix64 — deterministic across platforms, which is all the repo's
//! seeded-reproducibility tests require (they compare run against run, never
//! against golden values from upstream `rand`).

/// Seedable random-number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core + extension methods of a random-number generator.
///
/// Upstream splits this into `RngCore` and `Rng`; the workspace only ever
/// needs the combined surface below.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of `T` (see [`Standard`]).
    fn random<T: Standard>(&mut self) -> T {
        T::random_from(self)
    }

    /// A uniformly random value within `range`.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible uniformly at random (upstream's `StandardUniform`
/// distribution).
pub trait Standard {
    /// Draws one value from `rng`.
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f32 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits in [0, 1).
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn random_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one value from `rng` uniformly within the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = widening_mod(rng.next_u64(), span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = widening_mod(rng.next_u64(), span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `x mod span` — modulo bias is < span/2⁶⁴, far below anything the test
/// suite's statistical assertions can resolve.
fn widening_mod(x: u64, span: u128) -> u128 {
    debug_assert!(span > 0);
    (x as u128) % span
}

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u: $t = rng.random();
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_range!(f32, f64);

pub mod rngs {
    //! Concrete generator types.

    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (xoshiro256** seeded by SplitMix64).
    ///
    /// Not the same stream as upstream `StdRng` (ChaCha12), but the workspace
    /// never depends on a particular stream — only on determinism per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, as upstream does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// The raw xoshiro256** state words. Together with
        /// [`StdRng::from_state`] this lets callers persist a generator's
        /// exact stream position (the training checkpoint format stores the
        /// epoch-shuffle stream this way).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Reconstructs a generator at an exact stream position previously
        /// captured with [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_roundtrip_resumes_the_exact_stream() {
        let mut a = StdRng::seed_from_u64(11);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.random_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.random_range(0..=4usize);
            assert!(w <= 4);
            let f = rng.random_range(-2.0..2.0f32);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn range_sampling_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
