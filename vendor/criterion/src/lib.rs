//! Offline stand-in for `criterion`.
//!
//! Supports the API surface used by `crates/bench`: benchmark groups with
//! `sample_size`, `bench_function` / `bench_with_input`, [`BenchmarkId`],
//! and the `criterion_group!` / `criterion_main!` macros. Measurements are
//! real wall-clock timings (mean / min / max over the sample count) printed
//! to stdout — there is no statistical analysis, HTML report, or saved
//! baseline.
//!
//! When the binary is run by `cargo test` (which passes `--test` to bench
//! targets), every benchmark body executes exactly once so the suite stays
//! fast while still smoke-testing the bench code.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group, e.g. `alias/1024`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion accepted by `bench_function`: `&str`, `String`, or
/// [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` once as warm-up, then `samples` timed times.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        std::hint::black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            self.results.push(start.elapsed());
        }
    }
}

/// A named set of related benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed runs per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = if self.criterion.test_mode {
            1
        } else {
            self.sample_size
        };
        let mut bencher = Bencher {
            samples,
            results: Vec::new(),
        };
        f(&mut bencher);
        self.report(&id.into_id(), &bencher.results);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reports were already printed per benchmark).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, results: &[Duration]) {
        if results.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let total: Duration = results.iter().sum();
        let mean = total / results.len() as u32;
        let min = results.iter().min().unwrap();
        let max = results.iter().max().unwrap();
        println!(
            "{}/{id}: mean {mean:?} min {min:?} max {max:?} ({} samples)",
            self.name,
            results.len()
        );
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` passes `--test` to bench targets; run each body once
        // in that mode.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Accepted for API compatibility; argument handling happens in
    /// `Default::default`.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }
}

/// Declares a function running the listed benchmarks with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_time_and_report() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("unit");
        let mut runs = 0usize;
        group.sample_size(10).bench_function("count", |b| {
            b.iter(|| runs += 1);
        });
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4usize, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
        // warm-up + one timed sample in test mode
        assert_eq!(runs, 2);
    }
}
