//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the non-poisoning `Mutex`/`RwLock` API the workspace uses.
//! Poisoned std locks are recovered transparently — parking_lot has no
//! poisoning, so neither does this facade.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning its value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn rwlock_read_and_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
