//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: composable
//! [`Strategy`] values (ranges, tuples, `prop_map`, `collection::vec`,
//! `sample::select`, `any::<bool>()`, [`Just`]), the [`proptest!`] macro with
//! optional `#![proptest_config(...)]`, and the `prop_assert*` macros.
//!
//! Differences from real proptest: cases are generated from a deterministic
//! per-test seed (derived from the test name) rather than an entropy source,
//! and failing inputs are *not* shrunk — the failure message reports the
//! case number so the run can be reproduced, which is deterministic anyway.

use rand::rngs::StdRng;
use rand::Rng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Error carried by a failing property ([`prop_assert!`] and friends
/// construct it; returning it fails the current case).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for TestCaseError {}

/// Execution parameters for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count actually run: the `PROPTEST_CASES` environment
    /// variable when set to a positive integer (matching upstream proptest's
    /// env override), otherwise this config's `cases`. Lets CI scale every
    /// suite up without touching per-block configs.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(raw) => match raw.trim().parse::<u32>() {
                Ok(n) if n >= 1 => n,
                _ => self.cases,
            },
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

macro_rules! impl_inclusive_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
impl_inclusive_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
}

/// Types with a canonical unconstrained strategy (only what the workspace
/// needs — `bool`).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random::<bool>()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// is drawn uniformly from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy choosing uniformly from a fixed set of values.
    pub struct Select<T> {
        items: Vec<T>,
    }

    /// Chooses uniformly from `items` (must be non-empty).
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select() requires a non-empty set");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.random_range(0..self.items.len());
            self.items[i].clone()
        }
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[doc(hidden)]
pub mod __private {
    use super::TestRng;

    /// Deterministic per-test seed derived from the test's name.
    pub fn rng_for(test_name: &str) -> TestRng {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        rand::SeedableRng::seed_from_u64(seed)
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {}",
                ::core::stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {} ({})",
                ::core::stringify!($cond),
                ::std::format!($($fmt)+)
            )));
        }
    };
}

/// Fails the current case unless the two sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                ::std::format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Fails the current case unless the two sides compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} != {}` ({})\n  both: {:?}",
                ::core::stringify!($left),
                ::core::stringify!($right),
                ::std::format!($($fmt)+),
                l
            )));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let cases = config.effective_cases();
            let mut rng = $crate::__private::rng_for(::core::stringify!($name));
            for case in 0..cases {
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)*
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    ::core::panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        case + 1,
                        cases,
                        ::core::stringify!($name),
                        e
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in -2.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(0u64..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn prop_map_and_select_compose(
            t in (0u32..4, 0u32..4).prop_map(|(a, b)| a + b),
            pick in crate::sample::select(vec!["a", "b", "c"]),
        ) {
            prop_assert!(t <= 6);
            prop_assert!(["a", "b", "c"].contains(&pick));
        }

        #[test]
        fn early_return_is_allowed(flag in any::<bool>()) {
            if flag {
                return Ok(());
            }
            prop_assert!(!flag);
        }
    }

    #[test]
    fn deterministic_between_runs() {
        let mut a = crate::__private::rng_for("some_test");
        let mut b = crate::__private::rng_for("some_test");
        use rand::Rng;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
