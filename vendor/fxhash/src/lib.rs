//! Offline stand-in for the `fxhash` / `rustc-hash` crate family.
//!
//! Implements the Firefox multiply-rotate hash (FxHash): per input word,
//! `state ← (state ⋘ 5) ⊕ word` followed by a multiplication with a
//! Fibonacci-style constant. It is not collision-resistant against
//! adversarial keys, but for the short fixed-width keys this workspace
//! hashes (triples, id pairs) it is several times faster than SipHash and —
//! unlike `std`'s default — fully deterministic.
//!
//! On top of the plain hasher this stub adds *seeding*: [`FxBuildHasher`]
//! can fold a caller-supplied seed into the initial state, so hash-flooding
//! via a fixed published constant can be mitigated while keeping runs
//! reproducible for a fixed seed.

use std::hash::{BuildHasher, Hasher};

/// Multiplicative constant of the 64-bit FxHash round (2⁶⁴ / φ, forced odd).
const K: u64 = 0x9E37_79B9_7F4A_7C15;

/// The FxHash streaming hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    /// A hasher whose initial state folds in `seed`.
    #[inline]
    pub fn with_seed(seed: u64) -> Self {
        FxHasher {
            state: seed.wrapping_mul(K),
        }
    }

    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (head, rest) = bytes.split_at(8);
            self.add_word(u64::from_le_bytes(head.try_into().unwrap()));
            bytes = rest;
        }
        if bytes.len() >= 4 {
            let (head, rest) = bytes.split_at(4);
            self.add_word(u32::from_le_bytes(head.try_into().unwrap()) as u64);
            bytes = rest;
        }
        for &b in bytes {
            self.add_word(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Finalize with one extra mix so low-entropy tails still spread
        // across the high bits HashMap's bucket index is taken from.
        let h = self.state;
        (h ^ (h >> 32)).wrapping_mul(K)
    }
}

/// Builds seeded [`FxHasher`]s. `Default` uses seed 0 (the classic,
/// fully-deterministic FxHash behaviour).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FxBuildHasher {
    seed: u64,
}

impl FxBuildHasher {
    /// A build-hasher whose hashers start from `seed`-derived state.
    #[inline]
    pub fn seeded(seed: u64) -> Self {
        FxBuildHasher { seed }
    }
}

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::with_seed(self.seed)
    }
}

/// `HashSet` keyed by FxHash.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// `HashMap` keyed by FxHash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T, seed: u64) -> u64 {
        let mut h = FxHasher::with_seed(seed);
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        assert_eq!(
            hash_of(&(1u32, 2u32, 3u32), 7),
            hash_of(&(1u32, 2u32, 3u32), 7)
        );
        assert_eq!(hash_of(&"fact", 0), hash_of(&"fact", 0));
    }

    #[test]
    fn seed_changes_the_hash() {
        assert_ne!(hash_of(&42u64, 1), hash_of(&42u64, 2));
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        let mut seen = std::collections::HashSet::new();
        for a in 0u32..64 {
            for b in 0u32..64 {
                seen.insert(hash_of(&(a, b), 0));
            }
        }
        assert_eq!(seen.len(), 64 * 64, "trivial collisions in a tiny keyspace");
    }

    #[test]
    fn set_and_map_aliases_work() {
        let mut set: FxHashSet<u32> =
            FxHashSet::with_capacity_and_hasher(8, FxBuildHasher::seeded(3));
        assert!(set.insert(1));
        assert!(!set.insert(1));
        let mut map: FxHashMap<u32, u32> = FxHashMap::default();
        map.insert(1, 2);
        assert_eq!(map.get(&1), Some(&2));
    }

    #[test]
    fn byte_stream_and_word_writes_cover_all_tail_lengths() {
        for len in 0..17usize {
            let bytes: Vec<u8> = (0..len as u8).collect();
            let mut h1 = FxHasher::default();
            h1.write(&bytes);
            let mut h2 = FxHasher::default();
            h2.write(&bytes);
            assert_eq!(h1.finish(), h2.finish());
        }
    }
}
