//! Offline stand-in for the `bytes` crate: `Vec<u8>`-backed buffers with the
//! little-endian cursor API the model-persistence code uses. No refcounted
//! zero-copy slicing — `freeze` simply transfers ownership.

use std::ops::{Deref, Index, IndexMut};

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Length in bytes.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.0.len()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer with at least `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut(Vec::with_capacity(capacity))
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Length in bytes.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.0.len()
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut(v.to_vec())
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl Index<usize> for BytesMut {
    type Output = u8;
    fn index(&self, i: usize) -> &u8 {
        &self.0[i]
    }
}

impl IndexMut<usize> for BytesMut {
    fn index_mut(&mut self, i: usize) -> &mut u8 {
        &mut self.0[i]
    }
}

/// Read cursor over a byte source. Implemented for `&[u8]`, advancing the
/// slice in place as values are read.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        self.advance(1);
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

/// Write cursor appending to a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }

    fn put_u8(&mut self, v: u8) {
        self.0.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_cursor() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"KGFD");
        buf.put_u8(7);
        buf.put_u64_le(0xDEAD_BEEF_0123_4567);
        buf.put_f32_le(1.5);
        let frozen = buf.freeze();
        let mut data: &[u8] = &frozen;
        assert_eq!(data.remaining(), 4 + 1 + 8 + 4);
        data.advance(4);
        assert_eq!(data.get_u8(), 7);
        assert_eq!(data.get_u64_le(), 0xDEAD_BEEF_0123_4567);
        assert_eq!(data.get_f32_le(), 1.5);
        assert_eq!(data.remaining(), 0);
    }

    #[test]
    fn index_mut_patches_in_place() {
        let mut buf = BytesMut::from(&b"abc"[..]);
        buf[1] = b'x';
        assert_eq!(&buf.freeze()[..], b"axc");
    }
}
