//! Offline `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored `serde` stand-in.
//!
//! crates.io is unreachable in this build environment, so there is no `syn`
//! or `quote`; the item definition is parsed directly from the
//! `proc_macro::TokenStream` and the generated impl is assembled as source
//! text. Supported shapes — the ones this workspace derives on:
//!
//! * structs with named fields (honouring `#[serde(skip)]` and
//!   `#[serde(transparent)]`),
//! * tuple structs (newtypes serialize as their inner value, like serde),
//! * enums with unit, tuple, and struct variants (externally tagged).
//!
//! Generics are not supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` (value-tree flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let source = match parse_item(input) {
        Ok(item) => match mode {
            Mode::Serialize => gen_serialize(&item),
            Mode::Deserialize => gen_deserialize(&item),
        },
        Err(msg) => format!("::core::compile_error!({msg:?});"),
    };
    source
        .parse()
        .unwrap_or_else(|e| panic!("serde_derive generated invalid Rust: {e}\n{source}"))
}

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    transparent: bool,
    shape: Shape,
}

enum Shape {
    /// Named-field struct: (field ident, skipped).
    Struct(Vec<(String, bool)>),
    /// Tuple struct with N fields.
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    payload: Payload,
}

enum Payload {
    Unit,
    /// Tuple variant with N fields.
    Tuple(usize),
    /// Struct variant field names.
    Struct(Vec<String>),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    /// Consumes leading `#[...]` attributes, returning the idents found
    /// inside any `#[serde(...)]` among them (e.g. `skip`, `transparent`).
    fn eat_attrs(&mut self) -> Vec<String> {
        let mut serde_words = Vec::new();
        while self.eat_punct('#') {
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    let mut inner = g.stream().into_iter();
                    if let Some(TokenTree::Ident(head)) = inner.next() {
                        if head.to_string() == "serde" {
                            if let Some(TokenTree::Group(args)) = inner.next() {
                                for t in args.stream() {
                                    if let TokenTree::Ident(w) = t {
                                        serde_words.push(w.to_string());
                                    }
                                }
                            }
                        }
                    }
                }
                _ => break,
            }
        }
        serde_words
    }

    /// Consumes a visibility qualifier (`pub`, `pub(crate)`, …) if present.
    fn eat_visibility(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Skips tokens until a `,` at angle-bracket depth 0, consuming it.
    /// Stops (without error) at end of stream.
    fn skip_type(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        self.pos += 1;
                        return;
                    }
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    let item_serde = c.eat_attrs();
    c.eat_visibility();

    let is_struct = if c.eat_ident("struct") {
        true
    } else if c.eat_ident("enum") {
        false
    } else {
        return Err("serde_derive: expected `struct` or `enum`".to_string());
    };

    let name = match c.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde_derive: expected an item name".to_string()),
    };

    if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive: generic type `{name}` is not supported by the vendored derive"
        ));
    }

    let transparent = item_serde.iter().any(|w| w == "transparent");

    let shape = match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace && is_struct => {
            Shape::Struct(parse_named_fields(g.stream())?)
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && is_struct => {
            Shape::TupleStruct(count_tuple_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace && !is_struct => {
            Shape::Enum(parse_variants(g.stream())?)
        }
        _ => {
            return Err(format!(
                "serde_derive: unsupported body for `{name}` (unit structs are not derived)"
            ))
        }
    };

    Ok(Item {
        name,
        transparent,
        shape,
    })
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<(String, bool)>, String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let serde_words = c.eat_attrs();
        c.eat_visibility();
        let name = match c.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("serde_derive: expected field name, got {other}")),
            None => break,
        };
        if !c.eat_punct(':') {
            return Err(format!("serde_derive: expected `:` after field `{name}`"));
        }
        c.skip_type();
        let skip = serde_words.iter().any(|w| w == "skip");
        fields.push((name, skip));
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0;
    while c.peek().is_some() {
        c.eat_attrs();
        c.eat_visibility();
        if c.peek().is_none() {
            break;
        }
        c.skip_type();
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        c.eat_attrs();
        let name = match c.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("serde_derive: expected variant name, got {other}")),
            None => break,
        };
        let payload = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                c.pos += 1;
                Payload::Struct(fields.into_iter().map(|(n, _)| n).collect())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.pos += 1;
                Payload::Tuple(n)
            }
            _ => Payload::Unit,
        };
        // Consume an explicit discriminant (`= expr`) and the trailing comma.
        while let Some(t) = c.peek() {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                c.pos += 1;
                break;
            }
            c.pos += 1;
        }
        variants.push(Variant { name, payload });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// Identifier as written in code vs. as a JSON field name (strips `r#`).
fn json_name(ident: &str) -> &str {
    ident.strip_prefix("r#").unwrap_or(ident)
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            if item.transparent {
                let only = &fields[0].0;
                format!("::serde::Serialize::serialize(&self.{only})")
            } else {
                let mut entries = String::new();
                for (field, skip) in fields {
                    if *skip {
                        continue;
                    }
                    entries.push_str(&format!(
                        "(::std::string::String::from({:?}), \
                         ::serde::Serialize::serialize(&self.{field})),",
                        json_name(field)
                    ));
                }
                format!("::serde::Value::Object(::std::vec![{entries}])")
            }
        }
        Shape::TupleStruct(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(","))
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                let tag = json_name(vname);
                match &v.payload {
                    Payload::Unit => arms.push_str(&format!(
                        "{name}::{vname} => \
                         ::serde::Value::String(::std::string::String::from({tag:?})),"
                    )),
                    Payload::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => ::serde::Value::Object(::std::vec![(\
                         ::std::string::String::from({tag:?}), \
                         ::serde::Serialize::serialize(__f0))]),"
                    )),
                    Payload::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({tag:?}), \
                             ::serde::Value::Array(::std::vec![{}]))]),",
                            binds.join(","),
                            items.join(",")
                        ));
                    }
                    Payload::Struct(fields) => {
                        let binds = fields.join(",");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({:?}), \
                                     ::serde::Serialize::serialize({f}))",
                                    json_name(f)
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(\
                             ::std::vec![(::std::string::String::from({tag:?}), \
                             ::serde::Value::Object(::std::vec![{}]))]),",
                            entries.join(",")
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            if item.transparent {
                let only = &fields[0].0;
                format!(
                    "::std::result::Result::Ok({name} {{ \
                     {only}: ::serde::Deserialize::deserialize(value)? }})"
                )
            } else {
                let mut inits = String::new();
                for (field, skip) in fields {
                    if *skip {
                        inits.push_str(&format!("{field}: ::std::default::Default::default(),"));
                    } else {
                        inits.push_str(&format!(
                            "{field}: ::serde::__private::field(value, {:?})?,",
                            json_name(field)
                        ));
                    }
                }
                format!("::std::result::Result::Ok({name} {{ {inits} }})")
            }
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(value)?))")
        }
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::deserialize(\
                         &__items[{i}])?"
                    )
                })
                .collect();
            format!(
                "let __items = value.as_array().ok_or_else(|| \
                 ::serde::Error::custom(\"expected array\"))?;\n\
                 if __items.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::Error::custom(\"wrong tuple length\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                elems.join(",")
            )
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                let tag = json_name(vname);
                match &v.payload {
                    Payload::Unit => arms.push_str(&format!(
                        "{tag:?} => ::std::result::Result::Ok({name}::{vname}),"
                    )),
                    Payload::Tuple(1) => arms.push_str(&format!(
                        "{tag:?} => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::deserialize(__payload)?)),"
                    )),
                    Payload::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::deserialize(&__items[{i}])?"))
                            .collect();
                        arms.push_str(&format!(
                            "{tag:?} => {{\n\
                             let __items = __payload.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected array payload\"))?;\n\
                             if __items.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::Error::custom(\"wrong variant arity\")); }}\n\
                             ::std::result::Result::Ok({name}::{vname}({}))\n\
                             }},",
                            elems.join(",")
                        ));
                    }
                    Payload::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::__private::field(__payload, {:?})?",
                                    json_name(f)
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{tag:?} => ::std::result::Result::Ok({name}::{vname} {{ {} }}),",
                            inits.join(",")
                        ));
                    }
                }
            }
            format!(
                "let (__tag, __payload) = ::serde::__private::variant(value)?;\n\
                 match __tag {{ {arms} __other => ::std::result::Result::Err(\
                 ::serde::Error::custom(::std::format!(\
                 \"unknown variant {{__other:?}} of {name}\"))) }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}
