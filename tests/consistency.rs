//! Cross-crate consistency: quantities computed independently in different
//! crates must agree (the report's MRR vs the metrics crate; discovery's
//! ranks vs the evaluation protocol; CLI strategy naming vs core).

use fact_discovery::{discover_facts, DiscoveryConfig, StrategyKind};
use kgfd_datasets::toy_biomedical;
use kgfd_embed::{train, ModelKind, TrainConfig};
use kgfd_eval::{mrr, rank_all, RankScratch};
use kgfd_kg::KnownTriples;

fn trained() -> (kgfd_kg::Dataset, Box<dyn kgfd_embed::KgeModel>) {
    let data = toy_biomedical();
    let (model, _) = train(
        ModelKind::ComplEx,
        &data.train,
        &TrainConfig {
            dim: 16,
            epochs: 25,
            seed: 8,
            ..TrainConfig::default()
        },
    );
    (data, model)
}

#[test]
fn report_mrr_agrees_with_metrics_crate() {
    let (data, model) = trained();
    let report = discover_facts(
        model.as_ref(),
        &data.train,
        &DiscoveryConfig {
            strategy: StrategyKind::GraphDegree,
            top_n: 10,
            max_candidates: 40,
            seed: 2,
            ..DiscoveryConfig::default()
        },
    );
    let via_metrics = mrr(&report.ranks());
    assert!((report.mrr() - via_metrics).abs() < 1e-12);
}

#[test]
fn discovery_ranks_match_the_evaluation_protocol() {
    // The rank the discovery algorithm assigned to each fact must equal the
    // rank the evaluation protocol computes for the same triple under the
    // same filter (the training graph).
    let (data, model) = trained();
    let report = discover_facts(
        model.as_ref(),
        &data.train,
        &DiscoveryConfig {
            strategy: StrategyKind::EntityFrequency,
            top_n: 12,
            max_candidates: 40,
            seed: 3,
            ..DiscoveryConfig::default()
        },
    );
    let known = KnownTriples::from_slices([data.train.triples()]);
    let triples: Vec<_> = report.facts.iter().map(|f| f.triple).collect();
    let protocol_ranks = rank_all(model.as_ref(), &triples, Some(&known), 2);
    for (fact, ranks) in report.facts.iter().zip(&protocol_ranks) {
        assert!(
            (fact.rank - ranks.mean()).abs() < 1e-9,
            "discovery rank {} vs protocol rank {}",
            fact.rank,
            ranks.mean()
        );
    }
}

#[test]
fn scratch_reuse_does_not_leak_state() {
    // Ranking different triples through one scratch buffer must give the
    // same results as fresh buffers.
    let (data, model) = trained();
    let known = data.known_triples();
    let mut shared = RankScratch::new(data.train.num_entities());
    for &t in data.train.triples().iter().take(10) {
        let with_shared = kgfd_eval::rank_triple(model.as_ref(), t, Some(&known), &mut shared);
        let mut fresh = RankScratch::new(data.train.num_entities());
        let with_fresh = kgfd_eval::rank_triple(model.as_ref(), t, Some(&known), &mut fresh);
        assert_eq!(with_shared, with_fresh);
    }
}

#[test]
fn strategy_and_model_names_are_unique_and_stable() {
    // CLI parsing, persistence tags, and report labels all rely on these.
    let mut names = std::collections::HashSet::new();
    for s in StrategyKind::WITH_EXTENSIONS {
        assert!(names.insert(s.abbrev()), "duplicate abbrev {}", s.abbrev());
        assert!(!s.name().is_empty());
    }
    let mut model_names = std::collections::HashSet::new();
    for m in ModelKind::ALL {
        assert!(model_names.insert(m.name()), "duplicate name {}", m.name());
        assert_eq!(ModelKind::from_name(m.name()), Some(m));
    }
}

#[test]
fn stratified_and_plain_evaluation_agree_on_totals() {
    let (data, model) = trained();
    let known = data.known_triples();
    let plain = kgfd_eval::evaluate_ranking(model.as_ref(), data.train.triples(), Some(&known), 2);
    let strat = kgfd_eval::evaluate_stratified(
        model.as_ref(),
        data.train.triples(),
        &data.train,
        Some(&known),
        2,
    );
    assert_eq!(
        plain.count,
        strat.head.count + strat.tail.count + strat.mixed.count
    );
    // Count-weighted stratum MRRs recompose the overall MRR.
    let weighted = (strat.head.mrr * strat.head.count as f64
        + strat.tail.mrr * strat.tail.count as f64
        + strat.mixed.mrr * strat.mixed.count as f64)
        / plain.count as f64;
    assert!((weighted - plain.mrr).abs() < 1e-9);
}
