//! Cross-crate edge cases: degenerate graphs, extreme configurations, and
//! boundary parameters that must not panic or silently misbehave.

use fact_discovery::{discover_facts, DiscoveryConfig, StrategyKind};
use kgfd_embed::{new_model, train, ModelKind, TrainConfig};
use kgfd_eval::{evaluate_ranking, rank_all};
use kgfd_kg::{KnownTriples, RelationId, Triple, TripleStore};

fn tiny_store() -> TripleStore {
    TripleStore::new(
        3,
        2,
        vec![Triple::new(0u32, 0u32, 1u32), Triple::new(1u32, 0u32, 2u32)],
    )
    .unwrap()
}

#[test]
fn discovery_on_empty_graph_finds_nothing() {
    let store = TripleStore::new(4, 2, vec![]).unwrap();
    let model = new_model(ModelKind::DistMult, 4, 2, 8, 0);
    let report = discover_facts(model.as_ref(), &store, &DiscoveryConfig::default());
    assert!(report.facts.is_empty());
    assert!(report.per_relation.is_empty(), "no used relations");
}

#[test]
fn discovery_with_unused_relation_yields_empty_breakdown() {
    let store = tiny_store(); // relation 1 is unused
    let model = new_model(ModelKind::TransE, 3, 2, 8, 0);
    let config = DiscoveryConfig {
        relations: Some(vec![RelationId(1)]),
        top_n: 3,
        max_candidates: 10,
        ..DiscoveryConfig::default()
    };
    let report = discover_facts(model.as_ref(), &store, &config);
    assert_eq!(report.per_relation.len(), 1);
    assert_eq!(report.per_relation[0].candidates, 0);
    assert!(report.facts.is_empty());
}

#[test]
fn discovery_exhausts_small_candidate_spaces() {
    // Relation 0's pool: subjects {0, 1}, objects {1, 2} → 4 possible
    // candidates, 2 already in the graph → at most 2 discoverable.
    let store = tiny_store();
    let model = new_model(ModelKind::DistMult, 3, 2, 8, 0);
    let config = DiscoveryConfig {
        relations: Some(vec![RelationId(0)]),
        top_n: usize::MAX >> 1,
        max_candidates: 1000, // far more than the space holds
        ..DiscoveryConfig::default()
    };
    let report = discover_facts(model.as_ref(), &store, &config);
    assert!(report.facts.len() <= 2, "{:?}", report.facts);
    assert!(
        report.per_relation[0].iterations <= 5,
        "iteration cap must hold even when the budget is unreachable"
    );
}

#[test]
fn zero_max_candidates_is_a_noop() {
    let store = tiny_store();
    let model = new_model(ModelKind::DistMult, 3, 2, 8, 0);
    let config = DiscoveryConfig {
        max_candidates: 0,
        ..DiscoveryConfig::default()
    };
    let report = discover_facts(model.as_ref(), &store, &config);
    assert!(report.facts.is_empty());
}

#[test]
fn training_zero_epochs_returns_initialized_model() {
    let store = tiny_store();
    let config = TrainConfig {
        epochs: 0,
        dim: 8,
        seed: 3,
        ..TrainConfig::default()
    };
    let (model, stats) = train(ModelKind::ComplEx, &store, &config);
    assert!(stats.epoch_losses.is_empty());
    assert!(stats.final_loss().is_nan());
    let fresh = new_model(ModelKind::ComplEx, 3, 2, 8, 3);
    assert_eq!(model.params(), fresh.params());
}

#[test]
fn training_with_batch_larger_than_dataset() {
    let store = tiny_store();
    let config = TrainConfig {
        epochs: 3,
        dim: 8,
        batch_size: 10_000,
        seed: 1,
        ..TrainConfig::default()
    };
    let (_, stats) = train(ModelKind::TransE, &store, &config);
    assert_eq!(stats.epoch_losses.len(), 3);
    assert!(stats.final_loss().is_finite());
}

#[test]
fn ranking_on_single_entity_pair_graph() {
    // Two entities: every rank is in {1, 1.5, 2}.
    let store = TripleStore::new(2, 1, vec![Triple::new(0u32, 0u32, 1u32)]).unwrap();
    let model = new_model(ModelKind::DistMult, 2, 1, 8, 0);
    let known = KnownTriples::from_slices([store.triples()]);
    let ranks = rank_all(model.as_ref(), store.triples(), Some(&known), 1);
    assert_eq!(ranks.len(), 1);
    assert!(ranks[0].subject >= 1.0 && ranks[0].subject <= 2.0);
}

#[test]
fn evaluation_of_empty_test_set() {
    let model = new_model(ModelKind::TransE, 3, 2, 8, 0);
    let summary = evaluate_ranking(model.as_ref(), &[], None, 4);
    assert_eq!(summary.count, 0);
    assert_eq!(summary.mrr, 0.0);
}

#[test]
fn every_strategy_handles_triangle_free_graphs() {
    // A path graph has no triangles and no squares: triangle/coefficient/
    // squares weights are all zero and must fall back to uniform.
    let store = TripleStore::new(
        4,
        1,
        vec![
            Triple::new(0u32, 0u32, 1u32),
            Triple::new(1u32, 0u32, 2u32),
            Triple::new(2u32, 0u32, 3u32),
        ],
    )
    .unwrap();
    let model = new_model(ModelKind::DistMult, 4, 1, 8, 2);
    for strategy in StrategyKind::ALL {
        let config = DiscoveryConfig {
            strategy,
            top_n: 4,
            max_candidates: 8,
            ..DiscoveryConfig::default()
        };
        let report = discover_facts(model.as_ref(), &store, &config);
        assert!(
            report.candidates_generated() > 0,
            "{strategy} must fall back to uniform on degenerate measures"
        );
    }
}

#[test]
fn top_k_wider_than_the_fact_count_changes_nothing() {
    // A bounded heap with more room than there are facts must behave
    // exactly like the unbounded default.
    let data = kgfd_datasets::toy_biomedical();
    let (model, _) = train(
        ModelKind::DistMult,
        &data.train,
        &TrainConfig {
            dim: 16,
            epochs: 10,
            seed: 4,
            ..TrainConfig::default()
        },
    );
    let base = DiscoveryConfig {
        top_n: 10,
        max_candidates: 30,
        seed: 6,
        ..DiscoveryConfig::default()
    };
    let unbounded = discover_facts(model.as_ref(), &data.train, &base);
    let wide = discover_facts(
        model.as_ref(),
        &data.train,
        &DiscoveryConfig {
            top_k: Some(1000),
            ..base
        },
    );
    assert_eq!(unbounded.facts, wide.facts);
    assert_eq!(unbounded.per_relation.len(), wide.per_relation.len());
}

#[test]
fn zero_top_k_keeps_no_facts_but_still_counts_candidates() {
    let store = tiny_store();
    let model = new_model(ModelKind::DistMult, 3, 2, 8, 0);
    let config = DiscoveryConfig {
        relations: Some(vec![RelationId(0)]),
        top_n: usize::MAX >> 1,
        max_candidates: 10,
        top_k: Some(0),
        ..DiscoveryConfig::default()
    };
    let report = discover_facts(model.as_ref(), &store, &config);
    assert!(report.facts.is_empty(), "top_k = 0 must keep nothing");
    assert_eq!(report.per_relation.len(), 1);
    assert!(
        report.per_relation[0].candidates > 0,
        "candidates are generated and scored even when none are kept"
    );
    assert_eq!(report.per_relation[0].facts, 0);
}

#[test]
fn zero_top_n_filters_every_candidate_without_panicking() {
    // Ranks are ≥ 1, so top_n = 0 rejects everything; the report must still
    // be well-formed with full per-relation bookkeeping.
    let store = tiny_store();
    let model = new_model(ModelKind::TransE, 3, 2, 8, 0);
    let config = DiscoveryConfig {
        top_n: 0,
        max_candidates: 10,
        ..DiscoveryConfig::default()
    };
    let report = discover_facts(model.as_ref(), &store, &config);
    assert!(report.facts.is_empty());
    for rel in &report.per_relation {
        assert_eq!(rel.facts, 0);
        assert!(rel.candidates > 0 || rel.iterations > 0);
    }
}

#[test]
fn chunk_size_boundaries_are_clamped_and_invisible() {
    // chunk_size 0 is treated as 1 and usize::MAX must not try to
    // preallocate; both produce the default output.
    let data = kgfd_datasets::toy_biomedical();
    let (model, _) = train(
        ModelKind::DistMult,
        &data.train,
        &TrainConfig {
            dim: 16,
            epochs: 10,
            seed: 4,
            ..TrainConfig::default()
        },
    );
    let base = DiscoveryConfig {
        top_n: 10,
        max_candidates: 30,
        seed: 6,
        ..DiscoveryConfig::default()
    };
    let baseline = discover_facts(model.as_ref(), &data.train, &base);
    for chunk_size in [0, usize::MAX] {
        let report = discover_facts(
            model.as_ref(),
            &data.train,
            &DiscoveryConfig {
                chunk_size,
                ..base.clone()
            },
        );
        assert_eq!(
            report.facts, baseline.facts,
            "chunk_size {chunk_size} changed the output"
        );
    }
}

#[test]
fn single_relation_discovery_matches_filtered_full_run() {
    // Restricting to one relation must give the same facts as filtering the
    // full run to that relation (per-relation RNG streams are independent).
    let data = kgfd_datasets::toy_biomedical();
    let (model, _) = train(
        ModelKind::DistMult,
        &data.train,
        &TrainConfig {
            dim: 16,
            epochs: 10,
            seed: 4,
            ..TrainConfig::default()
        },
    );
    let treats = data.vocab.relation("treats").unwrap();
    let base = DiscoveryConfig {
        top_n: 10,
        max_candidates: 30,
        seed: 6,
        ..DiscoveryConfig::default()
    };
    let full = discover_facts(model.as_ref(), &data.train, &base);
    let only = discover_facts(
        model.as_ref(),
        &data.train,
        &DiscoveryConfig {
            relations: Some(vec![treats]),
            ..base
        },
    );
    let full_treats: Vec<_> = full
        .facts
        .iter()
        .filter(|f| f.triple.relation == treats)
        .collect();
    let only_facts: Vec<_> = only.facts.iter().collect();
    assert_eq!(full_treats, only_facts);
}
