//! Edge cases of the process-wide worker pool: typed panic propagation,
//! nested-dispatch inline fallback, and the thread-count differential over
//! every model kind (run in CI under `KGFD_THREADS=1`, `4`, and `8`).

use fact_discovery::{discover_facts, try_discover_facts, DiscoveryConfig, StrategyKind};
use kgfd_datasets::{generate, mini, wn18rr_like};
use kgfd_embed::{
    new_model, train, Gradients, KgeModel, ModelConfig, ModelKind, Parameters, TrainConfig,
};
use kgfd_kg::{EntityId, KgError, RelationId, Triple};

/// Delegates to an inner model but panics whenever the score of
/// `poison_relation` is requested — simulating a bug inside a parallel
/// discovery worker.
struct PanickingModel {
    inner: Box<dyn KgeModel>,
    poison_relation: u32,
}

impl PanickingModel {
    fn check(&self, r: RelationId) {
        if r.0 == self.poison_relation {
            panic!("poisoned relation {} was scored", r.0);
        }
    }
}

impl KgeModel for PanickingModel {
    fn kind(&self) -> ModelKind {
        self.inner.kind()
    }
    fn num_entities(&self) -> usize {
        self.inner.num_entities()
    }
    fn num_relations(&self) -> usize {
        self.inner.num_relations()
    }
    fn dim(&self) -> usize {
        self.inner.dim()
    }
    fn config(&self) -> ModelConfig {
        self.inner.config()
    }
    fn params(&self) -> &Parameters {
        self.inner.params()
    }
    fn params_mut(&mut self) -> &mut Parameters {
        self.inner.params_mut()
    }
    fn score(&self, t: Triple) -> f32 {
        self.check(t.relation);
        self.inner.score(t)
    }
    fn score_objects(&self, s: EntityId, r: RelationId, out: &mut [f32]) {
        self.check(r);
        self.inner.score_objects(s, r, out);
    }
    fn score_subjects(&self, r: RelationId, o: EntityId, out: &mut [f32]) {
        self.check(r);
        self.inner.score_subjects(r, o, out);
    }
    fn backward(&self, t: Triple, upstream: f32, grads: &mut Gradients) {
        self.inner.backward(t, upstream, grads)
    }
}

/// A worker panic during parallel discovery must surface as
/// [`KgError::WorkerPanic`] — not hang the dispatcher, not abort the
/// process, not resume the panic on the caller's thread.
#[test]
fn discovery_worker_panic_becomes_typed_error() {
    let data = generate(&mini(&wn18rr_like())).unwrap();
    let model = PanickingModel {
        inner: new_model(
            ModelKind::DistMult,
            data.train.num_entities(),
            data.train.num_relations(),
            8,
            1,
        ),
        poison_relation: 1,
    };
    let config = DiscoveryConfig {
        strategy: StrategyKind::EntityFrequency,
        top_n: 10,
        max_candidates: 20,
        seed: 5,
        threads: 4,
        ..DiscoveryConfig::default()
    };
    let err = try_discover_facts(&model, &data.train, &config)
        .expect_err("a poisoned relation must fail discovery");
    match err {
        KgError::WorkerPanic(msg) => {
            assert!(
                msg.contains("poisoned relation"),
                "unhelpful payload: {msg}"
            );
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
}

/// Dispatching pool work from inside a pool worker (ranking inside
/// discovery is the production shape) must fall back to inline execution
/// instead of deadlocking on the workers' own queues.
#[test]
fn nested_dispatch_runs_inline() {
    let inline_before = kgfd_obs::counter("pool.jobs.inline").get();
    let outer = kgfd_pool::run(2, |i| {
        // This inner fan-out would need free workers the pool may not
        // have; it must run on the current (worker) thread instead.
        let inner = kgfd_pool::run(3, |j| 10 * i + j);
        inner.iter().sum::<usize>()
    });
    assert_eq!(outer, vec![3, 33]);
    if kgfd_pool::exec_mode() == kgfd_pool::ExecMode::Persistent {
        assert!(
            kgfd_obs::counter("pool.jobs.inline").get() >= inline_before + 6,
            "nested jobs were not executed inline"
        );
    }
}

/// The production nesting: a parallel discovery run whose per-relation
/// workers rank candidates. Must complete (no deadlock) with results
/// identical to the sequential run.
#[test]
fn ranking_inside_discovery_completes_and_matches_sequential() {
    let data = generate(&mini(&wn18rr_like())).unwrap();
    let (model, _) = train(
        ModelKind::DistMult,
        &data.train,
        &TrainConfig {
            dim: 8,
            epochs: 3,
            seed: 3,
            ..TrainConfig::default()
        },
    );
    let run = |threads: usize| {
        discover_facts(
            model.as_ref(),
            &data.train,
            &DiscoveryConfig {
                strategy: StrategyKind::GraphDegree,
                top_n: 10,
                max_candidates: 20,
                seed: 7,
                threads,
                ..DiscoveryConfig::default()
            },
        )
        .facts
    };
    assert_eq!(run(1), run(8));
}

/// Full train + discover differential over **all nine model kinds**: the
/// thread count from `KGFD_THREADS` (CI runs this suite at 1, 4, and 8)
/// must produce bit-identical parameters, losses, and facts to a
/// single-threaded run.
#[test]
fn every_model_kind_is_thread_invariant_at_env_thread_count() {
    let threads: usize = std::env::var("KGFD_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let data = generate(&mini(&wn18rr_like())).unwrap();
    for kind in ModelKind::ALL {
        let run = |t: usize| {
            let (model, stats) = train(
                kind,
                &data.train,
                &TrainConfig {
                    dim: 8,
                    epochs: 3,
                    batch_size: 32,
                    seed: 19,
                    threads: t,
                    ..TrainConfig::default()
                },
            );
            let tables: Vec<Vec<u32>> = (0..model.params().num_tables())
                .map(|i| {
                    model
                        .params()
                        .table(i)
                        .data()
                        .iter()
                        .map(|v| v.to_bits())
                        .collect()
                })
                .collect();
            let facts = discover_facts(
                model.as_ref(),
                &data.train,
                &DiscoveryConfig {
                    strategy: StrategyKind::EntityFrequency,
                    top_n: 10,
                    max_candidates: 20,
                    seed: 19,
                    threads: t,
                    ..DiscoveryConfig::default()
                },
            )
            .facts;
            (tables, stats.epoch_losses, facts)
        };
        if threads == 1 {
            // Degenerate CI leg: still assert cross-run repeatability.
            assert_eq!(run(1), run(1), "{kind:?} is not repeatable");
        } else {
            assert_eq!(
                run(1),
                run(threads),
                "{kind:?} differs at {threads} threads"
            );
        }
    }
}
