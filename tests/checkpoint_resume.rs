//! Differential conformance suite for crash-safe checkpoint/resume.
//!
//! The headline guarantee of the checkpoint subsystem: a training run that
//! is killed at an epoch boundary and resumed from its checkpoint finishes
//! **bit-identical** to a run that never stopped — same final embeddings,
//! same per-epoch losses, same discovered facts — for every model family,
//! at 1 and at 4 training threads. A checkpoint is also thread-count
//! portable: a run killed at N threads may resume at M.
//!
//! The second half exercises the recovery story end to end: when the
//! newest checkpoint is corrupt, resume falls back to the previous one and
//! the eviction is visible in the JSONL run manifest (`recoveries` +
//! `resumed_from`).

use fact_discovery::{discover_facts, DiscoveryConfig, StrategyKind};
use kgfd_datasets::toy_biomedical;
use kgfd_embed::{
    checkpoint_paths, resume_latest, train, CheckpointPolicy, KgeModel, ModelKind, TrainConfig,
    TrainOutcome, TrainSession,
};
use std::path::PathBuf;

fn config_for(kind: ModelKind, threads: usize, seed: u64) -> TrainConfig {
    TrainConfig {
        dim: 12, // ConvE needs a reshapeable dim; 12 = 3×4
        epochs: 6,
        batch_size: 64,
        negatives: 2,
        seed,
        threads,
        normalize_entities: kind == ModelKind::TransE,
        ..TrainConfig::default()
    }
}

/// Unique scratch dir per (test, kind, threads) so the matrix runs in
/// parallel without sharing checkpoint files.
fn arena(tag: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!("kgfd-ckpt-diff-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("model.kgfd");
    (dir, out)
}

fn assert_params_identical(label: &str, a: &dyn KgeModel, b: &dyn KgeModel) {
    assert_eq!(a.params().num_tables(), b.params().num_tables(), "{label}");
    for t in 0..a.params().num_tables() {
        assert_eq!(
            a.params().table(t).data(),
            b.params().table(t).data(),
            "{label}: table {t} diverged"
        );
    }
}

/// The full differential matrix: every model family × {1, 4} threads,
/// killed after 3 of 6 epochs and resumed. Epoch losses, final parameters,
/// and the facts discovered from the final model must all match an
/// uninterrupted run exactly.
#[test]
fn kill_resume_is_bit_identical_for_every_model_family_at_1_and_4_threads() {
    let data = toy_biomedical();
    for (i, kind) in ModelKind::ALL.into_iter().enumerate() {
        for threads in [1usize, 4] {
            let label = format!("{kind}@{threads}t");
            let config = config_for(kind, threads, 0xC0FF_EE00 + i as u64);
            let (plain, plain_stats) = train(kind, &data.train, &config);

            let (dir, out) = arena(&format!("{}-{threads}", kind.name()));
            let policy = CheckpointPolicy::new(out.clone(), 1);
            // The doomed run: 3 of 6 epochs, checkpoint at the boundary,
            // then the process "dies" (the session is dropped — nothing of
            // it survives but the checkpoint file).
            {
                let mut session = TrainSession::new(kind, &data.train, &config).unwrap();
                for _ in 0..3 {
                    session.run_epoch();
                }
                session.save_checkpoint(&policy).unwrap();
            }

            let (mut session, report) = resume_latest(kind, &data.train, &config, &out).unwrap();
            assert_eq!(session.epochs_done(), 3, "{label}");
            assert!(report.resumed_from.is_some(), "{label}");
            assert!(
                report.recoveries.is_empty(),
                "{label}: {:?}",
                report.recoveries
            );
            match session.run(Some(&policy), None).unwrap() {
                TrainOutcome::Completed => {}
                other => panic!("{label}: expected completion, got {other:?}"),
            }
            let resumed_losses = session.epoch_losses().to_vec();
            let (resumed, _) = session.into_model();

            // Losses: every epoch, bit for bit (f64 equality).
            assert_eq!(
                plain_stats.epoch_losses, resumed_losses,
                "{label}: epoch losses diverged"
            );
            // Parameters: every table, bit for bit.
            assert_params_identical(&label, plain.as_ref(), resumed.as_ref());
            // Discovered facts: the downstream deliverable must be the same.
            let discover = |model: &dyn KgeModel| {
                discover_facts(
                    model,
                    &data.train,
                    &DiscoveryConfig {
                        strategy: StrategyKind::EntityFrequency,
                        top_n: 8,
                        max_candidates: 30,
                        seed: 5,
                        ..DiscoveryConfig::default()
                    },
                )
            };
            assert_eq!(
                discover(plain.as_ref()).facts,
                discover(resumed.as_ref()).facts,
                "{label}: discovered facts diverged"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Checkpoints are thread-count portable: a run killed at 1 thread resumes
/// at 4 (and vice versa) and still matches the uninterrupted run bitwise —
/// the config fingerprint deliberately excludes `threads`.
#[test]
fn resume_across_thread_counts_is_bit_identical() {
    let data = toy_biomedical();
    let kind = ModelKind::ComplEx;
    for (kill_threads, resume_threads) in [(1usize, 4usize), (4, 1)] {
        let label = format!("killed@{kill_threads}t resumed@{resume_threads}t");
        let config = config_for(kind, kill_threads, 77);
        let (plain, _) = train(kind, &data.train, &config);

        let (dir, out) = arena(&format!("xthread-{kill_threads}-{resume_threads}"));
        let policy = CheckpointPolicy::new(out.clone(), 1);
        {
            let mut session = TrainSession::new(kind, &data.train, &config).unwrap();
            for _ in 0..3 {
                session.run_epoch();
            }
            session.save_checkpoint(&policy).unwrap();
        }

        let mut resumed_config = config.clone();
        resumed_config.threads = resume_threads;
        let (mut session, report) =
            resume_latest(kind, &data.train, &resumed_config, &out).unwrap();
        assert!(report.resumed_from.is_some(), "{label}");
        session.run(None, None).unwrap();
        let (resumed, _) = session.into_model();
        assert_params_identical(&label, plain.as_ref(), resumed.as_ref());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// End-to-end recovery visibility: the newest checkpoint is corrupted, the
/// run resumes from the previous one, and the JSONL run manifest records
/// both the eviction (`recoveries`) and the checkpoint actually used
/// (`resumed_from`).
#[test]
fn corrupt_newest_fallback_is_visible_in_the_jsonl_run_manifest() {
    let data = toy_biomedical();
    let kind = ModelKind::DistMult;
    let config = config_for(kind, 1, 901);
    let (dir, out) = arena("jsonl");
    let policy = CheckpointPolicy::new(out.clone(), 1);
    // Two checkpoint boundaries, then damage the newest.
    {
        let mut session = TrainSession::new(kind, &data.train, &config).unwrap();
        for _ in 0..2 {
            session.run_epoch();
        }
        session.save_checkpoint(&policy).unwrap();
        for _ in 0..2 {
            session.run_epoch();
        }
        session.save_checkpoint(&policy).unwrap();
    }
    let paths = checkpoint_paths(&out);
    assert_eq!(paths.len(), 2, "{paths:?}");
    let newest = paths.last().unwrap().1.clone();
    let bytes = std::fs::read(&newest).unwrap();
    std::fs::write(&newest, &bytes[..bytes.len() - 7]).unwrap();
    let _ = kgfd_obs::drain_recoveries(); // discard unrelated history

    let jsonl = dir.join("run.jsonl");
    {
        let _guard = kgfd_obs::scoped(std::sync::Arc::new(
            kgfd_obs::JsonlSink::create(&jsonl).unwrap(),
        ));
        let (mut session, report) = resume_latest(kind, &data.train, &config, &out).unwrap();
        assert_eq!(session.epochs_done(), 2, "fell back to the epoch-2 state");
        session.run(None, None).unwrap();
        let mut manifest = kgfd_obs::RunManifest::new("train");
        manifest.model = kind.to_string();
        manifest.resumed_from = report
            .resumed_from
            .as_ref()
            .map(|p| p.display().to_string());
        manifest.emit();
    }

    let text = std::fs::read_to_string(&jsonl).unwrap();
    let mut manifest = None;
    for line in text.lines() {
        let event: kgfd_obs::Event = serde_json::from_str(line).expect("line parses");
        if let kgfd_obs::Payload::Manifest(m) = event.payload {
            manifest = Some(m);
        }
    }
    let manifest = manifest.expect("manifest line present");
    let resumed_from = manifest.resumed_from.expect("resumed_from recorded");
    assert!(
        resumed_from.ends_with("ckpt-00000002"),
        "resumed_from should name the fallback checkpoint: {resumed_from}"
    );
    assert!(
        manifest
            .recoveries
            .iter()
            .any(|r| r.contains("ckpt-00000004") && r.contains("evicted")),
        "manifest recoveries missing the eviction: {:?}",
        manifest.recoveries
    );
    let _ = std::fs::remove_dir_all(&dir);
}
