//! Differential conformance suite for the streaming discovery engine: the
//! chunked, bounded-memory path behind [`discover_facts`] must be
//! **bit-identical** to the materialized oracle
//! ([`discover_facts_materialized`]) — same facts, same ranks, same
//! per-relation bookkeeping — across every sampling strategy, several model
//! families, thread counts, and any chunk size. CI runs this suite under
//! `KGFD_THREADS=1` and `KGFD_THREADS=4`.
//!
//! The `#[ignore]`d bounded-memory test asserts the engine's working-set
//! contract (peak candidate buffer ≤ `chunk_size + top_k`) against the
//! process-global `discover.stream.peak_buffer` gauge; CI runs it in its own
//! process (`cargo test ... -- --ignored`) so unrelated concurrent discovery
//! runs cannot inflate the gauge.

use fact_discovery::{discover_facts, discover_facts_materialized, DiscoveryConfig, StrategyKind};
use kgfd_datasets::{generate, mini, toy_biomedical, wn18rr_like};
use kgfd_embed::{train, KgeModel, ModelKind, TrainConfig};

/// Outer-loop thread count the matrix runs at, besides 1. CI pins this via
/// KGFD_THREADS; locally it defaults to 4.
fn env_threads() -> usize {
    std::env::var("KGFD_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(4)
}

fn trained_toy(kind: ModelKind) -> (kgfd_kg::Dataset, Box<dyn KgeModel>) {
    let data = toy_biomedical();
    let (model, _) = train(
        kind,
        &data.train,
        &TrainConfig {
            dim: 16,
            epochs: 30,
            seed: 5,
            ..TrainConfig::default()
        },
    );
    (data, model)
}

fn base_config(strategy: StrategyKind, threads: usize) -> DiscoveryConfig {
    DiscoveryConfig {
        strategy,
        top_n: 8,
        max_candidates: 30,
        seed: 1,
        threads,
        ..DiscoveryConfig::default()
    }
}

/// Facts (triples AND ranks) and per-relation bookkeeping must agree
/// exactly between the two engines.
fn assert_conformance(
    model: &dyn KgeModel,
    store: &kgfd_kg::TripleStore,
    config: &DiscoveryConfig,
    context: &str,
) {
    let streamed = discover_facts(model, store, config);
    let oracle = discover_facts_materialized(model, store, config);
    assert_eq!(streamed.facts, oracle.facts, "{context}: facts diverged");
    assert_eq!(
        streamed.per_relation.len(),
        oracle.per_relation.len(),
        "{context}: relation row count diverged"
    );
    for (s, m) in streamed.per_relation.iter().zip(&oracle.per_relation) {
        assert_eq!(s.relation, m.relation, "{context}");
        assert_eq!(s.candidates, m.candidates, "{context}: r{}", s.relation.0);
        assert_eq!(s.facts, m.facts, "{context}: r{}", s.relation.0);
        assert_eq!(s.pruned, m.pruned, "{context}: r{}", s.relation.0);
        assert_eq!(s.iterations, m.iterations, "{context}: r{}", s.relation.0);
    }
}

#[test]
fn all_strategies_and_models_stream_bit_identically_to_the_oracle() {
    for kind in [ModelKind::TransE, ModelKind::DistMult, ModelKind::ComplEx] {
        let (data, model) = trained_toy(kind);
        for strategy in StrategyKind::ALL {
            for threads in [1, env_threads()] {
                assert_conformance(
                    model.as_ref(),
                    &data.train,
                    &base_config(strategy, threads),
                    &format!("{kind}/{strategy}/threads={threads}"),
                );
            }
        }
    }
}

#[test]
fn streaming_conforms_with_pruning_consolidation_and_exploration() {
    let (data, model) = trained_toy(ModelKind::ComplEx);
    for threads in [1, env_threads()] {
        let mut cfg = base_config(StrategyKind::GraphDegree, threads);
        cfg.prune_with_rules = true;
        assert_conformance(
            model.as_ref(),
            &data.train,
            &cfg,
            &format!("pruning/threads={threads}"),
        );

        let mut cfg = base_config(StrategyKind::EntityFrequency, threads);
        cfg.consolidate_sides = true;
        assert_conformance(
            model.as_ref(),
            &data.train,
            &cfg,
            &format!("consolidated/threads={threads}"),
        );

        let mut cfg = base_config(StrategyKind::ClusteringTriangles, threads);
        cfg.exploration_epsilon = 0.3;
        assert_conformance(
            model.as_ref(),
            &data.train,
            &cfg,
            &format!("exploration/threads={threads}"),
        );
    }
}

#[test]
fn chunk_size_is_behaviourally_invisible() {
    let (data, model) = trained_toy(ModelKind::DistMult);
    for strategy in StrategyKind::ALL {
        let baseline = discover_facts(model.as_ref(), &data.train, &base_config(strategy, 1));
        // One-at-a-time, a prime that never divides the candidate count
        // evenly, and exactly the whole candidate budget in one chunk.
        for chunk_size in [1, 7, 30] {
            let mut cfg = base_config(strategy, 1);
            cfg.chunk_size = chunk_size;
            let report = discover_facts(model.as_ref(), &data.train, &cfg);
            assert_eq!(
                report.facts, baseline.facts,
                "{strategy}: chunk_size {chunk_size} changed the output"
            );
        }
    }
}

#[test]
fn report_duration_schema_is_identical_between_engines() {
    // Downstream consumers (harness aggregation, JSONL sinks) parse the
    // serialized report; the streaming engine must not add, drop, or rename
    // fields relative to the oracle — including the durations.
    let (data, model) = trained_toy(ModelKind::ComplEx);
    let cfg = base_config(StrategyKind::EntityFrequency, 1);
    let streamed = discover_facts(model.as_ref(), &data.train, &cfg);
    let oracle = discover_facts_materialized(model.as_ref(), &data.train, &cfg);

    let s_json = serde_json::to_value(&streamed);
    let m_json = serde_json::to_value(&oracle);
    let keys = |v: &serde_json::Value| -> Vec<String> {
        v.as_object()
            .expect("report serializes to an object")
            .iter()
            .map(|(k, _)| k.clone())
            .collect()
    };
    assert_eq!(keys(&s_json), keys(&m_json), "top-level schema diverged");
    assert_eq!(
        keys(&s_json["per_relation"][0]),
        keys(&m_json["per_relation"][0]),
        "per-relation schema diverged"
    );
    assert_eq!(
        keys(&s_json["facts"][0]),
        keys(&m_json["facts"][0]),
        "fact schema diverged"
    );

    // Sequential run: the streamed phase durations must still telescope.
    assert!(
        streamed.preparation + streamed.generation + streamed.evaluation <= streamed.total,
        "streamed phase durations exceed the wall clock"
    );
}

#[test]
#[ignore = "asserts the process-global peak-buffer gauge; CI runs it isolated via -- --ignored"]
fn peak_candidate_buffer_is_bounded_by_chunk_size_plus_top_k() {
    // A larger synthetic graph so the stream actually cycles many chunks
    // per relation.
    let data = generate(&mini(&wn18rr_like())).unwrap();
    let (model, _) = train(
        ModelKind::DistMult,
        &data.train,
        &TrainConfig {
            dim: 16,
            epochs: 6,
            seed: 3,
            ..TrainConfig::default()
        },
    );

    kgfd_obs::registry().reset();
    let chunk_size = 64;
    let top_k = 25;
    let cfg = DiscoveryConfig {
        strategy: StrategyKind::EntityFrequency,
        top_n: 100,
        max_candidates: 400,
        chunk_size,
        top_k: Some(top_k),
        seed: 9,
        threads: env_threads(),
        ..DiscoveryConfig::default()
    };
    let report = discover_facts(model.as_ref(), &data.train, &cfg);

    assert!(
        report.candidates_generated() > chunk_size,
        "graph too small to exercise multi-chunk streaming ({} candidates)",
        report.candidates_generated()
    );
    for rel in &report.per_relation {
        assert!(rel.facts <= top_k, "top_k violated for r{}", rel.relation.0);
    }

    let peak = kgfd_obs::gauge("discover.stream.peak_buffer").get();
    assert!(peak > 0.0, "peak-buffer gauge never set");
    assert!(
        peak <= (chunk_size + top_k) as f64,
        "peak candidate buffer {peak} exceeds chunk_size + top_k = {}",
        chunk_size + top_k
    );
    let chunks = kgfd_obs::counter("discover.stream.chunks").get();
    assert!(
        chunks > 1,
        "expected multiple streamed chunks, got {chunks}"
    );
}
