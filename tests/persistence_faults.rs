//! Fault-injection suite for the v2 model persistence format and the zoo's
//! cache-recovery policy.
//!
//! Every injected fault — truncation at a section boundary, random bit
//! flips, version skew, a partially-written file on disk, concurrent cache
//! writers — must surface as a typed [`KgError`] or a logged
//! eviction-and-retrain, never as a panic or a silently-wrong model. The
//! companion golden test pins the v2 byte layout itself; see
//! `tests/golden/model_format_v2.txt`.

use kgfd_embed::models::{Distance, TransE};
use kgfd_embed::{
    crc32, load_model, new_model, read_model_file, save_model, KgeModel, ModelKind, FORMAT_VERSION,
};
use kgfd_harness::{cache_dir, trained_model, trained_model_threaded, DatasetRef, Scale};
use kgfd_kg::{KgError, Triple};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};

// Layout constants of the v2 format, stated independently of the
// implementation (see DESIGN.md "Persistence format v2") so a drift in
// either place fails loudly here.
const FIXED_HEADER_LEN: usize = 32;
const TABLE_ENTRY_LEN: usize = 16;
const FOOTER_LEN: usize = 4;

/// The recovery log and the process observer are global; tests that evict
/// cache entries or install observers must not interleave.
static ZOO_LOCK: Mutex<()> = Mutex::new(());

fn fixture_model() -> Box<dyn KgeModel> {
    new_model(ModelKind::DistMult, 5, 2, 8, 42)
}

/// Section boundaries of a v2 file: start, inside magic, after magic, after
/// version, after the fixed header, after each table-directory entry, mid
/// payload, at the footer, and one byte short of complete.
fn section_boundaries(bytes: &[u8]) -> Vec<usize> {
    let num_tables = bytes[FIXED_HEADER_LEN - 1] as usize;
    let header_len = FIXED_HEADER_LEN + num_tables * TABLE_ENTRY_LEN;
    let mut cuts = vec![0, 2, 4, 5, FIXED_HEADER_LEN];
    for t in 1..=num_tables {
        cuts.push(FIXED_HEADER_LEN + t * TABLE_ENTRY_LEN);
    }
    cuts.push(header_len + (bytes.len() - FOOTER_LEN - header_len) / 2);
    cuts.push(bytes.len() - FOOTER_LEN);
    cuts.push(bytes.len() - 1);
    cuts
}

#[test]
fn truncation_at_every_section_boundary_is_a_typed_error() {
    let bytes = save_model(fixture_model().as_ref());
    for cut in section_boundaries(&bytes) {
        match load_model(&bytes[..cut]) {
            Err(KgError::Corrupt(_)) => {}
            Err(other) => panic!("cut at {cut}: expected Corrupt, got {other}"),
            Ok(_) => panic!("cut at {cut}: truncated file loaded"),
        }
    }
}

#[test]
fn random_bit_flips_never_panic_and_never_load_silently() {
    let model = fixture_model();
    let bytes = save_model(model.as_ref());
    let reference = model.score(Triple::new(0u32, 0u32, 1u32));
    let mut rng = StdRng::seed_from_u64(0xFA_017);
    for _ in 0..500 {
        let mut corrupted = bytes.to_vec();
        // 1–4 random single-bit flips anywhere in the file.
        for _ in 0..rng.random_range(1..5) {
            let byte = rng.random_range(0..corrupted.len());
            let bit = rng.random_range(0..8u32);
            corrupted[byte] ^= 1 << bit;
        }
        match load_model(&corrupted) {
            // Typed rejection is the expected outcome.
            Err(
                KgError::Corrupt(_) | KgError::UnsupportedVersion { .. } | KgError::Migration(_),
            ) => {}
            Err(other) => panic!("bit flips produced unexpected error kind: {other}"),
            // An even number of flips can cancel out and reproduce the
            // original bytes — only then may the load succeed, and the
            // model must be the original one.
            Ok(loaded) => {
                assert_eq!(corrupted, bytes.to_vec(), "corrupted bytes loaded");
                assert_eq!(
                    loaded.score(Triple::new(0u32, 0u32, 1u32)).to_bits(),
                    reference.to_bits()
                );
            }
        }
    }
}

#[test]
fn version_skew_is_reported_with_the_found_version() {
    let bytes = save_model(fixture_model().as_ref());
    for skewed in [0u8, 3, 4, 9, 255] {
        let mut copy = bytes.to_vec();
        copy[4] = skewed;
        match load_model(&copy) {
            Err(KgError::UnsupportedVersion {
                found,
                max_supported,
            }) => {
                assert_eq!(found, skewed);
                assert_eq!(max_supported, FORMAT_VERSION);
            }
            other => panic!(
                "version {skewed}: expected UnsupportedVersion, got {other:?}",
                other = other.err().map(|e| e.to_string())
            ),
        }
    }
}

#[test]
fn partially_written_file_on_disk_is_a_typed_error_with_path_context() {
    let dir = std::env::temp_dir().join(format!("kgfd-faults-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("partial.kgfd");
    let bytes = save_model(fixture_model().as_ref());
    // Simulate a writer killed mid-write: a prefix of the real bytes. The
    // atomic temp-file + rename protocol means this can only ever be
    // observed for files written by *other* (non-atomic) tooling — and the
    // reader must still reject it cleanly.
    for cut in [5usize, FIXED_HEADER_LEN, bytes.len() / 2, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let err = read_model_file(&path).err().expect("partial file loaded");
        assert!(matches!(err, KgError::Corrupt(_)), "cut {cut}: {err}");
        assert!(
            err.to_string().contains("partial.kgfd"),
            "cut {cut}: missing path context: {err}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn zoo_cache_path(dataset: DatasetRef, model: ModelKind, scale: Scale) -> PathBuf {
    cache_dir().join(format!(
        "{}-{}-{}-v3.kgfd",
        dataset.name(),
        model.name(),
        scale.name()
    ))
}

#[test]
fn zoo_evicts_truncated_cache_entry_and_retrains_identically() {
    let _serial = ZOO_LOCK.lock();
    let dataset = DatasetRef::CodexL;
    let kind = ModelKind::HolE;
    let data = dataset.load(Scale::Mini);
    let path = zoo_cache_path(dataset, kind, Scale::Mini);
    let _ = std::fs::remove_file(&path);

    let a = trained_model(dataset, kind, Scale::Mini, &data);
    // Interrupted write: leave a prefix of the valid entry on disk.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();

    let b = trained_model(dataset, kind, Scale::Mini, &data);
    let t = data.train.triples()[0];
    assert_eq!(
        a.score(t).to_bits(),
        b.score(t).to_bits(),
        "deterministic retrain after eviction"
    );
    let repaired = read_model_file(&path).expect("cache entry repaired");
    assert_eq!(repaired.score(t).to_bits(), a.score(t).to_bits());
    let recoveries = kgfd_obs::drain_recoveries();
    assert!(
        recoveries.iter().any(|r| r.contains("zoo.cache.corrupt")),
        "eviction missing from recovery log: {recoveries:?}"
    );
}

#[test]
fn zoo_evicts_version_skewed_cache_entry() {
    let _serial = ZOO_LOCK.lock();
    let dataset = DatasetRef::Wn18rr;
    let kind = ModelKind::HolE;
    let data = dataset.load(Scale::Mini);
    let path = zoo_cache_path(dataset, kind, Scale::Mini);
    let _ = std::fs::remove_file(&path);

    let a = trained_model(dataset, kind, Scale::Mini, &data);
    // A cache entry from a hypothetical future format version.
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[4] = FORMAT_VERSION + 1;
    std::fs::write(&path, &bytes).unwrap();

    let b = trained_model(dataset, kind, Scale::Mini, &data);
    let t = data.train.triples()[0];
    assert_eq!(a.score(t).to_bits(), b.score(t).to_bits());
    assert_eq!(
        read_model_file(&path).expect("repaired").score(t).to_bits(),
        a.score(t).to_bits()
    );
    let _ = kgfd_obs::drain_recoveries();
}

#[test]
fn concurrent_zoo_access_yields_identical_models_and_a_valid_cache() {
    let _serial = ZOO_LOCK.lock();
    let dataset = DatasetRef::Fb15k237;
    let kind = ModelKind::DistMult;
    let data = dataset.load(Scale::Mini);
    let path = zoo_cache_path(dataset, kind, Scale::Mini);
    let _ = std::fs::remove_file(&path);

    // Four threads race on the same cold pair: some train, some may hit the
    // cache a racer just wrote. Training is deterministic and the cache
    // write is atomic, so every outcome must be bit-identical.
    let models: Vec<Box<dyn KgeModel>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| s.spawn(|| trained_model_threaded(dataset, kind, Scale::Mini, &data, 1)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let probes: Vec<Triple> = data.train.triples().iter().take(16).copied().collect();
    for m in &models[1..] {
        for &t in &probes {
            assert_eq!(m.score(t).to_bits(), models[0].score(t).to_bits());
        }
    }
    // Whichever rename landed last left a complete, checksummed entry.
    let cached = read_model_file(&path).expect("cache valid after the race");
    for &t in &probes {
        assert_eq!(cached.score(t).to_bits(), models[0].score(t).to_bits());
    }
    let _ = kgfd_obs::drain_recoveries();
}

#[test]
fn zoo_recovery_is_visible_in_the_jsonl_run_manifest() {
    let _serial = ZOO_LOCK.lock();
    let dataset = DatasetRef::Yago310;
    let kind = ModelKind::SimplE;
    let data = dataset.load(Scale::Mini);
    let path = zoo_cache_path(dataset, kind, Scale::Mini);
    let _ = std::fs::remove_file(&path);
    // Populate the cache, then flip one payload byte.
    let _ = trained_model(dataset, kind, Scale::Mini, &data);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();
    let _ = kgfd_obs::drain_recoveries(); // discard unrelated history

    let dir = std::env::temp_dir().join(format!("kgfd-faults-jsonl-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let jsonl = dir.join("run.jsonl");
    {
        let _guard = kgfd_obs::scoped(std::sync::Arc::new(
            kgfd_obs::JsonlSink::create(&jsonl).unwrap(),
        ));
        let _model = trained_model(dataset, kind, Scale::Mini, &data);
        kgfd_obs::RunManifest {
            command: "discover".to_string(),
            crate_version: "test".to_string(),
            strategy: "uniform".to_string(),
            model: kind.name().to_string(),
            seed: 0,
            dataset: kgfd_obs::DatasetShape {
                entities: data.train.num_entities() as u64,
                relations: data.train.num_relations() as u64,
                triples: data.train.len() as u64,
            },
            config: Vec::new(),
            wall_clock_s: 0.0,
            recoveries: Vec::new(),
            resumed_from: None,
            trace: None,
            pool: None,
        }
        .emit();
    }

    let text = std::fs::read_to_string(&jsonl).unwrap();
    let mut manifest_recoveries = None;
    let mut saw_corrupt_metric = false;
    for line in text.lines() {
        let value: serde_json::Value = serde_json::from_str(line).expect("line parses");
        let event: kgfd_obs::Event =
            serde::Deserialize::deserialize(&value).expect("line matches the Event schema");
        match event.payload {
            kgfd_obs::Payload::Manifest(m) => manifest_recoveries = Some(m.recoveries),
            kgfd_obs::Payload::Metric { name, .. } if name == "zoo.cache.corrupt" => {
                saw_corrupt_metric = true;
            }
            _ => {}
        }
    }
    assert!(
        saw_corrupt_metric,
        "no zoo.cache.corrupt metric in:\n{text}"
    );
    let recoveries = manifest_recoveries.expect("manifest line present");
    assert!(
        recoveries
            .iter()
            .any(|r| r.contains("zoo.cache.corrupt") && r.contains("checksum mismatch")),
        "manifest recoveries missing the eviction: {recoveries:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Fault injection for "KGCK" v1 training checkpoints.
// ---------------------------------------------------------------------------

use kgfd_datasets::toy_biomedical;
use kgfd_embed::{
    checkpoint_paths, read_checkpoint_file, resume_latest, CheckpointPolicy, TrainConfig,
    TrainSession, CHECKPOINT_VERSION,
};

fn ckpt_config() -> TrainConfig {
    TrainConfig {
        dim: 8,
        epochs: 6,
        batch_size: 32,
        negatives: 2,
        seed: 40,
        threads: 1,
        ..TrainConfig::default()
    }
}

/// A scratch dir plus the output path checkpoints sit beside; unique per
/// test so the suites can run in parallel.
fn ckpt_arena(tag: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!("kgfd-ckpt-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("model.kgfd");
    (dir, out)
}

/// Trains `epochs` and saves one checkpoint at that boundary.
fn checkpoint_after(
    store: &kgfd_kg::TripleStore,
    config: &TrainConfig,
    out: &Path,
    epochs: usize,
) -> PathBuf {
    let mut session = TrainSession::new(ModelKind::DistMult, store, config).unwrap();
    for _ in 0..epochs {
        session.run_epoch();
    }
    let policy = CheckpointPolicy::new(out.to_path_buf(), 1);
    session.save_checkpoint(&policy).unwrap()
}

/// A writer killed *between* the temp-file write and the rename leaves a
/// dot-prefixed `.tmp.` sibling behind. That debris must be invisible to
/// resume: it is not enumerated as a checkpoint, and the real checkpoint
/// next to it restores normally.
#[test]
fn stale_tmp_sibling_from_a_killed_writer_is_ignored_on_resume() {
    let data = toy_biomedical();
    let config = ckpt_config();
    let (dir, out) = ckpt_arena("tmp");
    let real = checkpoint_after(&data.train, &config, &out, 2);
    // Debris mimicking persist.rs's `.{name}.tmp.{pid}.{n}` temp sibling,
    // plus a half-written checkpoint-named file with a non-digit suffix.
    std::fs::write(dir.join(".model.kgfd.ckpt-00000003.tmp.9999.0"), b"garbage").unwrap();
    std::fs::write(dir.join("model.kgfd.ckpt-00000003x"), b"partial").unwrap();

    let found = checkpoint_paths(&out);
    assert_eq!(
        found.iter().map(|(e, _)| *e).collect::<Vec<_>>(),
        vec![2],
        "only the completed checkpoint may be enumerated: {found:?}"
    );
    let (session, report) = resume_latest(ModelKind::DistMult, &data.train, &config, &out).unwrap();
    assert_eq!(session.epochs_done(), 2);
    assert_eq!(report.resumed_from.as_deref(), Some(real.as_path()));
    assert!(report.recoveries.is_empty(), "{:?}", report.recoveries);
    let _ = kgfd_obs::drain_recoveries();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Truncating the newest checkpoint (a crash mid-write without the atomic
/// protocol, or disk damage) must fall back to the previous boundary: the
/// bad file is evicted, the recovery recorded, and training resumes from
/// the older state.
#[test]
fn truncated_newest_checkpoint_falls_back_to_the_previous_one() {
    let data = toy_biomedical();
    let config = ckpt_config();
    let (dir, out) = ckpt_arena("trunc");
    let older = checkpoint_after(&data.train, &config, &out, 2);
    let newest = checkpoint_after(&data.train, &config, &out, 4);
    let bytes = std::fs::read(&newest).unwrap();
    std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();

    let (session, report) = resume_latest(ModelKind::DistMult, &data.train, &config, &out).unwrap();
    assert_eq!(session.epochs_done(), 2, "fell back to the epoch-2 state");
    assert_eq!(report.resumed_from.as_deref(), Some(older.as_path()));
    assert_eq!(report.recoveries.len(), 1);
    assert!(
        report.recoveries[0].contains("evicted"),
        "{}",
        report.recoveries[0]
    );
    assert!(!newest.exists(), "the truncated file must be evicted");
    let _ = kgfd_obs::drain_recoveries();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A checkpoint stamped with a future format version is a typed
/// [`KgError::UnsupportedVersion`] when read directly, and resume evicts it
/// (this binary cannot parse it — its layout is unknown) and starts over.
#[test]
fn version_skewed_checkpoint_is_typed_and_evicted_on_resume() {
    let data = toy_biomedical();
    let config = ckpt_config();
    let (dir, out) = ckpt_arena("skew");
    let path = checkpoint_after(&data.train, &config, &out, 3);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[4] = CHECKPOINT_VERSION + 1; // version byte right after "KGCK"
    std::fs::write(&path, &bytes).unwrap();

    match read_checkpoint_file(&path) {
        Err(KgError::UnsupportedVersion {
            found,
            max_supported,
        }) => {
            assert_eq!(found, CHECKPOINT_VERSION + 1);
            assert_eq!(max_supported, CHECKPOINT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    let (session, report) = resume_latest(ModelKind::DistMult, &data.train, &config, &out).unwrap();
    assert_eq!(session.epochs_done(), 0, "no usable checkpoint → fresh run");
    assert!(report.resumed_from.is_none());
    assert_eq!(report.recoveries.len(), 1);
    let _ = kgfd_obs::drain_recoveries();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A structurally healthy checkpoint whose fingerprint disagrees with the
/// requested configuration must be *refused*, not silently skipped or
/// deleted — resuming it would train a different run than the one asked
/// for, and falling back would quietly discard the user's state.
#[test]
fn mismatched_fingerprint_checkpoint_is_refused_and_left_on_disk() {
    let data = toy_biomedical();
    let config = ckpt_config();
    let (dir, out) = ckpt_arena("fp");
    let path = checkpoint_after(&data.train, &config, &out, 3);
    let mut other = config.clone();
    other.seed = config.seed + 1;

    match resume_latest(ModelKind::DistMult, &data.train, &other, &out) {
        Err(KgError::CheckpointMismatch { expected, found }) => {
            assert_ne!(expected, found);
        }
        other => panic!(
            "expected CheckpointMismatch, got {other:?}",
            other = other.as_ref().err().map(|e| e.to_string())
        ),
    }
    assert!(
        path.exists(),
        "a refused checkpoint must not be deleted — the user may still want it"
    );
    let _ = kgfd_obs::drain_recoveries();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Golden snapshot of the v2 byte layout.
// ---------------------------------------------------------------------------

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {}: {e}\n\
             (run `UPDATE_GOLDEN=1 cargo test --test persistence_faults` to create it)",
            path.display()
        )
    });
    assert_eq!(
        expected,
        actual,
        "v2 layout drifted from {} — if intentional, regenerate with \
         `UPDATE_GOLDEN=1 cargo test --test persistence_faults` and commit the diff",
        path.display()
    );
}

fn hex(bytes: &[u8]) -> String {
    bytes
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Renders the header, table directory, and footer of a v2 file as an
/// annotated hex dump. The f32 payload is summarized by length (its values
/// are init noise), but it is still covered by the rendered CRC.
fn render_layout(bytes: &[u8]) -> String {
    let num_tables = bytes[FIXED_HEADER_LEN - 1] as usize;
    let header_len = FIXED_HEADER_LEN + num_tables * TABLE_ENTRY_LEN;
    let payload_len = bytes.len() - header_len - FOOTER_LEN;
    let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
    let crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    let mut out = String::new();
    out.push_str("offset  field          bytes\n");
    out.push_str(&format!(
        "0       magic          {}  (\"KGFD\")\n",
        hex(&bytes[0..4])
    ));
    out.push_str(&format!("4       version        {}\n", hex(&bytes[4..5])));
    out.push_str(&format!("5       kind           {}\n", hex(&bytes[5..6])));
    out.push_str(&format!(
        "6       flags          {}  (bit0: TransE distance, 1 = L2)\n",
        hex(&bytes[6..7])
    ));
    out.push_str(&format!(
        "7       num_entities   {}  ({})\n",
        hex(&bytes[7..15]),
        u64_at(7)
    ));
    out.push_str(&format!(
        "15      num_relations  {}  ({})\n",
        hex(&bytes[15..23]),
        u64_at(15)
    ));
    out.push_str(&format!(
        "23      dim            {}  ({})\n",
        hex(&bytes[23..31]),
        u64_at(23)
    ));
    out.push_str(&format!("31      num_tables     {}\n", hex(&bytes[31..32])));
    for t in 0..num_tables {
        let off = FIXED_HEADER_LEN + t * TABLE_ENTRY_LEN;
        out.push_str(&format!(
            "{off:<7} table {t} shape  {}  ({} x {})\n",
            hex(&bytes[off..off + 16]),
            u64_at(off),
            u64_at(off + 8)
        ));
    }
    out.push_str(&format!(
        "{header_len:<7} payload        {payload_len} bytes of f32 LE table data\n"
    ));
    out.push_str(&format!(
        "{:<7} crc32 footer   {}  ({crc:#010x}, over all preceding bytes)\n",
        bytes.len() - 4,
        hex(&bytes[bytes.len() - 4..])
    ));
    out.push_str(&format!("\ntotal: {} bytes\n", bytes.len()));
    out
}

/// Renders the section structure of a "KGCK" v1 checkpoint as an annotated
/// dump. Bulk f32 payloads are summarized by length; every header integer
/// is shown verbatim, and the CRC covers the whole file.
fn render_checkpoint_layout(bytes: &[u8]) -> String {
    let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
    let crc = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    let mut out = String::new();
    out.push_str("offset  field          value\n");
    out.push_str(&format!(
        "0       magic          {}  (\"KGCK\")\n",
        hex(&bytes[0..4])
    ));
    out.push_str(&format!("4       version        {}\n", hex(&bytes[4..5])));
    out.push_str(&format!("5       fingerprint    {:#018x}\n", u64_at(5)));
    out.push_str(&format!("13      epochs_done    {}\n", u64_at(13)));
    out.push_str(&format!(
        "21      rng_state      [{:#x}, {:#x}, {:#x}, {:#x}]\n",
        u64_at(21),
        u64_at(29),
        u64_at(37),
        u64_at(45)
    ));
    let num_losses = u64_at(53) as usize;
    let mut off = 61;
    out.push_str(&format!("53      num_losses     {num_losses}\n"));
    for i in 0..num_losses {
        out.push_str(&format!(
            "{off:<7} loss[{i}]        {}\n",
            f64::from_bits(u64_at(off))
        ));
        off += 8;
    }
    let model_len = u64_at(off) as usize;
    out.push_str(&format!("{off:<7} model_len      {model_len}\n"));
    off += 8;
    out.push_str(&format!(
        "{off:<7} model bytes    {model_len} bytes (embedded \"KGFD\" v2 file)\n"
    ));
    off += model_len;
    let tag = bytes[off];
    out.push_str(&format!(
        "{off:<7} optimizer tag  {tag:#04x}  (0 = SGD, 1 = Adagrad, 2 = Adam)\n"
    ));
    off += 1;
    let opt_len = bytes.len() - FOOTER_LEN - off;
    out.push_str(&format!(
        "{off:<7} optimizer data {opt_len} bytes (shape directory + f32 state)\n"
    ));
    out.push_str(&format!(
        "{:<7} crc32 footer   {}  ({crc:#010x}, over all preceding bytes)\n",
        bytes.len() - 4,
        hex(&bytes[bytes.len() - 4..])
    ));
    out.push_str(&format!("\ntotal: {} bytes\n", bytes.len()));
    out
}

#[test]
fn kgck_v1_layout_matches_golden_snapshot() {
    // A real checkpoint taken 2 epochs into a seeded DistMult run: every
    // byte — init noise, Adam moments, losses, RNG position — is
    // reproducible, so the snapshot pins the layout *and* the determinism
    // of the state feeding it.
    let data = toy_biomedical();
    let config = TrainConfig {
        dim: 8,
        epochs: 4,
        batch_size: 32,
        negatives: 2,
        seed: 99,
        threads: 1,
        ..TrainConfig::default()
    };
    let mut session = TrainSession::new(ModelKind::DistMult, &data.train, &config).unwrap();
    session.run_epoch();
    session.run_epoch();
    let bytes = session.checkpoint().encode();
    assert_eq!(
        u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap()),
        crc32(&bytes[..bytes.len() - 4])
    );
    let layout = format!(
        "KGCK v1 checkpoint layout (DistMult, dim 8, seed 99, 2 of 4 epochs done)\n\n{}",
        render_checkpoint_layout(&bytes)
    );
    assert_matches_golden("checkpoint_format_v1.txt", &layout);
}

#[test]
fn v2_header_layout_matches_golden_snapshot() {
    // A TransE/L2 model exercises the kind tag and the distance flag; the
    // seeded init makes every byte (and therefore the CRC) reproducible.
    let model = TransE::new(5, 2, 4, Distance::L2, 9);
    let bytes = save_model(&model);
    // The rendered footer must agree with an independent CRC computation.
    assert_eq!(
        u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap()),
        crc32(&bytes[..bytes.len() - 4])
    );
    let layout = format!(
        "v2 model file layout (TransE, L2, 5 entities, 2 relations, dim 4, seed 9)\n\n{}",
        render_layout(&bytes)
    );
    assert_matches_golden("model_format_v2.txt", &layout);
}
