//! Shape-level assertions of the paper's key findings (§4.2.4, §4.3) on the
//! mini-scale reproduction: who wins, who trails, and which structural
//! relationships hold. Absolute numbers differ (simulated data, Rust CPU
//! kernels); orderings are what these tests pin down.

use fact_discovery::{discover_facts, DiscoveryConfig, Measures, StrategyKind};
use kgfd_embed::ModelKind;
use kgfd_graph_stats::GraphSummary;
use kgfd_harness::{trained_model, DatasetRef, Scale};
use std::collections::HashMap;

/// Runs all paper-grid strategies for several models on FB-mini and returns
/// mean MRR and mean fact count per strategy.
fn strategy_averages() -> HashMap<StrategyKind, (f64, f64)> {
    let dataset = DatasetRef::Fb15k237;
    let data = dataset.load(Scale::Mini);
    let models = [ModelKind::TransE, ModelKind::DistMult, ModelKind::ComplEx];
    let mut sums: HashMap<StrategyKind, (f64, f64)> = HashMap::new();
    for kind in models {
        let model = trained_model(dataset, kind, Scale::Mini, &data);
        for strategy in StrategyKind::PAPER_GRID {
            let report = discover_facts(
                model.as_ref(),
                &data.train,
                &DiscoveryConfig {
                    strategy,
                    top_n: 50,
                    max_candidates: 100,
                    seed: 7,
                    ..DiscoveryConfig::default()
                },
            );
            let e = sums.entry(strategy).or_default();
            e.0 += report.mrr();
            e.1 += report.facts.len() as f64;
        }
    }
    for v in sums.values_mut() {
        v.0 /= models.len() as f64;
        v.1 /= models.len() as f64;
    }
    sums
}

#[test]
fn frequency_and_popularity_strategies_beat_uniform_on_quality() {
    // §4.2.4: "sampling methods based on node frequency or popularity
    // yielded positive results"; UNIFORM RANDOM and CLUSTERING COEFFICIENT
    // "performed poorly in the quality of discovered facts".
    let avg = strategy_averages();
    let mrr = |s: StrategyKind| avg[&s].0;
    assert!(
        mrr(StrategyKind::EntityFrequency) > mrr(StrategyKind::UniformRandom),
        "EF {} must beat UR {}",
        mrr(StrategyKind::EntityFrequency),
        mrr(StrategyKind::UniformRandom)
    );
    assert!(
        mrr(StrategyKind::GraphDegree) > mrr(StrategyKind::UniformRandom),
        "GD must beat UR"
    );
    assert!(
        mrr(StrategyKind::ClusteringTriangles) > mrr(StrategyKind::ClusteringCoefficient),
        "CT {} must beat CC {} by a wide margin (§4.2.2)",
        mrr(StrategyKind::ClusteringTriangles),
        mrr(StrategyKind::ClusteringCoefficient)
    );
}

#[test]
fn clustering_coefficient_is_a_bottom_two_strategy() {
    let avg = strategy_averages();
    let mut by_mrr: Vec<(StrategyKind, f64)> = avg.iter().map(|(&s, &(m, _))| (s, m)).collect();
    by_mrr.sort_by(|a, b| a.1.total_cmp(&b.1));
    let bottom_two: Vec<StrategyKind> = by_mrr.iter().take(2).map(|(s, _)| *s).collect();
    assert!(
        bottom_two.contains(&StrategyKind::ClusteringCoefficient)
            || bottom_two.contains(&StrategyKind::UniformRandom),
        "UR/CC should populate the bottom of the quality ranking: {by_mrr:?}"
    );
}

#[test]
fn wn18rr_is_sparsest_and_fb15k237_densest() {
    // Figure 3's ordering drives the paper's density analysis.
    let clustering =
        |d: DatasetRef| GraphSummary::compute(&d.load(Scale::Mini).train).avg_clustering;
    let wn = clustering(DatasetRef::Wn18rr);
    let fb = clustering(DatasetRef::Fb15k237);
    let yago = clustering(DatasetRef::Yago310);
    let codex = clustering(DatasetRef::CodexL);
    assert!(wn < fb && wn < yago && wn < codex, "WN18RR sparsest");
    assert!(fb > yago && fb > codex, "FB15K-237 densest");
}

#[test]
fn squares_preparation_dwarfs_every_other_strategy() {
    // §4.3: CLUSTERING SQUARES took ~54 h vs 2–3 h — an order of magnitude.
    let data = DatasetRef::Fb15k237.load(Scale::Mini);
    // min-of-3 is robust to scheduler noise when the whole suite runs in
    // parallel; the asymmetry being asserted is orders of magnitude.
    let time = |s: StrategyKind| {
        (0..3)
            .map(|_| {
                let t0 = std::time::Instant::now();
                let m = Measures::compute(s, &data.train);
                std::hint::black_box(&m);
                t0.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let squares = time(StrategyKind::ClusteringSquares);
    let triangles = time(StrategyKind::ClusteringTriangles);
    let degree = time(StrategyKind::GraphDegree);
    assert!(
        squares > 3.0 * triangles,
        "squares {squares}s vs triangles {triangles}s"
    );
    assert!(
        squares > 3.0 * degree,
        "squares {squares}s vs degree {degree}s"
    );
}

#[test]
fn top_n_widens_output_without_touching_generation() {
    // §4.3.1: top_n has "practically no visible impact on the runtime", it
    // only filters; max_candidates scales the evaluated set.
    let dataset = DatasetRef::Fb15k237;
    let data = dataset.load(Scale::Mini);
    let model = trained_model(dataset, ModelKind::TransE, Scale::Mini, &data);
    let run = |top_n: usize, max_candidates: usize| {
        discover_facts(
            model.as_ref(),
            &data.train,
            &DiscoveryConfig {
                strategy: StrategyKind::ClusteringTriangles,
                top_n,
                max_candidates,
                seed: 3,
                ..DiscoveryConfig::default()
            },
        )
    };
    let tight = run(10, 80);
    let loose = run(60, 80);
    assert_eq!(tight.candidates_generated(), loose.candidates_generated());
    assert!(loose.facts.len() >= tight.facts.len());

    let small = run(30, 20);
    let large = run(30, 100);
    assert!(
        large.candidates_generated() > small.candidates_generated(),
        "max_candidates scales the evaluated candidate set"
    );
}

#[test]
fn mrr_degrades_as_top_n_grows() {
    // Figure 8(b): admitting lower-ranked facts dilutes MRR.
    let dataset = DatasetRef::Fb15k237;
    let data = dataset.load(Scale::Mini);
    let model = trained_model(dataset, ModelKind::TransE, Scale::Mini, &data);
    let mrr_at = |top_n: usize| {
        discover_facts(
            model.as_ref(),
            &data.train,
            &DiscoveryConfig {
                strategy: StrategyKind::ClusteringTriangles,
                top_n,
                max_candidates: 100,
                seed: 3,
                ..DiscoveryConfig::default()
            },
        )
        .mrr()
    };
    let strict = mrr_at(10);
    let loose = mrr_at(80);
    assert!(
        strict > loose,
        "MRR at top_n=10 ({strict}) must exceed top_n=80 ({loose})"
    );
}
