//! Hierarchical tracing end-to-end: span trees produced by a real discovery
//! run must nest correctly across worker threads, account for the run's
//! wall-clock time, and never perturb the numerical results.

use fact_discovery::{discover_facts, DiscoveryConfig, StrategyKind};
use kgfd_datasets::{generate, mini, wn18rr_like};
use kgfd_embed::{save_model, train, ModelKind, TrainConfig};
use kgfd_obs::TraceTree;
use std::collections::HashSet;
use std::sync::Mutex;

/// The trace collector is process-global; tests that enable/drain it must
/// not interleave.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn trained_mini_model(seed: u64) -> (kgfd_kg::Dataset, Box<dyn kgfd_embed::KgeModel>) {
    let data = generate(&mini(&wn18rr_like())).unwrap();
    let (model, _) = train(
        ModelKind::DistMult,
        &data.train,
        &TrainConfig {
            dim: 16,
            epochs: 6,
            seed,
            ..TrainConfig::default()
        },
    );
    (data, model)
}

fn discovery_config(threads: usize) -> DiscoveryConfig {
    DiscoveryConfig {
        strategy: StrategyKind::GraphDegree,
        top_n: 20,
        max_candidates: 40,
        seed: 5,
        threads,
        ..DiscoveryConfig::default()
    }
}

#[test]
fn trace_tree_nests_across_worker_threads() {
    let _guard = TRACE_LOCK.lock().unwrap();
    let (data, model) = trained_mini_model(3);

    kgfd_obs::enable_tracing();
    kgfd_obs::collector().drain(); // discard any spans from setup
    let report = discover_facts(model.as_ref(), &data.train, &discovery_config(4));
    let records = kgfd_obs::collector().drain();
    kgfd_obs::disable_tracing();

    assert!(!report.facts.is_empty(), "discovery should find facts");
    assert!(!records.is_empty(), "tracing should capture spans");

    // Every non-root parent id must refer to a recorded span.
    let ids: HashSet<u64> = records.iter().map(|r| r.id).collect();
    for r in &records {
        if let Some(parent) = r.parent {
            assert!(
                ids.contains(&parent),
                "span {} ({}) has dangling parent {}",
                r.id,
                r.name,
                parent
            );
        }
    }

    fn ancestor_names<'a>(
        by_id: &std::collections::HashMap<u64, &'a kgfd_obs::SpanRecord>,
        mut r: &'a kgfd_obs::SpanRecord,
    ) -> Vec<String> {
        let mut names = Vec::new();
        while let Some(p) = r.parent {
            r = by_id[&p];
            names.push(r.name.clone());
        }
        names
    }
    let by_id: std::collections::HashMap<u64, &kgfd_obs::SpanRecord> =
        records.iter().map(|r| (r.id, r)).collect();

    // The dispatching span is the root of everything.
    let total = records
        .iter()
        .find(|r| r.name == "discover.total")
        .expect("discover.total span");
    assert!(total.parent.is_none(), "discover.total must be a root");

    // Per-relation spans run on worker threads yet still chain up to the
    // dispatching discover.total span.
    let relations: Vec<_> = records
        .iter()
        .filter(|r| r.name == "discover.relation")
        .collect();
    assert!(!relations.is_empty(), "expected discover.relation spans");
    let worker_threads: HashSet<u64> = relations.iter().map(|r| r.thread).collect();
    assert!(
        worker_threads.iter().any(|&t| t != total.thread),
        "with threads=4 at least one relation span should run off the \
         dispatching thread (saw threads {worker_threads:?})"
    );
    for r in &relations {
        assert!(
            ancestor_names(&by_id, r).contains(&"discover.total".to_string()),
            "discover.relation must nest under discover.total"
        );
    }

    // Generation/evaluation spans nest under their relation span, and the
    // ranking kernel tiles nest under evaluation.
    for name in ["discover.generation", "discover.evaluation"] {
        let span = records
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("expected a {name} span"));
        assert!(
            ancestor_names(&by_id, span).contains(&"discover.relation".to_string()),
            "{name} must nest under discover.relation"
        );
    }
    let kernel = records
        .iter()
        .find(|r| r.name == "eval.rank.batch_kernel")
        .expect("expected batch-kernel spans");
    assert!(
        ancestor_names(&by_id, kernel).contains(&"discover.evaluation".to_string()),
        "batch kernel must nest under discover.evaluation"
    );

    let tree = TraceTree::build(records.clone());
    assert!(
        tree.max_depth() >= 3,
        "expected at least 4 nesting levels, got max depth {}",
        tree.max_depth()
    );
}

#[test]
fn root_self_times_account_for_the_runs_wall_clock() {
    let _guard = TRACE_LOCK.lock().unwrap();
    let (data, model) = trained_mini_model(4);

    kgfd_obs::enable_tracing();
    kgfd_obs::collector().drain();
    // threads=1: spans are strictly nested in time, so self-times must
    // telescope back to the root totals.
    let report = discover_facts(model.as_ref(), &data.train, &discovery_config(1));
    let records = kgfd_obs::collector().drain();
    kgfd_obs::disable_tracing();

    let tree = TraceTree::build(records);
    let root_total = tree.root_total_us();
    let self_sum: u64 = tree.self_us.iter().sum();
    assert!(root_total > 0);

    let within = |a: f64, b: f64, tol: f64| (a - b).abs() <= tol * b.max(a);
    assert!(
        within(self_sum as f64, root_total as f64, 0.10),
        "sum of self-times ({self_sum}us) should be within 10% of the root \
         totals ({root_total}us)"
    );
    let wall_us = report.total.as_micros() as f64;
    assert!(
        within(root_total as f64, wall_us, 0.10),
        "root span total ({root_total}us) should be within 10% of the \
         report's wall clock ({wall_us}us)"
    );
}

type Fact = (u32, u32, u32, f64);

#[test]
fn tracing_does_not_perturb_embeddings_or_ranks() {
    let _guard = TRACE_LOCK.lock().unwrap();

    let run = |traced: bool| -> (Vec<u8>, Vec<Fact>) {
        if traced {
            kgfd_obs::enable_tracing();
        }
        let (data, model) = trained_mini_model(9);
        let report = discover_facts(model.as_ref(), &data.train, &discovery_config(4));
        if traced {
            kgfd_obs::collector().drain();
            kgfd_obs::disable_tracing();
        }
        let facts = report
            .facts
            .iter()
            .map(|f| {
                (
                    f.triple.subject.0,
                    f.triple.relation.0,
                    f.triple.object.0,
                    f.rank,
                )
            })
            .collect();
        (save_model(model.as_ref()).to_vec(), facts)
    };

    let (plain_bytes, plain_facts) = run(false);
    let (traced_bytes, traced_facts) = run(true);
    assert_eq!(
        plain_bytes, traced_bytes,
        "serialized embeddings must be bit-identical with tracing on"
    );
    assert_eq!(
        plain_facts, traced_facts,
        "discovered facts and ranks must be identical with tracing on"
    );
}
