//! Whole-pipeline determinism: a fixed seed must yield bit-identical
//! datasets, models, evaluation metrics, and discovered facts — across
//! in-memory reruns, across model save/load, and across the persistent
//! worker pool vs the legacy spawn-per-call execution path.

use fact_discovery::{discover_facts, DiscoveryConfig, StrategyKind};
use kgfd_datasets::{generate, mini, wn18rr_like};
use kgfd_embed::{load_model, save_model, train, ModelKind, TrainConfig};
use kgfd_eval::evaluate_ranking;
use kgfd_pool::{with_exec_mode, ExecMode};

fn pipeline_facts(seed: u64) -> Vec<(u32, u32, u32, f64)> {
    let data = generate(&mini(&wn18rr_like())).unwrap();
    let (model, _) = train(
        ModelKind::DistMult,
        &data.train,
        &TrainConfig {
            dim: 16,
            epochs: 10,
            seed,
            ..TrainConfig::default()
        },
    );
    let report = discover_facts(
        model.as_ref(),
        &data.train,
        &DiscoveryConfig {
            strategy: StrategyKind::GraphDegree,
            top_n: 20,
            max_candidates: 40,
            seed,
            threads: 4,
            ..DiscoveryConfig::default()
        },
    );
    report
        .facts
        .iter()
        .map(|f| {
            (
                f.triple.subject.0,
                f.triple.relation.0,
                f.triple.object.0,
                f.rank,
            )
        })
        .collect()
}

#[test]
fn identical_seeds_give_identical_discoveries() {
    assert_eq!(pipeline_facts(11), pipeline_facts(11));
}

#[test]
fn different_seeds_give_different_discoveries() {
    assert_ne!(pipeline_facts(11), pipeline_facts(12));
}

#[test]
fn persistence_preserves_evaluation_and_discovery() {
    let data = generate(&mini(&wn18rr_like())).unwrap();
    let (model, _) = train(
        ModelKind::ComplEx,
        &data.train,
        &TrainConfig {
            dim: 16,
            epochs: 8,
            seed: 2,
            ..TrainConfig::default()
        },
    );
    let reloaded = load_model(&save_model(model.as_ref())).unwrap();

    let known = data.known_triples();
    let a = evaluate_ranking(model.as_ref(), &data.test, Some(&known), 2);
    let b = evaluate_ranking(reloaded.as_ref(), &data.test, Some(&known), 2);
    assert_eq!(a.mrr, b.mrr);
    assert_eq!(a.hits10, b.hits10);

    let cfg = DiscoveryConfig {
        strategy: StrategyKind::EntityFrequency,
        top_n: 20,
        max_candidates: 40,
        seed: 9,
        ..DiscoveryConfig::default()
    };
    let ra = discover_facts(model.as_ref(), &data.train, &cfg);
    let rb = discover_facts(reloaded.as_ref(), &data.train, &cfg);
    assert_eq!(ra.facts, rb.facts);
}

/// Trains one model with the given thread count, returning every parameter
/// table plus the per-epoch losses — the full observable state of training.
fn train_state(kind: ModelKind, threads: usize) -> (Vec<Vec<f32>>, Vec<f64>) {
    let data = generate(&mini(&wn18rr_like())).unwrap();
    let (model, stats) = train(
        kind,
        &data.train,
        &TrainConfig {
            dim: 16,
            epochs: 8,
            batch_size: 64,
            seed: 21,
            threads,
            ..TrainConfig::default()
        },
    );
    let tables = (0..model.params().num_tables())
        .map(|t| model.params().table(t).data().to_vec())
        .collect();
    (tables, stats.epoch_losses)
}

/// The differential contract of the parallel trainer: for a fixed seed,
/// `threads = 1` and `threads = 4` must produce bit-identical embedding
/// tensors and epoch losses — not approximately equal, *equal*.
#[test]
fn transe_training_is_thread_count_invariant() {
    assert_eq!(
        train_state(ModelKind::TransE, 1),
        train_state(ModelKind::TransE, 4)
    );
}

#[test]
fn complex_training_is_thread_count_invariant() {
    assert_eq!(
        train_state(ModelKind::ComplEx, 1),
        train_state(ModelKind::ComplEx, 4)
    );
}

#[test]
fn rescal_training_is_thread_count_invariant() {
    assert_eq!(
        train_state(ModelKind::Rescal, 1),
        train_state(ModelKind::Rescal, 4)
    );
}

/// Cross-run repeatability end to end: the same seed run twice — through
/// parallel training *and* parallel discovery — yields the same
/// `DiscoveryReport` facts.
#[test]
fn parallel_pipeline_is_repeatable_across_runs() {
    let run = || {
        let data = generate(&mini(&wn18rr_like())).unwrap();
        let (model, _) = train(
            ModelKind::ComplEx,
            &data.train,
            &TrainConfig {
                dim: 16,
                epochs: 8,
                seed: 13,
                threads: 4,
                ..TrainConfig::default()
            },
        );
        discover_facts(
            model.as_ref(),
            &data.train,
            &DiscoveryConfig {
                strategy: StrategyKind::EntityFrequency,
                top_n: 20,
                max_candidates: 40,
                seed: 13,
                threads: 4,
                ..DiscoveryConfig::default()
            },
        )
        .facts
    };
    assert_eq!(run(), run());
}

#[test]
fn thread_count_does_not_change_results() {
    let data = generate(&mini(&wn18rr_like())).unwrap();
    let (model, _) = train(
        ModelKind::TransE,
        &data.train,
        &TrainConfig {
            dim: 16,
            epochs: 8,
            seed: 4,
            ..TrainConfig::default()
        },
    );
    let run = |threads: usize| {
        discover_facts(
            model.as_ref(),
            &data.train,
            &DiscoveryConfig {
                strategy: StrategyKind::ClusteringTriangles,
                top_n: 20,
                max_candidates: 40,
                seed: 3,
                threads,
                ..DiscoveryConfig::default()
            },
        )
        .facts
    };
    assert_eq!(run(1), run(8));
}

/// The differential contract of the parallel discovery loop: with the outer
/// per-relation fan-out at `threads = 1` vs `= 4`, the *entire* report —
/// facts, per-relation candidate/fact/pruned/iteration counts, relation
/// order — must match, not just the fact list. (Durations are the only
/// fields allowed to differ.)
#[test]
fn discovery_report_is_thread_count_invariant() {
    let data = generate(&mini(&wn18rr_like())).unwrap();
    let (model, _) = train(
        ModelKind::DistMult,
        &data.train,
        &TrainConfig {
            dim: 16,
            epochs: 8,
            seed: 17,
            ..TrainConfig::default()
        },
    );
    let run = |threads: usize| {
        discover_facts(
            model.as_ref(),
            &data.train,
            &DiscoveryConfig {
                strategy: StrategyKind::EntityFrequency,
                top_n: 20,
                max_candidates: 40,
                seed: 17,
                threads,
                ..DiscoveryConfig::default()
            },
        )
    };
    let (one, four) = (run(1), run(4));
    assert_eq!(one.facts, four.facts);
    assert_eq!(one.per_relation.len(), four.per_relation.len());
    for (a, b) in one.per_relation.iter().zip(&four.per_relation) {
        assert_eq!(a.relation, b.relation);
        assert_eq!(a.candidates, b.candidates);
        assert_eq!(a.facts, b.facts);
        assert_eq!(a.pruned, b.pruned);
        assert_eq!(a.iterations, b.iterations);
    }
}

/// Everything observable about a full pipeline run under one pool
/// execution mode: embedding tables (as bits), evaluation ranks, and
/// discovered facts.
fn pipeline_state(
    mode: ExecMode,
    kind: ModelKind,
    threads: usize,
) -> (
    Vec<Vec<u32>>,
    Vec<kgfd_eval::TripleRanks>,
    Vec<fact_discovery::DiscoveredFact>,
) {
    with_exec_mode(mode, || {
        let data = generate(&mini(&wn18rr_like())).unwrap();
        let (model, _) = train(
            kind,
            &data.train,
            &TrainConfig {
                dim: 16,
                epochs: 4,
                batch_size: 64,
                seed: 33,
                threads,
                ..TrainConfig::default()
            },
        );
        let tables = (0..model.params().num_tables())
            .map(|t| {
                model
                    .params()
                    .table(t)
                    .data()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect()
            })
            .collect();
        let known = data.known_triples();
        let ranks = kgfd_eval::rank_all(model.as_ref(), &data.test, Some(&known), threads);
        let facts = discover_facts(
            model.as_ref(),
            &data.train,
            &DiscoveryConfig {
                strategy: StrategyKind::EntityFrequency,
                top_n: 20,
                max_candidates: 40,
                seed: 33,
                threads,
                ..DiscoveryConfig::default()
            },
        )
        .facts;
        (tables, ranks, facts)
    })
}

/// The pool-vs-scope differential of ISSUE 9: for each model kind and
/// thread count, the persistent pool must reproduce the pre-pool
/// spawn-per-call execution bit for bit — embeddings, evaluation ranks,
/// and discovered facts.
fn assert_pool_matches_spawn(kind: ModelKind) {
    for threads in [1usize, 4, 8] {
        let spawned = pipeline_state(ExecMode::SpawnPerCall, kind, threads);
        let pooled = pipeline_state(ExecMode::Persistent, kind, threads);
        assert_eq!(
            spawned, pooled,
            "{kind:?} diverges between spawn-per-call and the pool at {threads} threads"
        );
    }
}

#[test]
fn pool_matches_spawn_per_call_transe() {
    assert_pool_matches_spawn(ModelKind::TransE);
}

#[test]
fn pool_matches_spawn_per_call_complex() {
    assert_pool_matches_spawn(ModelKind::ComplEx);
}

#[test]
fn pool_matches_spawn_per_call_rescal() {
    assert_pool_matches_spawn(ModelKind::Rescal);
}
