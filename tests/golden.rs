//! Golden-file regression tests for the serialized schemas downstream
//! tooling parses: the `DiscoveryReport` JSON shape and the JSONL `Event`
//! wrapping a `RunManifest`.
//!
//! A silent field addition, rename, or representation change shows up here
//! as a readable line diff against the snapshots in `tests/golden/`. When a
//! schema change is *intentional*, regenerate the snapshots with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden
//! ```
//!
//! and commit the diff — that turns the change into a reviewable artifact
//! instead of a surprise for JSONL consumers.

use fact_discovery::{DiscoveredFact, DiscoveryReport, RelationBreakdown, StrategyKind};
use kgfd_kg::{RelationId, Triple};
use std::path::PathBuf;
use std::time::Duration;

fn golden_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/harness; the snapshots live at the
    // workspace root next to this test's source.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Compares `actual` against the named snapshot, failing with a line diff.
/// `UPDATE_GOLDEN=1` rewrites the snapshot instead.
fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {}: {e}\n\
             (run `UPDATE_GOLDEN=1 cargo test --test golden` to create it)",
            path.display()
        )
    });
    if expected == actual {
        return;
    }
    let mut diff = String::new();
    let expected_lines: Vec<&str> = expected.lines().collect();
    let actual_lines: Vec<&str> = actual.lines().collect();
    let n = expected_lines.len().max(actual_lines.len());
    for i in 0..n {
        match (expected_lines.get(i), actual_lines.get(i)) {
            (Some(e), Some(a)) if e == a => {}
            (e, a) => {
                if let Some(e) = e {
                    diff.push_str(&format!("  -{:>4} | {e}\n", i + 1));
                }
                if let Some(a) = a {
                    diff.push_str(&format!("  +{:>4} | {a}\n", i + 1));
                }
            }
        }
    }
    panic!(
        "serialized schema drifted from {} — if intentional, regenerate with \
         `UPDATE_GOLDEN=1 cargo test --test golden` and commit the diff:\n{diff}",
        path.display()
    );
}

/// A fully-populated report with fixed values: every field exercised, no
/// wall-clock nondeterminism.
fn fixture_report() -> DiscoveryReport {
    DiscoveryReport {
        strategy: StrategyKind::ClusteringTriangles,
        top_n: 500,
        max_candidates: 500,
        facts: vec![
            DiscoveredFact {
                triple: Triple::new(3u32, 1u32, 7u32),
                rank: 1.5,
            },
            DiscoveredFact {
                triple: Triple::new(4u32, 0u32, 2u32),
                rank: 42.0,
            },
        ],
        per_relation: vec![RelationBreakdown {
            relation: RelationId(1),
            candidates: 17,
            facts: 2,
            pruned: 3,
            iterations: 2,
            generation: Duration::new(1, 250_000_000),
            evaluation: Duration::new(2, 0),
        }],
        preparation: Duration::from_millis(75),
        generation: Duration::new(1, 250_000_000),
        evaluation: Duration::new(2, 0),
        total: Duration::new(3, 325_000_000),
    }
}

#[test]
fn discovery_report_schema_is_stable() {
    let json = serde_json::to_string_pretty(&fixture_report()).unwrap();
    assert_matches_golden("discovery_report.json", &json);
}

#[test]
fn discovery_report_roundtrips_through_json() {
    let report = fixture_report();
    let json = serde_json::to_string(&report).unwrap();
    let back: DiscoveryReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.facts, report.facts);
    assert_eq!(back.total, report.total);
    assert_eq!(back.per_relation.len(), report.per_relation.len());
    assert_eq!(
        back.per_relation[0].generation,
        Duration::new(1, 250_000_000)
    );
}

#[test]
fn run_manifest_event_schema_is_stable() {
    // Built by hand (not RunManifest::new) so the crate version in the
    // snapshot is fixed rather than tracking the workspace version.
    let manifest = kgfd_obs::RunManifest {
        command: "discover".to_string(),
        crate_version: "0.0.0-golden".to_string(),
        strategy: "CLUSTERING TRIANGLES".to_string(),
        model: "TransE".to_string(),
        seed: 7,
        dataset: kgfd_obs::DatasetShape {
            entities: 1234,
            relations: 11,
            triples: 56789,
        },
        config: Vec::new(),
        wall_clock_s: 12.5,
        recoveries: vec![
            "zoo.cache.corrupt: golden.kgfd: checksum mismatch (evicted, retrained)".to_string(),
        ],
        resumed_from: Some("golden.ckpt-00000010".to_string()),
        trace: Some(kgfd_obs::TraceSummary {
            spans: 3,
            max_depth: 2,
            top_self_time: vec![kgfd_obs::TraceNode {
                name: "discover.total".to_string(),
                count: 1,
                total_us: 12_500_000,
                self_us: 2_000_000,
            }],
        }),
        pool: Some(kgfd_obs::PoolSummary {
            jobs: 48,
            queue_wait_us_p50: Some(12.5),
            queue_wait_us_p95: Some(85.0),
            utilization: vec![kgfd_obs::PoolPhase {
                phase: "discover".to_string(),
                utilization: 0.82,
            }],
        }),
    }
    .with_config("top_n", 500usize)
    .with_config("max_candidates", 500usize)
    .with_config("threads", 4usize)
    .with_config("exploration_epsilon", 0.1f64)
    .with_config("consolidate_sides", false)
    .with_config("note", "golden");
    let event = kgfd_obs::Event {
        run: "golden-run".to_string(),
        t_us: 1_000_000,
        payload: kgfd_obs::Payload::Manifest(Box::new(manifest)),
    };
    let json = serde_json::to_string_pretty(&event).unwrap();
    assert_matches_golden("run_manifest_event.json", &json);
}
