//! Cross-crate integration: generator → trainer → evaluation → discovery,
//! for every model kind and every strategy.

use fact_discovery::{discover_facts, DiscoveryConfig, StrategyKind};
use kgfd_datasets::{fb15k237_like, generate, mini, toy_biomedical};
use kgfd_embed::{train, ModelKind, TrainConfig};
use kgfd_eval::evaluate_ranking;

fn quick_train(kind: ModelKind, store: &kgfd_kg::TripleStore) -> Box<dyn kgfd_embed::KgeModel> {
    let config = TrainConfig {
        dim: 12, // ConvE needs a reshapeable dim; 12 = 3×4
        epochs: 20,
        seed: 3,
        ..TrainConfig::default()
    };
    train(kind, store, &config).0
}

#[test]
fn every_model_kind_runs_the_full_pipeline() {
    let data = toy_biomedical();
    let known = data.known_triples();
    for kind in ModelKind::ALL {
        let model = quick_train(kind, &data.train);
        // Evaluation protocol works.
        let summary = evaluate_ranking(model.as_ref(), &data.test, Some(&known), 2);
        assert!(summary.mrr > 0.0 && summary.mrr <= 1.0, "{kind}: {summary}");
        // Discovery works and its facts are well-formed.
        let report = discover_facts(
            model.as_ref(),
            &data.train,
            &DiscoveryConfig {
                strategy: StrategyKind::EntityFrequency,
                top_n: 8,
                max_candidates: 30,
                seed: 1,
                ..DiscoveryConfig::default()
            },
        );
        for fact in &report.facts {
            assert!(!data.train.contains(&fact.triple), "{kind}");
            assert!(fact.rank <= 8.0, "{kind}");
        }
    }
}

#[test]
fn every_strategy_runs_on_a_generated_dataset() {
    let data = generate(&mini(&fb15k237_like())).unwrap();
    let model = quick_train(ModelKind::DistMult, &data.train);
    for strategy in StrategyKind::ALL {
        let report = discover_facts(
            model.as_ref(),
            &data.train,
            &DiscoveryConfig {
                strategy,
                top_n: 30,
                max_candidates: 50,
                seed: 2,
                ..DiscoveryConfig::default()
            },
        );
        assert!(
            !report.facts.is_empty(),
            "{strategy} discovered nothing on a dense mini graph"
        );
        assert!(report.mrr() > 0.0 && report.mrr() <= 1.0);
        assert!(report.total >= report.evaluation);
        // Per-relation accounting adds up.
        let total_facts: usize = report.per_relation.iter().map(|r| r.facts).sum();
        assert_eq!(total_facts, report.facts.len());
    }
}

#[test]
fn trained_models_outrank_untrained_ones_at_discovery() {
    // Discovery quality should visibly benefit from training — wiring all
    // the crates together must preserve the learning signal.
    let data = toy_biomedical();
    let trained = quick_train(ModelKind::ComplEx, &data.train);
    let untrained = kgfd_embed::new_model(
        ModelKind::ComplEx,
        data.train.num_entities(),
        data.train.num_relations(),
        12,
        3,
    );
    let known = data.known_triples();
    let t = evaluate_ranking(trained.as_ref(), data.train.triples(), Some(&known), 2);
    let u = evaluate_ranking(untrained.as_ref(), data.train.triples(), Some(&known), 2);
    assert!(
        t.mrr > u.mrr * 1.5,
        "training must help: trained {} vs untrained {}",
        t.mrr,
        u.mrr
    );
}

#[test]
fn discovery_report_durations_are_consistent() {
    let data = toy_biomedical();
    let model = quick_train(ModelKind::TransE, &data.train);
    let report = discover_facts(
        model.as_ref(),
        &data.train,
        &DiscoveryConfig {
            strategy: StrategyKind::ClusteringTriangles,
            top_n: 10,
            max_candidates: 30,
            seed: 4,
            ..DiscoveryConfig::default()
        },
    );
    let parts = report.preparation + report.generation + report.evaluation;
    assert!(
        report.total >= parts - std::time::Duration::from_millis(1),
        "total {:?} must cover the parts {:?}",
        report.total,
        parts
    );
    let breakdown_gen: std::time::Duration = report.per_relation.iter().map(|r| r.generation).sum();
    assert!(breakdown_gen <= report.generation + std::time::Duration::from_millis(1));
}
