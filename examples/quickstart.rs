//! Quickstart: train a KGE model on a small knowledge graph and discover
//! facts it believes are missing — no queries, no test data.
//!
//! ```text
//! cargo run --release -p kgfd-harness --example quickstart
//! ```

use fact_discovery::{discover_facts, DiscoveryConfig, StrategyKind};
use kgfd_datasets::toy_biomedical;
use kgfd_embed::{train, ModelKind, TrainConfig};

fn main() {
    // 1. A knowledge graph: drugs, proteins, diseases (16 entities, 5
    //    relations). Two true `treats` facts are *not* in the graph.
    let data = toy_biomedical();
    println!(
        "graph: {} triples, {} entities, {} relations",
        data.train.len(),
        data.train.num_entities(),
        data.train.num_relations()
    );
    println!(
        "complement (exhaustive candidate space): {} triples\n",
        data.train.complement_size()
    );

    // 2. Train a ComplEx embedding model (pure Rust, seconds on a laptop).
    let config = TrainConfig {
        dim: 16,
        epochs: 40,
        seed: 5,
        ..TrainConfig::default()
    };
    let (model, stats) = train(ModelKind::ComplEx, &data.train, &config);
    println!(
        "trained {} in {} epochs (loss {:.4} → {:.4})\n",
        ModelKind::ComplEx,
        stats.epoch_losses.len(),
        stats.epoch_losses[0],
        stats.final_loss()
    );

    // 3. Discover facts: sample candidates with ENTITY FREQUENCY weighting,
    //    keep those the model ranks in the top 10 against corruptions.
    let discovery = DiscoveryConfig {
        strategy: StrategyKind::EntityFrequency,
        top_n: 10,
        max_candidates: 50,
        ..DiscoveryConfig::default()
    };
    let report = discover_facts(model.as_ref(), &data.train, &discovery);

    println!(
        "discovered {} facts in {:.2?} (MRR {:.3}):",
        report.facts.len(),
        report.total,
        report.mrr()
    );
    let mut facts = report.facts.clone();
    facts.sort_by(|a, b| a.rank.total_cmp(&b.rank));
    for fact in facts.iter().take(15) {
        let t = fact.triple;
        println!(
            "  rank {:>5.1}  {} --{}--> {}",
            fact.rank,
            data.vocab.entity_label(t.subject).unwrap_or("?"),
            data.vocab.relation_label(t.relation).unwrap_or("?"),
            data.vocab.entity_label(t.object).unwrap_or("?"),
        );
    }

    // 4. Did we rediscover the held-out truths?
    let held_out: Vec<_> = data.valid.iter().chain(&data.test).collect();
    let hits = report
        .facts
        .iter()
        .filter(|f| held_out.contains(&&f.triple))
        .count();
    println!(
        "\n{hits} of {} held-out true facts were rediscovered",
        held_out.len()
    );
}
