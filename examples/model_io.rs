//! Model persistence workflow: train once, save, reload, and verify the
//! loaded model drives discovery identically — the "Model Training" /
//! "Discover Facts" split of the paper's experimental workflow (Figure 1),
//! where trained models are reused across many discovery runs.
//!
//! ```text
//! cargo run --release -p kgfd-harness --example model_io
//! ```

use fact_discovery::{discover_facts, DiscoveryConfig, StrategyKind};
use kgfd_datasets::toy_biomedical;
use kgfd_embed::{load_model, save_model, train, ModelKind, TrainConfig};

fn main() {
    let data = toy_biomedical();
    let config = TrainConfig {
        dim: 16,
        epochs: 30,
        seed: 9,
        ..TrainConfig::default()
    };

    let (model, _) = train(ModelKind::Rescal, &data.train, &config);
    let bytes = save_model(model.as_ref());
    println!(
        "saved {} model: {} bytes ({} parameters)",
        model.kind(),
        bytes.len(),
        model.params().num_parameters()
    );

    let path = std::env::temp_dir().join("kgfd-example-model.kgfd");
    std::fs::write(&path, &bytes).expect("write model file");
    let loaded = load_model(&std::fs::read(&path).expect("read model file"))
        .expect("well-formed model file");
    println!("reloaded from {}", path.display());

    let discovery = DiscoveryConfig {
        strategy: StrategyKind::GraphDegree,
        top_n: 10,
        max_candidates: 40,
        seed: 2,
        ..DiscoveryConfig::default()
    };
    let a = discover_facts(model.as_ref(), &data.train, &discovery);
    let b = discover_facts(loaded.as_ref(), &data.train, &discovery);

    assert_eq!(a.facts, b.facts, "loaded model must behave identically");
    println!(
        "discovery through the reloaded model matches exactly: {} facts, MRR {:.3}",
        b.facts.len(),
        b.mrr()
    );
    let _ = std::fs::remove_file(path);
}
