//! The exploration-vs-exploitation trade-off the paper's §6 calls for.
//!
//! Popularity-weighted sampling (the paper's winning strategies) mines
//! facts among entities that are already well-connected; the long tail —
//! where discovery is most *needed* — is never sampled. This example sweeps
//! the `exploration_epsilon` dial on a skewed synthetic graph and prints
//! how tail coverage, fact count, and MRR move.
//!
//! ```text
//! cargo run --release -p kgfd-harness --example long_tail_exploration
//! ```

use fact_discovery::{discover_facts, DiscoveryConfig, StrategyKind};
use kgfd_embed::ModelKind;
use kgfd_graph_stats::occurrence_degrees;
use kgfd_harness::{trained_model, DatasetRef, Scale, TextTable};

fn main() {
    let dataset = DatasetRef::Fb15k237;
    let scale = Scale::Mini;
    let data = dataset.load(scale);
    let model = trained_model(dataset, ModelKind::ComplEx, scale, &data);

    let degrees = occurrence_degrees(&data.train);
    let mut sorted: Vec<u64> = degrees.iter().copied().filter(|&d| d > 0).collect();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    println!(
        "graph: {} triples, {} entities (median degree {median})\n",
        data.train.len(),
        data.train.num_entities()
    );

    let mut table = TextTable::new([
        "ε",
        "facts",
        "touches tail %",
        "distinct tail entities",
        "MRR",
    ]);
    for &epsilon in &[0.0, 0.1, 0.25, 0.5, 0.75, 1.0] {
        let config = DiscoveryConfig {
            strategy: StrategyKind::EntityFrequency,
            top_n: 50,
            max_candidates: 100,
            exploration_epsilon: epsilon,
            seed: 21,
            ..DiscoveryConfig::default()
        };
        let report = discover_facts(model.as_ref(), &data.train, &config);
        let total = report.facts.len().max(1);
        let mut tail_entities = std::collections::HashSet::new();
        let mut tail_touching = 0usize;
        for f in &report.facts {
            let mut touches = false;
            for e in [f.triple.subject, f.triple.object] {
                if degrees[e.index()] <= median {
                    tail_entities.insert(e);
                    touches = true;
                }
            }
            if touches {
                tail_touching += 1;
            }
        }
        table.row([
            format!("{epsilon:.2}"),
            report.facts.len().to_string(),
            format!("{:.1}", 100.0 * tail_touching as f64 / total as f64),
            tail_entities.len().to_string(),
            format!("{:.4}", report.mrr()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "ε = 0 is the paper's behaviour (pure exploitation); raising ε trades \
         fact quality for coverage of under-served entities — the open \
         direction of the paper's §6."
    );
}
