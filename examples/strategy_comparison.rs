//! Compare all six sampling strategies on one dataset × model pair, printing
//! the three metrics of the paper's evaluation (runtime, MRR, efficiency)
//! side by side — a one-screen version of Figures 2 + 4 + 6, including the
//! CLUSTERING SQUARES strategy the paper had to exclude at full scale.
//!
//! ```text
//! cargo run --release -p kgfd-harness --example strategy_comparison
//! ```

use fact_discovery::{discover_facts, DiscoveryConfig, StrategyKind};
use kgfd_embed::ModelKind;
use kgfd_harness::{trained_model, DatasetRef, Scale, TextTable};

fn main() {
    let dataset = DatasetRef::Fb15k237;
    let scale = Scale::Mini;
    let data = dataset.load(scale);
    println!(
        "dataset: {} ({} triples, {} entities, {} relations)",
        data.name,
        data.train.len(),
        data.train.num_entities(),
        data.train.num_relations()
    );
    let model = trained_model(dataset, ModelKind::TransE, scale, &data);
    println!("model: transe (zoo-trained, disk-cached)\n");

    let mut table = TextTable::new([
        "strategy",
        "prep (ms)",
        "total (s)",
        "candidates",
        "facts",
        "MRR",
        "facts/hour",
    ]);
    for strategy in StrategyKind::ALL {
        let config = DiscoveryConfig {
            strategy,
            top_n: 50,
            max_candidates: 100,
            seed: 3,
            ..DiscoveryConfig::default()
        };
        let report = discover_facts(model.as_ref(), &data.train, &config);
        table.row([
            strategy.name().to_string(),
            format!("{:.1}", report.preparation.as_secs_f64() * 1e3),
            format!("{:.3}", report.total.as_secs_f64()),
            report.candidates_generated().to_string(),
            report.facts.len().to_string(),
            format!("{:.4}", report.mrr()),
            format!("{:.0}", report.facts_per_hour()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "expected shape (paper §4.2): EF/GD/CT lead on MRR; UR/CC trail; \
         CS pays a large preparation cost for no quality advantage."
    );
}
