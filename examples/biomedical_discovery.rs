//! The paper's motivating scenario (§1): a biomedical researcher has a
//! drug/protein/disease knowledge graph and wants to surface *new*
//! relationships — without any specific query in mind.
//!
//! We generate a mid-sized synthetic biomedical-style KG (Zipf popularity:
//! a few blockbuster drugs and well-studied proteins, a long tail of
//! under-studied ones), train an embedding model, and run fact discovery
//! restricted to a target relation, comparing two strategies. The example
//! also demonstrates the long-tail limitation the paper's §6 discusses.
//!
//! ```text
//! cargo run --release -p kgfd-harness --example biomedical_discovery
//! ```

use fact_discovery::{discover_facts, DiscoveryConfig, StrategyKind};
use kgfd_datasets::{generate, DatasetProfile};
use kgfd_embed::{train, ModelKind, TrainConfig};
use kgfd_graph_stats::occurrence_degrees;

fn main() {
    // A biomedical-shaped profile: moderately dense, strong popularity skew
    // (blockbuster drugs), communities ≈ disease areas.
    let profile = DatasetProfile {
        name: "synthetic-biomed".into(),
        entities: 800,
        relations: 6, // targets / associated_with / treats / interacts / coexpressed / biomarker_of
        train_triples: 9_000,
        valid_triples: 400,
        test_triples: 400,
        entity_skew: 1.0,
        relation_skew: 0.4,
        communities: 25,
        intra_community: 0.75,
        relation_spread: 0.4,
        seed: 2024,
    };
    let data = generate(&profile).expect("profile is valid");
    println!(
        "synthetic biomedical KG: {} triples over {} entities\n",
        data.train.len(),
        data.train.num_entities()
    );

    let (model, _) = train(
        ModelKind::ComplEx,
        &data.train,
        &TrainConfig {
            dim: 32,
            epochs: 25,
            seed: 7,
            ..TrainConfig::default()
        },
    );

    // Discover facts for one relation ("treats"-like, relation 2).
    let target = kgfd_kg::RelationId(2);
    for strategy in [StrategyKind::UniformRandom, StrategyKind::EntityFrequency] {
        let config = DiscoveryConfig {
            strategy,
            top_n: 100,
            max_candidates: 300,
            relations: Some(vec![target]),
            seed: 1,
            ..DiscoveryConfig::default()
        };
        let report = discover_facts(model.as_ref(), &data.train, &config);
        println!(
            "{strategy:<24} {} candidate facts, MRR {:.4}, {:.1} facts/s",
            report.facts.len(),
            report.mrr(),
            report.facts_per_second()
        );
    }

    // The long-tail problem (§6): which entities do the discovered facts
    // touch? Frequency-weighted sampling concentrates on popular entities.
    let degrees = occurrence_degrees(&data.train);
    let median_degree = {
        let mut d = degrees.clone();
        d.sort_unstable();
        d[d.len() / 2]
    };
    let config = DiscoveryConfig {
        strategy: StrategyKind::EntityFrequency,
        top_n: 100,
        max_candidates: 300,
        relations: Some(vec![target]),
        seed: 1,
        ..DiscoveryConfig::default()
    };
    let report = discover_facts(model.as_ref(), &data.train, &config);
    let popular = report
        .facts
        .iter()
        .filter(|f| {
            degrees[f.triple.subject.index()] > median_degree
                && degrees[f.triple.object.index()] > median_degree
        })
        .count();
    println!(
        "\nlong-tail check: {popular}/{} discovered facts connect two \
         above-median-degree entities",
        report.facts.len()
    );
    println!(
        "(the paper's §6: popularity-driven sampling leaves long-tail \
         entities — where discovery is needed most — unexplored)"
    );
}
