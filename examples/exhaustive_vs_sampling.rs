//! The paper's motivating arithmetic (§1): why exhaustive fact discovery is
//! hopeless and sampling is necessary.
//!
//! For each dataset profile this example computes the complement-graph size
//! `|E|² × |R| − |G|`, *measures* the model's actual scoring throughput, and
//! extrapolates how long exhaustive inference would take — then runs the
//! sampling-based algorithm and reports its measured runtime on the same
//! model for contrast. (For the real YAGO3-10 the paper estimates thousands
//! of years.)
//!
//! ```text
//! cargo run --release -p kgfd-harness --example exhaustive_vs_sampling
//! ```

use fact_discovery::{discover_facts, DiscoveryConfig, StrategyKind};
use kgfd_embed::ModelKind;
use kgfd_harness::{trained_model, DatasetRef, Scale, TextTable};
use kgfd_kg::{EntityId, RelationId};
use std::time::Instant;

fn main() {
    // Paper §1 headline number: YAGO3-10's complement.
    let yago_full = kgfd_kg::TripleStore::new(123_182, 37, vec![]).unwrap();
    println!(
        "YAGO3-10 at full size: complement = {:.0e} candidate triples (paper: ~533 × 10⁹)\n",
        yago_full.complement_size() as f64
    );

    let scale = Scale::Mini;
    let mut table = TextTable::new([
        "dataset",
        "complement",
        "score µs/1k",
        "exhaustive score",
        "exhaustive rank",
        "sampling measured",
        "facts",
    ]);
    for dataset in DatasetRef::ALL {
        let data = dataset.load(scale);
        let model = trained_model(dataset, ModelKind::DistMult, scale, &data);

        // Measure batched scoring throughput: one score_objects call scores
        // N candidates.
        let n = data.train.num_entities();
        let mut out = vec![0.0f32; n];
        let reps = 200;
        let t0 = Instant::now();
        for i in 0..reps {
            model.score_objects(
                EntityId((i % n) as u32),
                RelationId((i % data.train.num_relations()) as u32),
                &mut out,
            );
        }
        let per_candidate = t0.elapsed().as_secs_f64() / (reps * n) as f64;

        // Exhaustive scoring = score every complement triple once.
        // Exhaustive *ranking* (what the discovery algorithm actually does
        // per candidate, both corruption sides) multiplies that by 2N.
        let complement = data.train.complement_size() as f64;
        let exhaustive_s = complement * per_candidate;
        let exhaustive_rank_s = exhaustive_s * 2.0 * n as f64;

        let t1 = Instant::now();
        let report = discover_facts(
            model.as_ref(),
            &data.train,
            &DiscoveryConfig {
                strategy: StrategyKind::EntityFrequency,
                top_n: 50,
                max_candidates: 100,
                seed: 1,
                ..DiscoveryConfig::default()
            },
        );
        let sampling_s = t1.elapsed().as_secs_f64();

        table.row([
            data.name.clone(),
            format!("{:.2e}", complement),
            format!("{:.1}", per_candidate * 1e6 * 1e3),
            human_time(exhaustive_s),
            human_time(exhaustive_rank_s),
            human_time(sampling_s),
            report.facts.len().to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "applying the discovery algorithm's per-candidate corruption ranking \
         to the full complement ('exhaustive rank') is already intractable \
         at mini scale; complement size grows with |E|²·|R| while the \
         sampling pipeline's cost stays fixed — at paper scale, with \
         seconds-per-call KGE serving (§1), it becomes thousands of years."
    );
}

fn human_time(secs: f64) -> String {
    if secs < 60.0 {
        format!("{secs:.2} s")
    } else if secs < 3600.0 {
        format!("{:.1} min", secs / 60.0)
    } else if secs < 86400.0 {
        format!("{:.1} h", secs / 3600.0)
    } else {
        format!("{:.1} days", secs / 86400.0)
    }
}
