//! Shared fixtures for the Criterion benches: mini-scale datasets and
//! zoo-trained models (disk-cached, so repeated `cargo bench` runs skip
//! training).

use kgfd_embed::KgeModel;
use kgfd_harness::{trained_model, DatasetRef, Scale};
use kgfd_kg::Dataset;

/// The FB15K-237-like mini dataset with a trained TransE — the workhorse
/// fixture (the paper's §4.3 sweeps all run on FB15K-237 + TransE).
pub fn fb_mini_transe() -> (Dataset, Box<dyn KgeModel>) {
    mini_fixture(DatasetRef::Fb15k237, kgfd_embed::ModelKind::TransE)
}

/// A mini dataset with a trained model of the given kind.
pub fn mini_fixture(
    dataset: DatasetRef,
    model: kgfd_embed::ModelKind,
) -> (Dataset, Box<dyn KgeModel>) {
    let data = dataset.load(Scale::Mini);
    let m = trained_model(dataset, model, Scale::Mini, &data);
    (data, m)
}

/// Prints a banner before a bench group's figure rows so `cargo bench`
/// output doubles as a (mini-scale) figure regeneration log.
pub fn banner(figure: &str) {
    println!("\n===== {figure} =====");
}
