//! `bench-check` — the CI regression gate over the committed bench
//! baselines (`BENCH_pool.json`, `BENCH_ranking.json`).
//!
//! Compares a freshly generated bench summary against the committed
//! baseline and fails (exit 1) when a tracked metric regressed beyond the
//! tolerance. Only *ratio* metrics are compared — pool-vs-spawn speedup,
//! batched-vs-scalar speedup, dedup ratio — because absolute wall-clock
//! numbers are machine-dependent while within-run ratios are comparable
//! between the committed baseline's machine and the CI runner.
//!
//! ```text
//! bench-check --baseline BENCH_pool.json --fresh target/BENCH_pool.json
//!             [--tolerance 0.15] [--self-test-slowdown 1.2]
//! ```
//!
//! `--self-test-slowdown F` divides every fresh speedup by `F` before
//! comparing — CI uses it to prove the gate actually fails on a synthetic
//! 20% slowdown (`F = 1.2`) before trusting its green result.

use serde_json::Value;
use std::process::ExitCode;

/// One tracked metric with its comparison policy.
struct Metric {
    name: String,
    baseline: f64,
    fresh: Option<f64>,
    /// `true`: only a drop is a regression (speedups — faster is fine).
    /// `false`: any drift beyond tolerance fails (deterministic ratios).
    lower_only: bool,
    /// `true` for ratios a self-test slowdown should scale.
    is_speedup: bool,
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("bench-check: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut baseline_path = None;
    let mut fresh_path = None;
    let mut tolerance = 0.15f64;
    let mut slowdown = 1.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} needs an argument"))
        };
        match arg.as_str() {
            "--baseline" => baseline_path = Some(value("--baseline")?),
            "--fresh" => fresh_path = Some(value("--fresh")?),
            "--tolerance" => {
                tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?
            }
            "--self-test-slowdown" => {
                slowdown = value("--self-test-slowdown")?
                    .parse()
                    .map_err(|e| format!("--self-test-slowdown: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "bench-check --baseline <JSON> --fresh <JSON> \
                     [--tolerance 0.15] [--self-test-slowdown 1.0]"
                );
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let baseline_path = baseline_path.ok_or("--baseline is required")?;
    let fresh_path = fresh_path.ok_or("--fresh is required")?;
    if !(0.0..1.0).contains(&tolerance) {
        return Err(format!("--tolerance must be in [0, 1), got {tolerance}"));
    }

    let baseline = load(&baseline_path)?;
    let fresh = load(&fresh_path)?;
    let kind = baseline
        .get("bench")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{baseline_path}: missing \"bench\" field"))?;
    if fresh.get("bench").and_then(Value::as_str) != Some(kind) {
        return Err(format!(
            "bench kind mismatch: baseline is {kind:?}, fresh is {:?}",
            fresh.get("bench").and_then(Value::as_str).unwrap_or("?")
        ));
    }
    let mut metrics = match kind {
        "pool" => pool_metrics(&baseline, &fresh),
        "ranking" => ranking_metrics(&baseline, &fresh),
        other => return Err(format!("unknown bench kind {other:?}")),
    };
    for m in &mut metrics {
        if m.is_speedup && slowdown != 1.0 {
            m.fresh = m.fresh.map(|v| v / slowdown);
        }
    }

    // The per-metric diff table, then the verdict.
    println!(
        "bench-check: {kind} vs {baseline_path} (tolerance {:.0}%{})",
        tolerance * 100.0,
        if slowdown != 1.0 {
            format!(", self-test slowdown ×{slowdown}")
        } else {
            String::new()
        }
    );
    println!(
        "{:<32} {:>10} {:>10} {:>8}  status",
        "metric", "baseline", "fresh", "ratio"
    );
    let mut regressions = 0usize;
    for m in &metrics {
        let (ratio_text, status) = match m.fresh {
            None => ("-".to_string(), "MISSING"),
            Some(fresh) => {
                let ratio = fresh / m.baseline;
                let regressed = if m.lower_only {
                    ratio < 1.0 - tolerance
                } else {
                    (ratio - 1.0).abs() > tolerance
                };
                (
                    format!("{ratio:.3}"),
                    if regressed { "REGRESSED" } else { "ok" },
                )
            }
        };
        if status != "ok" {
            regressions += 1;
        }
        println!(
            "{:<32} {:>10.3} {:>10} {:>8}  {status}",
            m.name,
            m.baseline,
            m.fresh.map_or("-".to_string(), |v| format!("{v:.3}")),
            ratio_text,
        );
    }
    if regressions > 0 {
        println!(
            "FAIL: {regressions}/{} metrics regressed beyond {:.0}%",
            metrics.len(),
            tolerance * 100.0
        );
        Ok(ExitCode::FAILURE)
    } else {
        println!("ok: all {} metrics within tolerance", metrics.len());
        Ok(ExitCode::SUCCESS)
    }
}

fn load(path: &str) -> Result<Value, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_slice(&bytes).map_err(|e| format!("{path}: invalid JSON: {e}"))
}

/// `BENCH_pool.json`: one speedup per (phase, threads) cell.
fn pool_metrics(baseline: &Value, fresh: &Value) -> Vec<Metric> {
    let rows = |doc: &Value| -> Vec<(String, u64, f64)> {
        doc.get("phases")
            .and_then(Value::as_array)
            .map(|phases| {
                phases
                    .iter()
                    .filter_map(|p| {
                        Some((
                            p.get("phase")?.as_str()?.to_string(),
                            p.get("threads")?.as_u64()?,
                            p.get("speedup")?.as_f64()?,
                        ))
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let fresh_rows = rows(fresh);
    rows(baseline)
        .into_iter()
        .map(|(phase, threads, speedup)| Metric {
            name: format!("pool.{phase}.t{threads}.speedup"),
            baseline: speedup,
            fresh: fresh_rows
                .iter()
                .find(|(p, t, _)| *p == phase && *t == threads)
                .map(|&(_, _, s)| s),
            lower_only: true,
            is_speedup: true,
        })
        .collect()
}

/// `BENCH_ranking.json`: batched-vs-scalar speedup (drop-only) and the
/// deterministic dedup ratio (two-sided) per workload.
fn ranking_metrics(baseline: &Value, fresh: &Value) -> Vec<Metric> {
    let rows = |doc: &Value| -> Vec<(String, f64, f64)> {
        doc.get("workloads")
            .and_then(Value::as_array)
            .map(|ws| {
                ws.iter()
                    .filter_map(|w| {
                        Some((
                            w.get("workload")?.as_str()?.to_string(),
                            w.get("speedup")?.as_f64()?,
                            w.get("dedup_ratio")?.as_f64()?,
                        ))
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let fresh_rows = rows(fresh);
    let mut metrics = Vec::new();
    for (workload, speedup, dedup) in rows(baseline) {
        let fresh_row = fresh_rows.iter().find(|(w, _, _)| *w == workload);
        metrics.push(Metric {
            name: format!("ranking.{workload}.speedup"),
            baseline: speedup,
            fresh: fresh_row.map(|&(_, s, _)| s),
            lower_only: true,
            is_speedup: true,
        });
        metrics.push(Metric {
            name: format!("ranking.{workload}.dedup_ratio"),
            baseline: dedup,
            fresh: fresh_row.map(|&(_, _, d)| d),
            lower_only: false,
            is_speedup: false,
        });
    }
    metrics
}
