//! Bench for **Figure 10**: efficiency vs `max_candidates` at the pivot
//! `top_n`. Prints both panels and times the low/high ends of the
//! `max_candidates` axis for CLUSTERING TRIANGLES.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fact_discovery::{discover_facts, DiscoveryConfig, StrategyKind};
use kgfd_harness::{figures, run_sweep, Scale, SweepOptions};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    kgfd_bench::banner("Figure 10 — efficiency vs max_candidates");
    let sweep = run_sweep(Scale::Mini, &SweepOptions::for_scale(Scale::Mini));
    println!("{}", figures::fig10_candidates_efficiency::render(&sweep));

    let (data, model) = kgfd_bench::fb_mini_transe();
    let mut group = c.benchmark_group("fig10_efficiency_vs_candidates");
    group.sample_size(10);
    for max_candidates in [20usize, 100] {
        let config = DiscoveryConfig {
            strategy: StrategyKind::ClusteringTriangles,
            top_n: 60,
            max_candidates,
            seed: 11,
            ..DiscoveryConfig::default()
        };
        group.bench_function(BenchmarkId::from_parameter(max_candidates), |b| {
            b.iter(|| {
                black_box(discover_facts(model.as_ref(), &data.train, &config).facts_per_hour())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
