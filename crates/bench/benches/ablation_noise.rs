//! Failure-injection ablation (§6: "KGE models are assumed to be accurate"):
//! how discovery quality degrades as the training graph is corrupted.
//! Prints MRR and held-out recall at increasing noise rates and benches the
//! end-to-end noisy pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fact_discovery::{discover_facts, DiscoveryConfig, StrategyKind};
use kgfd_datasets::inject_noise;
use kgfd_embed::{train, ModelKind, TrainConfig};
use kgfd_harness::{DatasetRef, Scale};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    kgfd_bench::banner("Ablation — noise injection (model-accuracy assumption)");
    let data = DatasetRef::Fb15k237.load(Scale::Mini);
    let train_config = TrainConfig {
        dim: 16,
        epochs: 15,
        seed: 3,
        ..TrainConfig::default()
    };
    let discover_config = DiscoveryConfig {
        strategy: StrategyKind::EntityFrequency,
        top_n: 50,
        max_candidates: 100,
        seed: 9,
        ..DiscoveryConfig::default()
    };

    for &noise in &[0.0f64, 0.1, 0.25, 0.5] {
        let noisy = inject_noise(&data.train, noise, 11).unwrap();
        let (model, _) = train(ModelKind::DistMult, &noisy, &train_config);
        let report = discover_facts(model.as_ref(), &noisy, &discover_config);
        println!(
            "  noise {:>4.0}%: {:>5} facts, MRR {:.4}",
            noise * 100.0,
            report.facts.len(),
            report.mrr()
        );
    }

    let mut group = c.benchmark_group("noisy_pipeline");
    group.sample_size(10);
    for &noise in &[0.0f64, 0.25] {
        let noisy = inject_noise(&data.train, noise, 11).unwrap();
        let (model, _) = train(ModelKind::DistMult, &noisy, &train_config);
        group.bench_function(BenchmarkId::from_parameter(format!("{noise}")), |b| {
            b.iter(|| black_box(discover_facts(model.as_ref(), &noisy, &discover_config).mrr()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
