//! Design-choice ablation (DESIGN.md §5.2): Walker's alias method vs
//! CDF binary search for weighted entity sampling — build cost and draw
//! throughput at pool sizes spanning the per-relation pools of the four
//! datasets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fact_discovery::{normalize_or_uniform, AliasSampler, CdfSampler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn weights(n: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(42);
    normalize_or_uniform((0..n).map(|_| rng.random::<f64>()).collect())
}

fn bench(c: &mut Criterion) {
    kgfd_bench::banner("Ablation — alias vs CDF sampling");

    let mut build = c.benchmark_group("sampler_build");
    build.sample_size(20);
    for n in [100usize, 1_000, 10_000] {
        let w = weights(n);
        build.bench_with_input(BenchmarkId::new("alias", n), &w, |b, w| {
            b.iter(|| black_box(AliasSampler::new(w)))
        });
        build.bench_with_input(BenchmarkId::new("cdf", n), &w, |b, w| {
            b.iter(|| black_box(CdfSampler::new(w)))
        });
    }
    build.finish();

    let mut draw = c.benchmark_group("sampler_draw_1000");
    draw.sample_size(20);
    for n in [100usize, 1_000, 10_000] {
        let w = weights(n);
        let alias = AliasSampler::new(&w);
        let cdf = CdfSampler::new(&w);
        draw.bench_function(BenchmarkId::new("alias", n), |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let mut acc = 0usize;
                for _ in 0..1000 {
                    acc += alias.sample(&mut rng);
                }
                black_box(acc)
            })
        });
        draw.bench_function(BenchmarkId::new("cdf", n), |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let mut acc = 0usize;
                for _ in 0..1000 {
                    acc += cdf.sample(&mut rng);
                }
                black_box(acc)
            })
        });
    }
    draw.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
