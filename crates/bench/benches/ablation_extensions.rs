//! Ablation of the §6-inspired extensions: exploration mixing, consolidated
//! pools, and rule pruning — what each costs and what it changes, next to
//! the paper-default configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use fact_discovery::{discover_facts, DiscoveryConfig, StrategyKind};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    kgfd_bench::banner("Ablation — discovery extensions (§6 directions)");
    let (data, model) = kgfd_bench::fb_mini_transe();

    let base = DiscoveryConfig {
        strategy: StrategyKind::EntityFrequency,
        top_n: 50,
        max_candidates: 100,
        seed: 5,
        ..DiscoveryConfig::default()
    };
    let variants: Vec<(&str, DiscoveryConfig)> = vec![
        ("paper-default", base.clone()),
        (
            "explore-0.25",
            DiscoveryConfig {
                exploration_epsilon: 0.25,
                ..base.clone()
            },
        ),
        (
            "consolidated-pools",
            DiscoveryConfig {
                consolidate_sides: true,
                ..base.clone()
            },
        ),
        (
            "rule-pruning",
            DiscoveryConfig {
                prune_with_rules: true,
                ..base.clone()
            },
        ),
    ];

    for (name, config) in &variants {
        let report = discover_facts(model.as_ref(), &data.train, config);
        let pruned: usize = report.per_relation.iter().map(|r| r.pruned).sum();
        println!(
            "  {:<20} {:>5} facts  MRR {:.4}  {:>6} candidates  {:>4} pruned  {:.3}s",
            name,
            report.facts.len(),
            report.mrr(),
            report.candidates_generated(),
            pruned,
            report.total.as_secs_f64()
        );
    }

    let mut group = c.benchmark_group("discovery_extensions");
    group.sample_size(10);
    for (name, config) in variants {
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    discover_facts(model.as_ref(), &data.train, &config)
                        .facts
                        .len(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
