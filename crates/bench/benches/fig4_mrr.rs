//! Bench for **Figure 4**: fact quality (MRR) per strategy. The bench times
//! the full discovery-plus-ranking pipeline that produces each MRR value and
//! prints the per-strategy MRRs it measured (mini scale, FB15K-237-like,
//! TransE).

use criterion::{criterion_group, criterion_main, Criterion};
use fact_discovery::{discover_facts, DiscoveryConfig, StrategyKind};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    kgfd_bench::banner("Figure 4 — MRR of discovered facts per strategy");
    let (data, model) = kgfd_bench::fb_mini_transe();

    for strategy in StrategyKind::PAPER_GRID {
        let config = DiscoveryConfig {
            strategy,
            top_n: 50,
            max_candidates: 100,
            seed: 7,
            ..DiscoveryConfig::default()
        };
        let report = discover_facts(model.as_ref(), &data.train, &config);
        println!(
            "  {:<24} MRR {:.4} ({} facts)",
            strategy.name(),
            report.mrr(),
            report.facts.len()
        );
    }

    let mut group = c.benchmark_group("fig4_quality_pipeline");
    group.sample_size(10);
    for strategy in [StrategyKind::UniformRandom, StrategyKind::EntityFrequency] {
        let config = DiscoveryConfig {
            strategy,
            top_n: 50,
            max_candidates: 100,
            seed: 7,
            ..DiscoveryConfig::default()
        };
        group.bench_function(strategy.abbrev(), |b| {
            b.iter(|| {
                let report = discover_facts(model.as_ref(), &data.train, &config);
                black_box(report.mrr())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
