//! Bench for **Figure 6**: discovery efficiency (facts/hour) per strategy.
//! Prints the measured efficiencies and times the throughput-critical path
//! (discovery with a generous `top_n`, where most candidates become facts).

use criterion::{criterion_group, criterion_main, Criterion};
use fact_discovery::{discover_facts, DiscoveryConfig, StrategyKind};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    kgfd_bench::banner("Figure 6 — discovery efficiency per strategy");
    let (data, model) = kgfd_bench::fb_mini_transe();

    for strategy in StrategyKind::PAPER_GRID {
        let config = DiscoveryConfig {
            strategy,
            top_n: 50,
            max_candidates: 100,
            seed: 7,
            ..DiscoveryConfig::default()
        };
        let report = discover_facts(model.as_ref(), &data.train, &config);
        println!(
            "  {:<24} {:>10.0} facts/hour ({} facts in {:.3}s)",
            strategy.name(),
            report.facts_per_hour(),
            report.facts.len(),
            report.total.as_secs_f64()
        );
    }

    let mut group = c.benchmark_group("fig6_efficiency_pipeline");
    group.sample_size(10);
    for strategy in [StrategyKind::ClusteringTriangles, StrategyKind::GraphDegree] {
        let config = DiscoveryConfig {
            strategy,
            top_n: 50,
            max_candidates: 100,
            seed: 7,
            ..DiscoveryConfig::default()
        };
        group.bench_function(strategy.abbrev(), |b| {
            b.iter(|| {
                black_box(discover_facts(model.as_ref(), &data.train, &config).facts_per_hour())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
