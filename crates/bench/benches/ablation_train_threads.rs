//! Thread-scaling ablation of the data-parallel trainer: epoch throughput
//! at 1/2/4/8 workers on configurations heavy enough that per-batch
//! work dominates the scoped-thread spawn cost. Training is bit-identical
//! across all thread counts (see `tests/determinism.rs`), so this measures
//! pure wall-clock scaling.
//!
//! Interpreting the numbers: speedup tops out at the machine's core count.
//! On a single-core runner (CI containers are often pinned to one CPU) all
//! thread counts time alike, single-thread plus bounded spawn overhead —
//! the useful signal there is that the overhead stays small.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kgfd_embed::{train, LossKind, ModelKind, OptimizerKind, TrainConfig};
use kgfd_harness::{DatasetRef, Scale};
use std::hint::black_box;

fn config(threads: usize) -> TrainConfig {
    TrainConfig {
        // Heavy per-positive work: wide embeddings and several negatives,
        // so an epoch is compute-bound rather than spawn-bound.
        dim: 64,
        epochs: 2,
        batch_size: 512,
        negatives: 8,
        loss: LossKind::BinaryCrossEntropy,
        optimizer: OptimizerKind::Adam { lr: 0.01 },
        filter_negatives: true,
        normalize_entities: false,
        adversarial_temperature: None,
        seed: 17,
        threads,
    }
}

fn bench(c: &mut Criterion) {
    kgfd_bench::banner("Ablation — training thread scaling (epoch throughput)");

    let data = DatasetRef::Fb15k237.load(Scale::Mini);
    for kind in [ModelKind::ComplEx, ModelKind::Rescal] {
        let mut group = c.benchmark_group(format!("train_threads_{}", kind.name()));
        group.sample_size(10);
        for threads in [1usize, 2, 4, 8] {
            let cfg = config(threads);
            group.bench_with_input(BenchmarkId::from_parameter(threads), &cfg, |b, cfg| {
                b.iter(|| black_box(train(kind, &data.train, cfg)))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
