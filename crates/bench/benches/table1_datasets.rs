//! Bench for **Table 1**: dataset generation + metadata computation, and a
//! printout of the table itself (mini scale).

use criterion::{criterion_group, criterion_main, Criterion};
use kgfd_datasets::{generate, mini};
use kgfd_harness::{figures, Scale};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    kgfd_bench::banner("Table 1 — dataset metadata");
    println!("{}", figures::table1_datasets::render(Scale::Mini));

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for profile in kgfd_datasets::all_paper_profiles() {
        let p = mini(&profile);
        group.bench_function(format!("generate/{}", profile.name), |b| {
            b.iter(|| black_box(generate(&p).unwrap().metadata()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
