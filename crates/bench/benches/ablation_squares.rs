//! Ablation for **§4.3**: CLUSTERING SQUARES' cost blow-up vs the other
//! clustering measures. Times each strategy's measure-preparation step —
//! the part that made SQUARES take ~54 h in the paper.

use criterion::{criterion_group, criterion_main, Criterion};
use fact_discovery::{Measures, StrategyKind};
use kgfd_harness::{figures, DatasetRef, Scale};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    kgfd_bench::banner("§4.3 ablation — CLUSTERING SQUARES cost");
    println!("{}", figures::squares_cost::render(Scale::Mini));

    let data = DatasetRef::Fb15k237.load(Scale::Mini);
    let mut group = c.benchmark_group("ablation_measure_preparation");
    group.sample_size(10);
    for strategy in [
        StrategyKind::GraphDegree,
        StrategyKind::ClusteringTriangles,
        StrategyKind::ClusteringCoefficient,
        StrategyKind::ClusteringSquares,
    ] {
        group.bench_function(strategy.abbrev(), |b| {
            b.iter(|| black_box(Measures::compute(strategy, &data.train)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
