//! Design-choice ablation (DESIGN.md §5.3): batched score-vs-all-entities
//! kernels vs naive per-triple scoring, for every model of the paper's grid.
//! The batched kernels are what make candidate ranking (the discovery
//! algorithm's dominant cost) tractable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kgfd_embed::{new_model, ModelKind};
use kgfd_kg::{EntityId, RelationId, Triple};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    kgfd_bench::banner("Ablation — batched vs pointwise scoring kernels");
    let n = 2_000;
    let k = 20;
    let dim = 32;

    let mut group = c.benchmark_group("score_all_objects");
    group.sample_size(20);
    for kind in ModelKind::PAPER_GRID {
        let model = new_model(kind, n, k, dim, 3);
        let mut out = vec![0.0f32; n];
        group.bench_function(BenchmarkId::new("batched", kind.name()), |b| {
            b.iter(|| {
                model.score_objects(EntityId(5), RelationId(3), &mut out);
                black_box(out[0])
            })
        });
        group.bench_function(BenchmarkId::new("pointwise", kind.name()), |b| {
            b.iter(|| {
                let mut acc = 0.0f32;
                for e in 0..n as u32 {
                    acc += model.score(Triple::new(5u32, 3u32, e));
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
