//! Bench for **Figure 9**: efficiency vs `top_n` for CLUSTERING TRIANGLES
//! and UNIFORM RANDOM. Prints both panels and times the two strategies at
//! the highest `top_n` (the efficiency-maximizing end of the curve).

use criterion::{criterion_group, criterion_main, Criterion};
use fact_discovery::{discover_facts, DiscoveryConfig, StrategyKind};
use kgfd_harness::{figures, run_sweep, Scale, SweepOptions};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    kgfd_bench::banner("Figure 9 — efficiency vs top_n");
    let sweep = run_sweep(Scale::Mini, &SweepOptions::for_scale(Scale::Mini));
    println!("{}", figures::fig9_topn_efficiency::render(&sweep));

    let (data, model) = kgfd_bench::fb_mini_transe();
    let mut group = c.benchmark_group("fig9_efficiency_vs_topn");
    group.sample_size(10);
    for strategy in [
        StrategyKind::ClusteringTriangles,
        StrategyKind::UniformRandom,
    ] {
        let config = DiscoveryConfig {
            strategy,
            top_n: 60,
            max_candidates: 100,
            seed: 11,
            ..DiscoveryConfig::default()
        };
        group.bench_function(strategy.abbrev(), |b| {
            b.iter(|| {
                black_box(discover_facts(model.as_ref(), &data.train, &config).facts_per_hour())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
