//! Bench for **Figure 2**: the discovery algorithm's runtime per sampling
//! strategy — the measurement the figure plots, here timed by Criterion on
//! the FB15K-237-like mini dataset with TransE.

use criterion::{criterion_group, criterion_main, Criterion};
use fact_discovery::{discover_facts, DiscoveryConfig, StrategyKind};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    kgfd_bench::banner("Figure 2 — discovery runtime per strategy");
    let (data, model) = kgfd_bench::fb_mini_transe();

    let mut group = c.benchmark_group("fig2_discovery_runtime");
    group.sample_size(10);
    for strategy in StrategyKind::PAPER_GRID {
        let config = DiscoveryConfig {
            strategy,
            top_n: 50,
            max_candidates: 100,
            seed: 7,
            ..DiscoveryConfig::default()
        };
        group.bench_function(strategy.abbrev(), |b| {
            b.iter(|| {
                black_box(
                    discover_facts(model.as_ref(), &data.train, &config)
                        .facts
                        .len(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
