//! Bench for **Figure 7**: runtime as `max_candidates` grows while `top_n`
//! varies. Times discovery at the sweep's corner points and prints the
//! full (mini) sweep table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fact_discovery::{discover_facts, DiscoveryConfig, StrategyKind};
use kgfd_harness::{figures, run_sweep, Scale, SweepOptions};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    kgfd_bench::banner("Figure 7 — runtime vs max_candidates × top_n");
    let sweep = run_sweep(Scale::Mini, &SweepOptions::for_scale(Scale::Mini));
    println!("{}", figures::fig7_runtime_sweep::render(&sweep));

    let (data, model) = kgfd_bench::fb_mini_transe();
    let mut group = c.benchmark_group("fig7_runtime");
    group.sample_size(10);
    for max_candidates in [20usize, 60, 100] {
        for top_n in [10usize, 60] {
            let config = DiscoveryConfig {
                strategy: StrategyKind::UniformRandom,
                top_n,
                max_candidates,
                seed: 11,
                ..DiscoveryConfig::default()
            };
            group.bench_function(
                BenchmarkId::from_parameter(format!("mc{max_candidates}_top{top_n}")),
                |b| {
                    b.iter(|| {
                        black_box(
                            discover_facts(model.as_ref(), &data.train, &config)
                                .facts
                                .len(),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
