//! Bench for **Figure 3**: computing the clustering-coefficient
//! distribution of each dataset, plus the figure's table (mini scale).

use criterion::{criterion_group, criterion_main, Criterion};
use kgfd_graph_stats::{local_clustering_coefficients, UndirectedAdjacency};
use kgfd_harness::{figures, DatasetRef, Scale};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    kgfd_bench::banner("Figure 3 — clustering-coefficient distributions");
    println!("{}", figures::fig3_clustering_dist::render(Scale::Mini));

    let mut group = c.benchmark_group("fig3_clustering");
    group.sample_size(10);
    for dataset in DatasetRef::ALL {
        let data = dataset.load(Scale::Mini);
        let adj = UndirectedAdjacency::from_store(&data.train);
        group.bench_function(dataset.name(), |b| {
            b.iter(|| black_box(local_clustering_coefficients(&adj)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
