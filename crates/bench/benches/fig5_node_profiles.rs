//! Bench for **Figure 5**: computing the per-node triangle and
//! clustering-coefficient profiles, plus the correlation analysis printout.

use criterion::{criterion_group, criterion_main, Criterion};
use kgfd_graph_stats::{clustering_from_triangles, local_triangle_counts, UndirectedAdjacency};
use kgfd_harness::{figures, DatasetRef, Scale};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    kgfd_bench::banner("Figure 5 — per-node triangles vs clustering coefficient");
    println!("{}", figures::fig5_node_profiles::render(Scale::Mini));

    let data = DatasetRef::Fb15k237.load(Scale::Mini);
    let adj = UndirectedAdjacency::from_store(&data.train);
    let mut group = c.benchmark_group("fig5_node_profiles");
    group.sample_size(10);
    group.bench_function("triangles", |b| {
        b.iter(|| black_box(local_triangle_counts(&adj)))
    });
    group.bench_function("triangles_plus_coefficients", |b| {
        b.iter(|| {
            let t = local_triangle_counts(&adj);
            black_box(clustering_from_triangles(&adj, &t))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
