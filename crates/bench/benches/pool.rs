//! Bench for the **persistent worker pool**: spawn-per-call (the legacy
//! `crossbeam`-scope cost model — a fresh OS thread per job) vs the
//! process-wide pool, across the three parallel hot paths at threads
//! {1, 2, 4, 8}:
//!
//! * **train** — small-batch training, the dispatch-heaviest shape: every
//!   mini-batch fans its shards out to workers, so per-call spawn cost is
//!   paid hundreds of times per epoch;
//! * **rank** — the batched ranking engine over a discovery-shaped
//!   workload;
//! * **discover** — the per-relation discovery fan-out.
//!
//! Results are bit-identical in both modes (the determinism suite holds
//! them to that); this bench measures only the scheduling cost. Besides
//! the Criterion group, a real `cargo bench` run writes `BENCH_pool.json`
//! at the repo root and asserts the pool beats spawn-per-call on
//! small-batch training.

use criterion::{criterion_group, criterion_main, Criterion};
use fact_discovery::{discover_facts, DiscoveryConfig, StrategyKind};
use kgfd_embed::{train, ModelKind, TrainConfig};
use kgfd_eval::rank_all;
use kgfd_kg::Triple;
use kgfd_pool::{with_exec_mode, ExecMode};
use std::hint::black_box;
use std::time::Instant;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One timed phase body, borrowing the shared fixture.
type PhaseRunner<'a> = Box<dyn FnMut() + 'a>;

/// Mesh-grid candidates (dedup ratio ~`side`), the discovery ranking shape.
fn dup_heavy_workload(num_entities: usize, side: u32) -> Vec<Triple> {
    let n = num_entities as u32;
    (0..side)
        .flat_map(|i| (0..side).map(move |j| Triple::new(i % n, 0, (side + j) % n)))
        .collect()
}

/// Best-of-3 wall time of `f`, after one warmup call.
fn best_of_3<R>(mut f: impl FnMut() -> R) -> f64 {
    black_box(f());
    (0..3)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn bench(c: &mut Criterion) {
    // Size the pool before its first use: the bench compares thread counts
    // up to 8 regardless of the host's core count (on fewer cores the
    // timings measure scheduling cost, which is exactly the subject here).
    std::env::set_var("KGFD_POOL_SIZE", "8");
    kgfd_bench::banner("pool — spawn-per-call vs persistent worker pool");
    let (data, model) = kgfd_bench::fb_mini_transe();
    let known = data.known_triples();
    let workload = dup_heavy_workload(data.train.num_entities(), 24);

    // Small batches on purpose: one shard fan-out per mini-batch makes
    // training the dispatch-heaviest phase, where spawn cost dominates.
    let train_config = |threads: usize| TrainConfig {
        dim: 16,
        epochs: 1,
        batch_size: 32,
        seed: 11,
        threads,
        ..TrainConfig::default()
    };
    let discover_config = |threads: usize| DiscoveryConfig {
        strategy: StrategyKind::EntityFrequency,
        top_n: 20,
        max_candidates: 40,
        seed: 11,
        threads,
        ..DiscoveryConfig::default()
    };

    let mut rows = Vec::new();
    let mut train_speedup_at_max = 0.0f64;
    println!(
        "  {:<10} {:>7}  {:>11}  {:>11}  {:>7}",
        "phase", "threads", "spawn", "pool", "speedup"
    );
    for threads in THREAD_COUNTS {
        let phases: [(&str, PhaseRunner); 3] = [
            (
                "train",
                Box::new(|| {
                    black_box(train(
                        ModelKind::TransE,
                        &data.train,
                        &train_config(threads),
                    ));
                }),
            ),
            (
                "rank",
                Box::new(|| {
                    black_box(rank_all(model.as_ref(), &workload, Some(&known), threads));
                }),
            ),
            (
                "discover",
                Box::new(|| {
                    black_box(discover_facts(
                        model.as_ref(),
                        &data.train,
                        &discover_config(threads),
                    ));
                }),
            ),
        ];
        for (phase, mut run) in phases {
            let spawn_s = with_exec_mode(ExecMode::SpawnPerCall, || best_of_3(&mut run));
            let pool_s = with_exec_mode(ExecMode::Persistent, || best_of_3(&mut run));
            let speedup = spawn_s / pool_s;
            if phase == "train" && threads == *THREAD_COUNTS.last().unwrap() {
                train_speedup_at_max = speedup;
            }
            println!(
                "  {phase:<10} {threads:>7}  {:>9.2}ms  {:>9.2}ms  {speedup:>6.2}x",
                spawn_s * 1e3,
                pool_s * 1e3
            );
            rows.push(format!(
                concat!(
                    "    {{\"phase\": \"{}\", \"threads\": {}, \"spawn_s\": {:.6}, ",
                    "\"pool_s\": {:.6}, \"speedup\": {:.3}}}"
                ),
                phase, threads, spawn_s, pool_s, speedup
            ));
        }
    }

    // `cargo test` runs bench bodies once with `--test`; only a real bench
    // run is the measurement of record (and rewrites the checked-in file).
    if !std::env::args().any(|a| a == "--test") {
        assert!(
            train_speedup_at_max >= 1.0,
            "persistent pool lost to spawn-per-call on small-batch training \
             at {} threads ({train_speedup_at_max:.3}x)",
            THREAD_COUNTS.last().unwrap()
        );
        let json = format!(
            "{{\n  \"bench\": \"pool\",\n  \"pool_size\": 8,\n  \"model\": \"transe\",\n  \"entities\": {},\n  \"phases\": [\n{}\n  ]\n}}\n",
            data.train.num_entities(),
            rows.join(",\n")
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pool.json");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("  (could not write BENCH_pool.json: {e})");
        } else {
            println!("  wrote {path}");
        }
    }

    let mut group = c.benchmark_group("pool");
    group.sample_size(10);
    for mode in [ExecMode::SpawnPerCall, ExecMode::Persistent] {
        let label = match mode {
            ExecMode::SpawnPerCall => "spawn_per_call",
            ExecMode::Persistent => "persistent",
        };
        group.bench_function(format!("train_small_batch_{label}"), |b| {
            b.iter(|| {
                with_exec_mode(mode, || {
                    black_box(train(ModelKind::TransE, &data.train, &train_config(4)))
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
