//! Design-choice ablation (DESIGN.md §5.4): sorted-adjacency-intersection
//! triangle counting vs a hash-set-membership reference implementation.

use criterion::{criterion_group, criterion_main, Criterion};
use kgfd_graph_stats::{local_triangle_counts, UndirectedAdjacency};
use kgfd_harness::{DatasetRef, Scale};
use kgfd_kg::EntityId;
use std::collections::HashSet;
use std::hint::black_box;

/// Reference: count triangles with per-node hash sets instead of sorted
/// intersections. Same output, different constant factors.
fn triangles_hashset(adj: &UndirectedAdjacency) -> Vec<u64> {
    let n = adj.num_nodes();
    let sets: Vec<HashSet<u32>> = (0..n)
        .map(|v| adj.neighbors(EntityId(v as u32)).iter().copied().collect())
        .collect();
    let mut counts = vec![0u64; n];
    for v in 0..n {
        let mut twice = 0u64;
        for &u in adj.neighbors(EntityId(v as u32)) {
            let small = &sets[v.min(u as usize)];
            let large = &sets[v.max(u as usize)];
            twice += small.iter().filter(|x| large.contains(x)).count() as u64;
        }
        counts[v] = twice / 2;
    }
    counts
}

fn bench(c: &mut Criterion) {
    kgfd_bench::banner("Ablation — triangle counting implementations");
    let data = DatasetRef::Fb15k237.load(Scale::Mini);
    let adj = UndirectedAdjacency::from_store(&data.train);
    // Correctness cross-check before timing.
    assert_eq!(local_triangle_counts(&adj), triangles_hashset(&adj));

    let mut group = c.benchmark_group("triangle_counting");
    group.sample_size(20);
    group.bench_function("sorted_intersection", |b| {
        b.iter(|| black_box(local_triangle_counts(&adj)))
    });
    group.bench_function("hashset_reference", |b| {
        b.iter(|| black_box(triangles_hashset(&adj)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
