//! Bench for the **batched, query-deduplicated ranking engine**: batched
//! (`rank_all`, i.e. `BatchRanker`) vs scalar (`rank_all_scalar`) on two
//! workload shapes —
//!
//! * **dup-heavy** (discovery-shaped): candidates from a mesh grid, so a
//!   handful of distinct `(s, r)` / `(r, o)` side queries cover hundreds of
//!   triples. This is where deduplication pays.
//! * **unique** (eval-shaped): every triple carries fresh side queries; the
//!   engine must not regress here.
//!
//! Besides the Criterion groups, the run writes `BENCH_ranking.json` at the
//! repo root with measured throughputs and speedups (skipped under
//! `cargo test`, which runs bench bodies once in test mode).

use criterion::{criterion_group, criterion_main, Criterion};
use kgfd_eval::{rank_all, rank_all_scalar, BatchRanker};
use kgfd_kg::Triple;
use std::hint::black_box;
use std::time::Instant;

/// Mesh-grid candidates: `side × side` triples over one relation, sharing
/// only `2 × side` distinct side queries (dedup ratio `side`).
fn dup_heavy_workload(num_entities: usize, side: u32) -> Vec<Triple> {
    let n = num_entities as u32;
    (0..side)
        .flat_map(|i| (0..side).map(move |j| Triple::new(i % n, 0, (side + j) % n)))
        .collect()
}

/// Eval-shaped candidates: subject/object pairs chosen so no `(s, r)` or
/// `(r, o)` query repeats.
fn unique_workload(num_entities: usize, count: usize) -> Vec<Triple> {
    let n = num_entities as u32;
    (0..count as u32)
        .map(|i| Triple::new(i % n, i / n, (i.wrapping_mul(31).wrapping_add(7)) % n))
        .collect()
}

/// Best-of-3 wall time of `f`, after one warmup call.
fn best_of_3<R>(mut f: impl FnMut() -> R) -> f64 {
    black_box(f());
    (0..3)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn bench(c: &mut Criterion) {
    kgfd_bench::banner("ranking — batched vs scalar ranking engine");
    let (data, model) = kgfd_bench::fb_mini_transe();
    let known = data.known_triples();
    let n = data.train.num_entities();

    let dup_heavy = dup_heavy_workload(n, 24); // 576 triples, 48 distinct queries
    let unique = unique_workload(n, 256);

    let mut results = Vec::new();
    let mut unique_speedup = f64::INFINITY;
    for (name, triples) in [("dup_heavy", &dup_heavy), ("unique", &unique)] {
        let scalar_s = best_of_3(|| rank_all_scalar(model.as_ref(), triples, Some(&known), 1));
        let batched_s = best_of_3(|| rank_all(model.as_ref(), triples, Some(&known), 1));
        let (_, stats) =
            BatchRanker::new(model.as_ref(), 1).rank_all_with_stats(triples, Some(&known));
        let speedup = scalar_s / batched_s;
        if name == "unique" {
            unique_speedup = speedup;
        }
        println!(
            "  {:<10} {:>5} triples  dedup {:>5.1}x  scalar {:>8.1}/s  batched {:>8.1}/s  speedup {:>5.2}x",
            name,
            triples.len(),
            stats.dedup_ratio(),
            triples.len() as f64 / scalar_s,
            triples.len() as f64 / batched_s,
            speedup
        );
        results.push(format!(
            concat!(
                "    {{\"workload\": \"{}\", \"triples\": {}, \"dedup_ratio\": {:.3}, ",
                "\"scalar_triples_per_sec\": {:.1}, \"batched_triples_per_sec\": {:.1}, ",
                "\"speedup\": {:.3}}}"
            ),
            name,
            triples.len(),
            stats.dedup_ratio(),
            triples.len() as f64 / scalar_s,
            triples.len() as f64 / batched_s,
            speedup
        ));
    }

    // Tracing overhead on the dup-heavy workload: the same batched ranking
    // with the span collector recording kernel-tile spans vs disabled. No
    // export runs — this isolates the per-span record cost.
    kgfd_obs::disable_tracing();
    let untraced_s = best_of_3(|| rank_all(model.as_ref(), &dup_heavy, Some(&known), 1));
    kgfd_obs::enable_tracing();
    let traced_s = best_of_3(|| rank_all(model.as_ref(), &dup_heavy, Some(&known), 1));
    let spans_per_run = kgfd_obs::collector().drain().len() / 4; // warmup + 3 timed
    kgfd_obs::disable_tracing();
    let overhead_pct = (traced_s / untraced_s - 1.0) * 100.0;
    println!(
        "  tracing    dup_heavy  {spans_per_run:>3} spans/run  off {:>8.1}/s  on {:>8.1}/s  overhead {:>5.2}%",
        dup_heavy.len() as f64 / untraced_s,
        dup_heavy.len() as f64 / traced_s,
        overhead_pct
    );

    // `cargo test` runs bench bodies once with `--test`; only a real
    // `cargo bench` run should (re)write the checked-in measurement file.
    // The overhead gate lives behind the same guard: test-mode timings on
    // loaded CI boxes are noise, the bench run is the measurement of record.
    if !std::env::args().any(|a| a == "--test") {
        assert!(
            overhead_pct < 5.0,
            "tracing overhead {overhead_pct:.2}% exceeds the 5% budget \
             (off {untraced_s:.6}s vs on {traced_s:.6}s)"
        );
        // The unique (eval-shaped) workload takes the no-grouping bypass;
        // the batched engine must at least match the scalar path there.
        assert!(
            unique_speedup >= 1.0,
            "batched engine regressed on the unique workload \
             ({unique_speedup:.3}x vs scalar)"
        );
        let json = format!(
            "{{\n  \"bench\": \"ranking\",\n  \"model\": \"transe\",\n  \"entities\": {},\n  \"threads\": 1,\n  \"workloads\": [\n{}\n  ],\n  \"tracing_overhead\": {{\"workload\": \"dup_heavy\", \"spans_per_run\": {}, \"off_triples_per_sec\": {:.1}, \"on_triples_per_sec\": {:.1}, \"overhead_pct\": {:.3}}}\n}}\n",
            n,
            results.join(",\n"),
            spans_per_run,
            dup_heavy.len() as f64 / untraced_s,
            dup_heavy.len() as f64 / traced_s,
            overhead_pct
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ranking.json");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("  (could not write BENCH_ranking.json: {e})");
        } else {
            println!("  wrote {path}");
        }
    }

    let mut group = c.benchmark_group("ranking_engine");
    group.sample_size(10);
    for (name, triples) in [("dup_heavy", &dup_heavy), ("unique", &unique)] {
        group.bench_function(format!("scalar_{name}"), |b| {
            b.iter(|| black_box(rank_all_scalar(model.as_ref(), triples, Some(&known), 1)))
        });
        group.bench_function(format!("batched_{name}"), |b| {
            b.iter(|| black_box(rank_all(model.as_ref(), triples, Some(&known), 1)))
        });
    }
    group.finish();

    // Cheap sanity pass (also exercised in test mode): the two engines must
    // agree on both workloads.
    for triples in [&dup_heavy, &unique] {
        assert_eq!(
            rank_all(model.as_ref(), triples, Some(&known), 1),
            rank_all_scalar(model.as_ref(), triples, Some(&known), 1),
            "batched and scalar engines diverged"
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
