//! Bench for **Figure 8**: MRR under `max_candidates` / `top_n` sweeps with
//! CLUSTERING TRIANGLES. Prints the two panels and times the quality
//! pipeline at the pivot configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use fact_discovery::{discover_facts, DiscoveryConfig, StrategyKind};
use kgfd_harness::{figures, run_sweep, Scale, SweepOptions};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    kgfd_bench::banner("Figure 8 — MRR under hyperparameter sweeps");
    let mut options = SweepOptions::for_scale(Scale::Mini);
    options.strategies = vec![StrategyKind::ClusteringTriangles];
    let sweep = run_sweep(Scale::Mini, &options);
    println!("{}", figures::fig8_quality_sweep::render(&sweep));

    let (data, model) = kgfd_bench::fb_mini_transe();
    let config = DiscoveryConfig {
        strategy: StrategyKind::ClusteringTriangles,
        top_n: 60,
        max_candidates: 100,
        seed: 11,
        ..DiscoveryConfig::default()
    };
    let mut group = c.benchmark_group("fig8_quality");
    group.sample_size(10);
    group.bench_function("pivot_config", |b| {
        b.iter(|| black_box(discover_facts(model.as_ref(), &data.train, &config).mrr()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
