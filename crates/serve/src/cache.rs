//! A seeded-fxhash LRU cache of rendered responses.
//!
//! Keyed by `(endpoint, model generation, exact request body bytes)`: the
//! generation comes from the [`crate::ModelRegistry`], so a hot reload
//! invalidates every cached answer for that model without any scan, and
//! keying on the raw body bytes (rather than a parsed form) guarantees a
//! hit can only ever replay a byte-identical request. The stored value is
//! the exact response body served on the cold path, so cached and uncached
//! answers are bit-identical — the determinism contract the conformance
//! tests assert.
//!
//! Recency is a monotonic tick per entry; eviction scans for the minimum
//! (the cache is small — hundreds of entries — so O(n) eviction beats the
//! constant factor of an intrusive list). The map's hasher is a seeded
//! `fxhash` build: bucket layout is reproducible across runs and
//! independent of any ambient `RandomState`.

use fxhash::FxBuildHasher;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// What a hit replays: the status is always 200 (only successful answers
/// are cached), so just the body bytes.
pub type CachedBody = Arc<Vec<u8>>;

type Key = (&'static str, u64, Vec<u8>);

struct Entry {
    last_used: u64,
    body: CachedBody,
}

struct Inner {
    map: HashMap<Key, Entry, FxBuildHasher>,
    tick: u64,
}

/// Bounded LRU of `(endpoint, generation, body) → response bytes` with
/// hit/miss counters on the obs registry.
pub struct ResponseCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl ResponseCache {
    /// A cache holding at most `capacity` responses (0 disables caching).
    /// `seed` keys the fxhash bucket layout.
    pub fn new(capacity: usize, seed: u64) -> ResponseCache {
        ResponseCache {
            inner: Mutex::new(Inner {
                map: HashMap::with_capacity_and_hasher(
                    capacity.min(1024),
                    FxBuildHasher::seeded(seed),
                ),
                tick: 0,
            }),
            capacity,
        }
    }

    /// Looks up a response, refreshing its recency. Counts
    /// `serve.cache.hits` / `serve.cache.misses`.
    pub fn get(&self, endpoint: &'static str, generation: u64, body: &[u8]) -> Option<CachedBody> {
        if self.capacity == 0 {
            return None;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let found = inner
            .map
            .get_mut(&(endpoint, generation, body.to_vec()))
            .map(|e| {
                e.last_used = tick;
                Arc::clone(&e.body)
            });
        match &found {
            Some(_) => kgfd_obs::counter("serve.cache.hits").inc(),
            None => kgfd_obs::counter("serve.cache.misses").inc(),
        }
        found
    }

    /// Stores a cold-path response, evicting the least-recently-used entry
    /// when full.
    pub fn insert(
        &self,
        endpoint: &'static str,
        generation: u64,
        body: Vec<u8>,
        response: CachedBody,
    ) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity
            && !inner
                .map
                .contains_key(&(endpoint, generation, body.clone()))
        {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
                kgfd_obs::counter("serve.cache.evictions").inc();
            }
        }
        inner.map.insert(
            (endpoint, generation, body),
            Entry {
                last_used: tick,
                body: response,
            },
        );
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(text: &str) -> CachedBody {
        Arc::new(text.as_bytes().to_vec())
    }

    #[test]
    fn hit_replays_the_exact_bytes() {
        let cache = ResponseCache::new(4, 7);
        cache.insert("/v1/score", 1, b"q".to_vec(), body("answer"));
        let hit = cache.get("/v1/score", 1, b"q").expect("hit");
        assert_eq!(&**hit, b"answer");
    }

    #[test]
    fn generation_bump_misses() {
        let cache = ResponseCache::new(4, 7);
        cache.insert("/v1/score", 1, b"q".to_vec(), body("stale"));
        assert!(cache.get("/v1/score", 2, b"q").is_none());
    }

    #[test]
    fn endpoint_is_part_of_the_key() {
        let cache = ResponseCache::new(4, 7);
        cache.insert("/v1/score", 1, b"q".to_vec(), body("scores"));
        assert!(cache.get("/v1/rank", 1, b"q").is_none());
    }

    #[test]
    fn evicts_least_recently_used() {
        let cache = ResponseCache::new(2, 7);
        cache.insert("/v1/score", 1, b"a".to_vec(), body("A"));
        cache.insert("/v1/score", 1, b"b".to_vec(), body("B"));
        // Touch `a` so `b` is the LRU victim.
        assert!(cache.get("/v1/score", 1, b"a").is_some());
        cache.insert("/v1/score", 1, b"c".to_vec(), body("C"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("/v1/score", 1, b"a").is_some());
        assert!(cache.get("/v1/score", 1, b"b").is_none());
        assert!(cache.get("/v1/score", 1, b"c").is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResponseCache::new(0, 7);
        cache.insert("/v1/score", 1, b"q".to_vec(), body("x"));
        assert!(cache.get("/v1/score", 1, b"q").is_none());
        assert!(cache.is_empty());
    }
}
