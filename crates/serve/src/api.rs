//! Endpoint handlers: JSON in, JSON out, dense ids only in the middle.
//!
//! Every handler is a pure function of `(graph, model, request body)` —
//! no ambient state, no clocks except the request deadline — so the same
//! request always renders byte-identical response bodies. That is the
//! determinism contract the response cache relies on: a cache hit replays
//! exactly what the cold path would have produced.
//!
//! Label translation happens at the boundary: requests speak the graph's
//! entity/relation labels, handlers translate to dense ids through the
//! shared [`GraphContext`]'s vocabulary, and unknown labels are a typed
//! `400` (the model never sees an out-of-range id).

use crate::registry::{GraphContext, ModelEntry};
use fact_discovery::{try_discover_facts, DiscoveryConfig, StrategyKind};
use kgfd_eval::BatchRanker;
use kgfd_kg::{KgError, Triple};
use serde_json::{json, Value};
use std::time::Instant;

/// Typed request failures, each mapping to one HTTP status.
#[derive(Debug)]
pub enum ApiError {
    /// Malformed JSON, missing fields, unknown labels → `400`.
    BadRequest(String),
    /// The named model is not loaded → `404`.
    UnknownModel(String),
    /// The request's deadline expired before the answer was ready → `408`.
    DeadlineExceeded,
    /// A worker-side failure (e.g. a panicked ranking job) → `500`.
    Internal(String),
}

impl ApiError {
    fn bad(msg: impl Into<String>) -> ApiError {
        ApiError::BadRequest(msg.into())
    }
}

/// Renders the JSON error body for a failed request. The `error` field is
/// a stable machine-readable tag; `detail` is for humans.
pub fn error_body(err: &ApiError) -> Vec<u8> {
    let (tag, detail) = match err {
        ApiError::BadRequest(d) => ("bad_request", d.clone()),
        ApiError::UnknownModel(d) => ("unknown_model", d.clone()),
        ApiError::DeadlineExceeded => (
            "deadline_exceeded",
            "the request deadline expired before the answer was ready".to_string(),
        ),
        ApiError::Internal(d) => ("internal", d.clone()),
    };
    render(&json!({"error": tag, "detail": detail}))
}

fn render(v: &Value) -> Vec<u8> {
    let mut bytes = serde_json::to_string(v)
        .expect("response values contain no non-serializable data")
        .into_bytes();
    bytes.push(b'\n');
    bytes
}

/// Parses the request body as a JSON object.
pub fn parse_request(body: &[u8]) -> Result<Value, ApiError> {
    serde_json::from_slice::<Value>(body).map_err(|e| ApiError::bad(format!("invalid JSON: {e}")))
}

/// The `model` field of a request.
pub fn model_name(request: &Value) -> Result<&str, ApiError> {
    request
        .get("model")
        .and_then(Value::as_str)
        .ok_or_else(|| ApiError::bad("missing string field \"model\""))
}

/// Translates the request's `triples` array (`[["s","r","o"], ...]`) into
/// dense-id triples against the served graph.
fn parse_triples(graph: &GraphContext, request: &Value) -> Result<Vec<Triple>, ApiError> {
    let items = request
        .get("triples")
        .and_then(Value::as_array)
        .ok_or_else(|| ApiError::bad("missing array field \"triples\""))?;
    if items.is_empty() {
        return Err(ApiError::bad("\"triples\" must not be empty"));
    }
    items
        .iter()
        .enumerate()
        .map(|(i, item)| {
            let parts = item.as_array().filter(|p| p.len() == 3).ok_or_else(|| {
                ApiError::bad(format!("triples[{i}] must be [subject, relation, object]"))
            })?;
            let label = |j: usize| -> Result<&str, ApiError> {
                parts[j]
                    .as_str()
                    .ok_or_else(|| ApiError::bad(format!("triples[{i}][{j}] must be a string")))
            };
            let (s, r, o) = (label(0)?, label(1)?, label(2)?);
            Ok(Triple {
                subject: graph
                    .vocab
                    .entity(s)
                    .ok_or_else(|| ApiError::bad(format!("unknown entity {s:?}")))?,
                relation: graph
                    .vocab
                    .relation(r)
                    .ok_or_else(|| ApiError::bad(format!("unknown relation {r:?}")))?,
                object: graph
                    .vocab
                    .entity(o)
                    .ok_or_else(|| ApiError::bad(format!("unknown entity {o:?}")))?,
            })
        })
        .collect()
}

fn u64_field(request: &Value, key: &str, default: u64) -> Result<u64, ApiError> {
    match request.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| ApiError::bad(format!("field {key:?} must be a non-negative integer"))),
    }
}

/// `POST /v1/score` — raw model scores for explicit triples.
pub fn handle_score(
    graph: &GraphContext,
    entry: &ModelEntry,
    request: &Value,
) -> Result<Vec<u8>, ApiError> {
    let triples = parse_triples(graph, request)?;
    let scores: Vec<Value> = triples
        .iter()
        .map(|&t| serde_json::to_value(&(entry.model.score(t) as f64)))
        .collect();
    Ok(render(&json!({
        "model": (entry.name),
        "kind": (entry.model.kind().to_string()),
        "scores": (Value::Array(scores)),
    })))
}

/// `POST /v1/rank` — filtered two-sided ranks through the batched,
/// query-deduplicated [`BatchRanker`] (shared deterministic kernels on the
/// persistent worker pool).
pub fn handle_rank(
    graph: &GraphContext,
    entry: &ModelEntry,
    request: &Value,
    rank_threads: usize,
) -> Result<Vec<u8>, ApiError> {
    let triples = parse_triples(graph, request)?;
    let filtered = request
        .get("filtered")
        .map(|v| {
            v.as_bool()
                .ok_or_else(|| ApiError::bad("field \"filtered\" must be a boolean"))
        })
        .transpose()?
        .unwrap_or(true);
    let known = filtered.then_some(&graph.known);
    let ranks = BatchRanker::new(entry.model.as_ref(), rank_threads).rank_all(&triples, known);
    let rows: Vec<Value> = ranks
        .iter()
        .map(|r| json!({"subject": (r.subject), "object": (r.object), "mean": (r.mean())}))
        .collect();
    Ok(render(&json!({
        "model": (entry.name),
        "filtered": filtered,
        "ranks": (Value::Array(rows)),
    })))
}

/// `POST /v1/discover` — the paper's Algorithm 1 as an online query,
/// streamed through [`fact_discovery::CandidateStream`] under the
/// request's deadline.
pub fn handle_discover(
    graph: &GraphContext,
    entry: &ModelEntry,
    request: &Value,
    rank_threads: usize,
    deadline: Instant,
) -> Result<Vec<u8>, ApiError> {
    let strategy = match request.get("strategy") {
        None => StrategyKind::EntityFrequency,
        Some(v) => {
            let name = v
                .as_str()
                .ok_or_else(|| ApiError::bad("field \"strategy\" must be a string"))?;
            parse_strategy(name)?
        }
    };
    let relations = match request.get("relation") {
        None => None,
        Some(v) => {
            let label = v
                .as_str()
                .ok_or_else(|| ApiError::bad("field \"relation\" must be a string"))?;
            Some(vec![graph.vocab.relation(label).ok_or_else(|| {
                ApiError::bad(format!("unknown relation {label:?}"))
            })?])
        }
    };
    let config = DiscoveryConfig {
        strategy,
        top_n: u64_field(request, "top_n", 500)? as usize,
        max_candidates: u64_field(request, "max_candidates", 500)? as usize,
        relations,
        seed: u64_field(request, "seed", 0)?,
        threads: rank_threads,
        top_k: request
            .get("top_k")
            .map(|v| {
                v.as_u64()
                    .map(|k| k as usize)
                    .ok_or_else(|| ApiError::bad("field \"top_k\" must be a non-negative integer"))
            })
            .transpose()?,
        deadline: Some(deadline),
        ..DiscoveryConfig::default()
    };
    let report =
        try_discover_facts(entry.model.as_ref(), &graph.store, &config).map_err(|e| match e {
            KgError::DeadlineExceeded => ApiError::DeadlineExceeded,
            KgError::WorkerPanic(msg) => ApiError::Internal(msg),
            other => ApiError::bad(other.to_string()),
        })?;
    let facts: Vec<Value> = report
        .facts
        .iter()
        .map(|f| {
            json!({
                "subject": (graph.vocab.entity_label(f.triple.subject).unwrap_or("?")),
                "relation": (graph.vocab.relation_label(f.triple.relation).unwrap_or("?")),
                "object": (graph.vocab.entity_label(f.triple.object).unwrap_or("?")),
                "rank": (f.rank),
            })
        })
        .collect();
    Ok(render(&json!({
        "model": (entry.name),
        "strategy": (config.strategy.abbrev()),
        "top_n": (config.top_n),
        "max_candidates": (config.max_candidates),
        "candidates": (report.candidates_generated()),
        "fact_count": (facts.len()),
        "facts": (Value::Array(facts)),
    })))
}

/// Accepts the CLI's strategy spellings (`ur`/`ef`/… and long forms).
fn parse_strategy(name: &str) -> Result<StrategyKind, ApiError> {
    let s = match name.to_ascii_lowercase().as_str() {
        "ur" | "uniform" | "random_uniform" => StrategyKind::UniformRandom,
        "ef" | "frequency" | "entity_frequency" => StrategyKind::EntityFrequency,
        "gd" | "degree" | "graph_degree" => StrategyKind::GraphDegree,
        "cc" | "coefficient" | "cluster_coefficient" => StrategyKind::ClusteringCoefficient,
        "ct" | "triangles" | "cluster_triangles" => StrategyKind::ClusteringTriangles,
        "cs" | "squares" | "cluster_squares" => StrategyKind::ClusteringSquares,
        "pr" | "pagerank" => StrategyKind::PageRank,
        other => return Err(ApiError::bad(format!("unknown strategy {other:?}"))),
    };
    Ok(s)
}
