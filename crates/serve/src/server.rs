//! The serving engine: fixed-size acceptor + worker design with a bounded
//! request queue, load shedding, deadlines, caching, and graceful drain.
//!
//! ```text
//!            ┌──────────┐   bounded queue    ┌──────────┐
//!  TCP ──────▶ acceptor ├────────────────────▶ worker 0 ├──▶ kgfd-pool
//!            │  thread  │  (≤ max_inflight)  │    ...   │    (ranking
//!            └────┬─────┘                    │ worker N │     kernels)
//!        GETs ◀───┘ 429/413/404/503          └──────────┘
//! ```
//!
//! **Acceptor.** One thread owns the (non-blocking) listener. It reads only
//! the request *head* under a short timeout, then: answers `GET` routes
//! (`/healthz`, `/metrics`, `/v1/models`) inline — liveness never queues
//! behind model work — and either enqueues a `POST` or sheds it with `429
//! Retry-After` when `max_inflight` requests are already admitted.
//! Oversized and unroutable requests are refused inline (`413` / `404`)
//! without reading their bodies.
//!
//! **Workers.** A fixed pool of `workers` threads pops requests, finishes
//! the body read, and dispatches to the handlers in [`crate::api`]. Model
//! work (ranking, discovery) runs through the process-wide `kgfd-pool`, so
//! concurrent requests share the same deterministic batched kernels.
//! Handler panics are caught per request (`500`, `serve.worker_panics`
//! counter) — a worker thread itself never dies non-gracefully.
//!
//! **Deadlines.** Every admitted request is stamped `now + deadline_ms`.
//! The deadline is checked when a worker picks the request up (queue wait
//! counts against the budget) and cooperatively inside streaming discovery
//! ([`fact_discovery::DiscoveryConfig::deadline`]); expiry is a typed
//! `408 {"error":"deadline_exceeded"}` and frees the slot like any
//! completed request.
//!
//! **Determinism.** Handlers are pure functions of `(graph, model
//! generation, body)`; the response cache keys on exactly that, so a
//! cached answer is bit-identical to a cold one, and the same query
//! returns the same bytes at any concurrency level.

use crate::api::{self, ApiError};
use crate::cache::ResponseCache;
use crate::http::{self, RequestHead, Status};
use crate::registry::ModelRegistry;
use serde_json::json;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long a peer may take to deliver request head or body segments.
const IO_TIMEOUT: Duration = Duration::from_secs(2);
/// Acceptor poll interval while the listener has nothing to accept.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Server tuning; every field has a production-shaped default.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads executing request handlers.
    pub workers: usize,
    /// Admission bound: queued + executing `POST`s; beyond it requests are
    /// shed with `429 Retry-After`.
    pub max_inflight: usize,
    /// Per-request deadline, stamped at admission.
    pub deadline_ms: u64,
    /// Response-cache capacity in entries (0 disables caching).
    pub cache_entries: usize,
    /// Seed for the cache's fxhash bucket layout.
    pub cache_seed: u64,
    /// Worker threads for ranking/discovery kernels inside one request.
    pub rank_threads: usize,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Expose `POST /v1/_sleep` (deterministic slot-holding for tests).
    pub enable_test_endpoints: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_inflight: 64,
            deadline_ms: 10_000,
            cache_entries: 256,
            cache_seed: 0,
            rank_threads: 2,
            max_body_bytes: 1 << 20,
            enable_test_endpoints: false,
        }
    }
}

/// An admitted request waiting for (or held by) a worker.
struct Pending {
    stream: TcpStream,
    head: RequestHead,
    deadline: Instant,
    admitted: Instant,
}

struct Shared {
    config: ServeConfig,
    registry: Arc<ModelRegistry>,
    cache: ResponseCache,
    queue: Mutex<VecDeque<Pending>>,
    queue_cv: Condvar,
    /// Admitted (queued + executing) requests.
    inflight: AtomicUsize,
    /// Set on SIGTERM / `begin_drain`: refuse new work, finish admitted.
    draining: AtomicBool,
    /// Set by `shutdown` once drained: threads exit.
    stop: AtomicBool,
    started: Instant,
}

impl Shared {
    fn set_inflight_gauge(&self) {
        kgfd_obs::gauge("serve.inflight").set(self.inflight.load(Ordering::SeqCst) as f64);
    }
}

/// A running `kgfd-serve` instance.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// Closing statistics for the run manifest, read off the obs registry.
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Requests whose head parsed (every routed connection).
    pub requests: u64,
    /// Responses by class.
    pub responses_2xx: u64,
    /// 4xx responses (including shed and deadline-expired ones).
    pub responses_4xx: u64,
    /// 5xx responses (caught panics, drain refusals).
    pub responses_5xx: u64,
    /// Requests shed with `429` at admission.
    pub shed: u64,
    /// Requests whose deadline expired (in queue or mid-run).
    pub deadline_expired: u64,
    /// Response-cache hits / misses.
    pub cache_hits: u64,
    /// Response-cache misses.
    pub cache_misses: u64,
    /// Handler panics caught (the worker survived each one).
    pub worker_panics: u64,
    /// Worker threads that exited cleanly at shutdown.
    pub workers_joined: usize,
    /// Worker threads the server started with.
    pub workers_spawned: usize,
}

impl ServeStats {
    /// Snapshot of the `serve.*` counters.
    pub fn snapshot() -> ServeStats {
        ServeStats {
            requests: kgfd_obs::counter("serve.requests").get(),
            responses_2xx: kgfd_obs::counter("serve.responses.2xx").get(),
            responses_4xx: kgfd_obs::counter("serve.responses.4xx").get(),
            responses_5xx: kgfd_obs::counter("serve.responses.5xx").get(),
            shed: kgfd_obs::counter("serve.shed").get(),
            deadline_expired: kgfd_obs::counter("serve.deadline_expired").get(),
            cache_hits: kgfd_obs::counter("serve.cache.hits").get(),
            cache_misses: kgfd_obs::counter("serve.cache.misses").get(),
            worker_panics: kgfd_obs::counter("serve.worker_panics").get(),
            workers_joined: 0,
            workers_spawned: 0,
        }
    }
}

impl Server {
    /// Binds `config.addr` and starts the acceptor and worker threads.
    pub fn start(config: ServeConfig, registry: Arc<ModelRegistry>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let cache = ResponseCache::new(config.cache_entries, config.cache_seed);
        let shared = Arc::new(Shared {
            config,
            registry,
            cache,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            inflight: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            started: Instant::now(),
        });
        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("kgfd-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("kgfd-serve-acceptor".to_string())
                .spawn(move || accept_loop(listener, &shared))?
        };
        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The bound address (use with `addr: 127.0.0.1:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts refusing new `POST`s (`503 {"error":"draining"}`) while
    /// admitted requests keep running. Idempotent.
    pub fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// True once draining has been requested.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Admitted requests not yet answered.
    pub fn inflight(&self) -> usize {
        self.shared.inflight.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: drain, wait for every admitted request to finish,
    /// then stop and join all threads. Returns the run's statistics with
    /// the join accounting filled in.
    pub fn shutdown(mut self) -> ServeStats {
        self.begin_drain();
        while self.inflight() > 0 {
            std::thread::sleep(Duration::from_millis(5));
        }
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        let spawned = self.workers.len();
        let mut joined = 0;
        for handle in self.workers.drain(..) {
            if handle.join().is_ok() {
                joined += 1;
            }
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let mut stats = ServeStats::snapshot();
        stats.workers_spawned = spawned;
        stats.workers_joined = joined;
        stats
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Non-graceful fallback for dropped-without-shutdown servers
        // (tests, error paths): stop immediately, abandoning the queue.
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => admit(stream, shared),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Routes one fresh connection: inline GETs, admission control for POSTs.
fn admit(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let Some(head) = http::read_head(&mut stream) else {
        return; // probe / malformed head: drop silently, like kgfd_obs
    };
    kgfd_obs::counter("serve.requests").inc();

    match (head.method.as_str(), head.path.as_str()) {
        ("GET", "/healthz") => finish(&mut stream, Status(200), &[], &healthz_body(shared)),
        ("GET", "/metrics") => {
            kgfd_obs::counter("serve.responses.2xx").inc();
            http::respond_text(&mut stream, &kgfd_obs::prometheus_text());
        }
        ("GET", "/v1/models") => finish(&mut stream, Status(200), &[], &models_body(shared)),
        ("POST", path) if is_post_route(path, &shared.config) => {
            if shared.draining.load(Ordering::SeqCst) {
                let body = render_error("draining", "server is draining; not accepting new work");
                refuse(&mut stream, &head, Status(503), &[], &body);
                return;
            }
            if head.content_length > shared.config.max_body_bytes {
                let body = render_error(
                    "payload_too_large",
                    &format!(
                        "body of {} bytes exceeds the {}-byte limit",
                        head.content_length, shared.config.max_body_bytes
                    ),
                );
                refuse(&mut stream, &head, Status(413), &[], &body);
                return;
            }
            // Admission: reserve a slot unless max_inflight are taken.
            let admitted = shared
                .inflight
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                    (n < shared.config.max_inflight).then_some(n + 1)
                })
                .is_ok();
            if !admitted {
                kgfd_obs::counter("serve.shed").inc();
                let body = render_error("overloaded", "max_inflight requests already admitted");
                refuse(
                    &mut stream,
                    &head,
                    Status(429),
                    &[("Retry-After", "1".to_string())],
                    &body,
                );
                return;
            }
            shared.set_inflight_gauge();
            let now = Instant::now();
            let pending = Pending {
                stream,
                head,
                deadline: now + Duration::from_millis(shared.config.deadline_ms),
                admitted: now,
            };
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.push_back(pending);
            kgfd_obs::gauge("serve.queue_depth").set(queue.len() as f64);
            drop(queue);
            shared.queue_cv.notify_one();
        }
        _ => {
            let body = render_error(
                "not_found",
                "routes: GET /healthz /metrics /v1/models, POST /v1/score /v1/rank /v1/discover /v1/reload",
            );
            refuse(&mut stream, &head, Status(404), &[], &body);
        }
    }
}

fn is_post_route(path: &str, config: &ServeConfig) -> bool {
    matches!(
        path,
        "/v1/score" | "/v1/rank" | "/v1/discover" | "/v1/reload"
    ) || (config.enable_test_endpoints && path == "/v1/_sleep")
}

fn worker_loop(shared: &Shared) {
    loop {
        let pending = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(p) = queue.pop_front() {
                    kgfd_obs::gauge("serve.queue_depth").set(queue.len() as f64);
                    break Some(p);
                }
                if shared.stop.load(Ordering::SeqCst) {
                    break None;
                }
                let (q, _) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner());
                queue = q;
            }
        };
        let Some(pending) = pending else { return };
        serve_one(shared, pending);
        shared.inflight.fetch_sub(1, Ordering::SeqCst);
        shared.set_inflight_gauge();
    }
}

/// Handles one admitted request end to end on a worker thread.
fn serve_one(shared: &Shared, pending: Pending) {
    let Pending {
        mut stream,
        head,
        deadline,
        admitted,
    } = pending;
    kgfd_obs::histogram("serve.queue_wait_us").record(admitted.elapsed().as_micros() as f64);
    let endpoint = endpoint_label(&head.path);

    // Queue wait counts against the budget: a request that waited its
    // whole deadline out is answered with the typed timeout immediately.
    if Instant::now() >= deadline {
        kgfd_obs::counter("serve.deadline_expired").inc();
        refuse(
            &mut stream,
            &head,
            Status(408),
            &[],
            &api::error_body(&ApiError::DeadlineExceeded),
        );
        return;
    }
    let Some(body) = http::read_body(&mut stream, &head) else {
        let body = render_error("bad_request", "request body could not be read");
        finish(&mut stream, Status(400), &[], &body);
        return;
    };

    // One trace-only root per request: ranking/discovery spans opened by
    // the handlers (and their pool jobs, via cross-thread handoff) nest
    // under it, so a trace of a serving run groups work by request.
    let span = kgfd_obs::Span::with_fields_traced(
        "serve.request",
        vec![kgfd_obs::Field::new("endpoint", endpoint)],
    );
    let started = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        route(shared, &head.path, &body, deadline)
    }));
    let (status, response, cache_note) = outcome.unwrap_or_else(|_| {
        kgfd_obs::counter("serve.worker_panics").inc();
        (
            Status(500),
            render_error("internal", "request handler panicked"),
            None,
        )
    });
    drop(span);
    kgfd_obs::histogram(&format!("serve.{endpoint}.latency_us"))
        .record(started.elapsed().as_micros() as f64);

    let mut headers: Vec<(&str, String)> = Vec::new();
    if let Some(note) = cache_note {
        headers.push(("X-Kgfd-Cache", note.to_string()));
    }
    finish(&mut stream, status, &headers, &response);
}

/// Dispatches a parsed-head request to its handler, going through the
/// response cache for the model-answering endpoints.
fn route(
    shared: &Shared,
    path: &str,
    body: &[u8],
    deadline: Instant,
) -> (Status, Vec<u8>, Option<&'static str>) {
    let request = match api::parse_request(body) {
        Ok(v) => v,
        Err(e) => return (status_of(&e), api::error_body(&e), None),
    };

    if path == "/v1/_sleep" {
        return match sleep_handler(&request, deadline) {
            Ok(bytes) => (Status(200), bytes, None),
            Err(e) => (status_of(&e), api::error_body(&e), None),
        };
    }
    if path == "/v1/reload" {
        let result = api::model_name(&request).and_then(|name| {
            shared
                .registry
                .reload(name)
                .map(|generation| {
                    let mut bytes = serde_json::to_string(&json!({
                        "model": name,
                        "generation": generation,
                    }))
                    .expect("literal object")
                    .into_bytes();
                    bytes.push(b'\n');
                    bytes
                })
                .map_err(|e| ApiError::UnknownModel(e.to_string()))
        });
        return match result {
            Ok(bytes) => (Status(200), bytes, None),
            Err(e) => (status_of(&e), api::error_body(&e), None),
        };
    }

    // Model-answering endpoints: resolve the model, then try the cache.
    let entry = match api::model_name(&request).and_then(|name| {
        shared
            .registry
            .get(name)
            .ok_or_else(|| ApiError::UnknownModel(format!("no model named {name:?} is loaded")))
    }) {
        Ok(entry) => entry,
        Err(e) => return (status_of(&e), api::error_body(&e), None),
    };
    let endpoint = endpoint_label(path);
    if let Some(cached) = shared.cache.get(endpoint, entry.generation, body) {
        return (Status(200), (*cached).clone(), Some("hit"));
    }

    let graph = shared.registry.graph();
    let rank_threads = shared.config.rank_threads;
    let result = match path {
        "/v1/score" => api::handle_score(graph, &entry, &request),
        "/v1/rank" => api::handle_rank(graph, &entry, &request, rank_threads),
        "/v1/discover" => api::handle_discover(graph, &entry, &request, rank_threads, deadline),
        _ => Err(ApiError::BadRequest(format!("unroutable path {path:?}"))),
    };
    match result {
        Ok(bytes) => {
            shared.cache.insert(
                endpoint,
                entry.generation,
                body.to_vec(),
                Arc::new(bytes.clone()),
            );
            (Status(200), bytes, Some("miss"))
        }
        Err(e) => {
            if matches!(e, ApiError::DeadlineExceeded) {
                kgfd_obs::counter("serve.deadline_expired").inc();
            }
            (status_of(&e), api::error_body(&e), None)
        }
    }
}

/// `POST /v1/_sleep {"ms": N}` — holds a worker slot for `N` ms while
/// honouring the request deadline; exists only for deterministic
/// shed/deadline/drain tests (`enable_test_endpoints`).
fn sleep_handler(request: &serde_json::Value, deadline: Instant) -> Result<Vec<u8>, ApiError> {
    let ms = request
        .get("ms")
        .and_then(serde_json::Value::as_u64)
        .ok_or_else(|| ApiError::BadRequest("missing integer field \"ms\"".to_string()))?;
    let until = Instant::now() + Duration::from_millis(ms);
    while Instant::now() < until {
        if Instant::now() >= deadline {
            return Err(ApiError::DeadlineExceeded);
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut bytes = serde_json::to_string(&json!({"slept_ms": ms}))
        .expect("literal object")
        .into_bytes();
    bytes.push(b'\n');
    Ok(bytes)
}

fn status_of(err: &ApiError) -> Status {
    match err {
        ApiError::BadRequest(_) => Status(400),
        ApiError::UnknownModel(_) => Status(404),
        ApiError::DeadlineExceeded => Status(408),
        ApiError::Internal(_) => Status(500),
    }
}

fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/v1/score" => "score",
        "/v1/rank" => "rank",
        "/v1/discover" => "discover",
        "/v1/reload" => "reload",
        "/v1/_sleep" => "_sleep",
        _ => "other",
    }
}

/// Writes the response and records its class counter.
fn finish(stream: &mut TcpStream, status: Status, headers: &[(&str, String)], body: &[u8]) {
    kgfd_obs::counter(&format!("serve.responses.{}", status.class())).inc();
    http::respond(stream, status, headers, body);
}

/// Cap on how much of a refused request's body is drained before closing.
const REFUSAL_DRAIN_BYTES: usize = 64 * 1024;

/// Refuses a request whose body was never read: drains the unread bytes
/// (bounded) so the close does not RST the response away, then answers.
fn refuse(
    stream: &mut TcpStream,
    head: &RequestHead,
    status: Status,
    headers: &[(&str, String)],
    body: &[u8],
) {
    let unread = head.content_length.saturating_sub(head.body_prefix.len());
    http::discard_body(stream, unread.min(REFUSAL_DRAIN_BYTES));
    finish(stream, status, headers, body);
}

fn render_error(tag: &str, detail: &str) -> Vec<u8> {
    let mut bytes = serde_json::to_string(&json!({"error": tag, "detail": detail}))
        .expect("literal object")
        .into_bytes();
    bytes.push(b'\n');
    bytes
}

fn healthz_body(shared: &Shared) -> Vec<u8> {
    let status = if shared.draining.load(Ordering::SeqCst) {
        "draining"
    } else {
        "ok"
    };
    let phase = match kgfd_obs::current_phase() {
        Some(p) => serde_json::to_value(&p),
        None => serde_json::Value::Null,
    };
    let mut bytes = serde_json::to_string(&json!({
        "status": status,
        "run": (kgfd_obs::run_id()),
        "uptime_s": (shared.started.elapsed().as_secs_f64()),
        "phase": phase,
        "inflight": (shared.inflight.load(Ordering::SeqCst) as u64),
        "models": (shared.registry.names()),
    }))
    .expect("literal object")
    .into_bytes();
    bytes.push(b'\n');
    bytes
}

fn models_body(shared: &Shared) -> Vec<u8> {
    let models: Vec<serde_json::Value> = shared
        .registry
        .names()
        .into_iter()
        .filter_map(|name| {
            let entry = shared.registry.get(&name)?;
            Some(json!({
                "name": (entry.name),
                "kind": (entry.model.kind().to_string()),
                "dim": (entry.model.dim()),
                "generation": (entry.generation),
            }))
        })
        .collect();
    let mut bytes = serde_json::to_string(&json!({"models": (serde_json::Value::Array(models))}))
        .expect("literal object")
        .into_bytes();
    bytes.push(b'\n');
    bytes
}
