//! Minimal HTTP/1.1 request parsing and response writing over raw
//! `TcpStream`s — the same dependency-free approach as
//! `kgfd_obs::MetricsServer`, extended with request bodies.
//!
//! The split matters for the acceptor/worker design: the acceptor reads
//! only the *head* (request line + headers, bounded), which is enough to
//! route, shed, and size-check a request without ever blocking on a slow
//! body upload; the worker that picks the request up completes the body
//! read under its own timeout. One request per connection,
//! `Connection: close`, no keep-alive, no TLS.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Cap on the request line + headers; a peer that cannot finish its
/// headers in this budget is malformed.
const MAX_HEAD_BYTES: usize = 8192;

/// The routed portion of a request: everything before the body.
#[derive(Debug)]
pub struct RequestHead {
    /// `GET`, `POST`, ... (uppercased as received).
    pub method: String,
    /// Request target, e.g. `/v1/discover`.
    pub path: String,
    /// Declared `Content-Length` (0 when absent).
    pub content_length: usize,
    /// Body bytes that arrived in the same segments as the headers.
    pub body_prefix: Vec<u8>,
}

/// Reads the head of one request. Returns `None` for connections that
/// close or misbehave before completing their headers (probes, port
/// scanners) — those are dropped without a response.
pub fn read_head(stream: &mut TcpStream) -> Option<RequestHead> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    let header_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() >= MAX_HEAD_BYTES {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    };
    let head_text = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut lines = head_text.lines();
    let request_line = lines.next()?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next()?.to_ascii_uppercase();
    let path = parts.next()?.to_string();
    let content_length = lines
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse::<usize>().ok())?
        })
        .next()
        .unwrap_or(0);
    Some(RequestHead {
        method,
        path,
        content_length,
        body_prefix: buf[header_end + 4..].to_vec(),
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Completes the body read started by [`read_head`]: the prefix already
/// buffered plus whatever the declared `Content-Length` still owes.
/// Returns `None` if the peer closes or stalls before delivering it all.
pub fn read_body(stream: &mut TcpStream, head: &RequestHead) -> Option<Vec<u8>> {
    let mut body = head.body_prefix.clone();
    if body.len() > head.content_length {
        // More bytes than declared: pipelined garbage; reject.
        return None;
    }
    let mut chunk = [0u8; 4096];
    while body.len() < head.content_length {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => body.extend_from_slice(&chunk[..n]),
        }
    }
    (body.len() == head.content_length).then_some(body)
}

/// Reads and discards up to `limit` bytes of an unread request body.
///
/// Refusal paths (shed, oversized, draining, expired) answer without ever
/// reading the body — but closing a socket with unread data in its receive
/// buffer makes the kernel send RST, which can destroy the refusal
/// response before the peer reads it. Draining first (bounded, under the
/// stream's read timeout) lets the peer finish its upload and then read
/// the refusal cleanly.
pub fn discard_body(stream: &mut TcpStream, limit: usize) {
    let mut remaining = limit;
    let mut chunk = [0u8; 4096];
    while remaining > 0 {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => remaining = remaining.saturating_sub(n),
        }
    }
}

/// An HTTP status this server emits, with its canonical reason phrase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status(pub u16);

impl Status {
    /// The reason phrase for the status line.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// `"2xx"`, `"4xx"`, or `"5xx"` — the class label used for the
    /// `serve.responses.*` counters.
    pub fn class(self) -> &'static str {
        match self.0 {
            200..=299 => "2xx",
            400..=499 => "4xx",
            _ => "5xx",
        }
    }
}

/// Writes one complete response and flushes it. Errors are swallowed: a
/// peer that hung up mid-response is its own problem, not the server's.
pub fn respond(
    stream: &mut TcpStream,
    status: Status,
    extra_headers: &[(&str, String)],
    body: &[u8],
) {
    let mut headers = String::new();
    for (name, value) in extra_headers {
        headers.push_str(&format!("{name}: {value}\r\n"));
    }
    let _ = write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{headers}Connection: close\r\n\r\n",
        status.0,
        status.reason(),
        body.len(),
    );
    let _ = stream.write_all(body);
    let _ = stream.flush();
}

/// Writes a Prometheus-text response (the one non-JSON route).
pub fn respond_text(stream: &mut TcpStream, body: &str) {
    let _ = write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(request: &[u8]) -> Option<RequestHead> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(request).unwrap();
        client.shutdown(std::net::Shutdown::Write).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        read_head(&mut server_side)
    }

    #[test]
    fn parses_method_path_and_length() {
        let head = roundtrip(b"POST /v1/score HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(head.method, "POST");
        assert_eq!(head.path, "/v1/score");
        assert_eq!(head.content_length, 5);
        assert_eq!(head.body_prefix, b"hello");
    }

    #[test]
    fn header_case_is_ignored() {
        let head = roundtrip(b"POST /x HTTP/1.1\r\ncontent-length: 3\r\n\r\n").unwrap();
        assert_eq!(head.content_length, 3);
        assert!(head.body_prefix.is_empty());
    }

    #[test]
    fn garbage_head_is_dropped() {
        assert!(roundtrip(b"\r\n\r\n").is_none());
        assert!(roundtrip(b"no newline ever").is_none());
    }

    #[test]
    fn status_classes_partition() {
        assert_eq!(Status(200).class(), "2xx");
        assert_eq!(Status(429).class(), "4xx");
        assert_eq!(Status(503).class(), "5xx");
        assert_eq!(Status(408).reason(), "Request Timeout");
    }
}
