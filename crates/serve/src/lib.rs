//! `kgfd-serve` — a dependency-free HTTP server for online fact
//! discovery queries against trained KGE models.
//!
//! This crate turns the batch pipeline (`kgfd train` → `kgfd discover`)
//! into an online service: models are loaded from `kgfd train` model
//! files at startup, requests arrive as JSON over plain HTTP/1.1, and
//! answers are computed by the same deterministic kernels the CLI uses —
//! [`kgfd_eval::BatchRanker`] for ranking, streaming discovery for
//! Algorithm 1 — on the process-wide persistent `kgfd-pool`.
//!
//! Endpoints:
//!
//! | Route              | Purpose                                         |
//! |--------------------|-------------------------------------------------|
//! | `POST /v1/score`   | Raw model scores for explicit triples           |
//! | `POST /v1/rank`    | Filtered two-sided ranks (batched, deduplicated)|
//! | `POST /v1/discover`| Online fact discovery under a deadline          |
//! | `POST /v1/reload`  | Hot-reload a model from its file                |
//! | `GET /healthz`     | Liveness (served inline, never queued)          |
//! | `GET /metrics`     | Prometheus text of the obs registry             |
//! | `GET /v1/models`   | Loaded models with kind/dim/generation          |
//!
//! The architecture (bounded queue, `429` load shedding, per-request
//! deadlines, seeded response cache, graceful drain) is documented on
//! [`server`] and in DESIGN.md §15. Determinism is load-bearing: the same
//! request body against the same model generation renders bit-identical
//! response bytes whether it is answered cold, concurrently with 63 other
//! requests, or replayed from the cache.

#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod http;
pub mod registry;
pub mod server;
pub mod signal;

pub use cache::ResponseCache;
pub use registry::{GraphContext, ModelEntry, ModelRegistry};
pub use server::{ServeConfig, ServeStats, Server};
pub use signal::{install_termination_handler, request_termination, termination_requested};
