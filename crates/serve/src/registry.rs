//! Model registry: the set of embedding models a server answers with.
//!
//! Models are loaded from `kgfd train` model files at startup and can be
//! hot-reloaded from their original path (`POST /v1/reload`) without a
//! restart. Every load — initial or reload — assigns a fresh process-wide
//! *generation* number; the response cache keys on it, so a reload
//! atomically invalidates all cached answers computed by the replaced
//! parameters while leaving other models' entries warm.
//!
//! All models share one [`GraphContext`] (the training graph the server
//! was started with): its vocabulary translates request labels to dense
//! ids, its store feeds discovery, and its [`KnownTriples`] index provides
//! the filtered ranking protocol. A model whose entity/relation counts do
//! not match the graph is refused at load time — serving with a
//! mismatched vocabulary would silently score the wrong embeddings.

use kgfd_embed::{read_model_file, KgeModel};
use kgfd_kg::{KgError, KnownTriples, TripleStore, Vocabulary};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The graph every request is interpreted against.
pub struct GraphContext {
    /// Label ↔ dense-id mapping of the training graph.
    pub vocab: Vocabulary,
    /// The training triples (discovery candidates are drawn from it).
    pub store: TripleStore,
    /// Filter index over the training triples for ranked queries.
    pub known: KnownTriples,
}

impl GraphContext {
    /// Builds the context (including the filter index) from a loaded graph.
    pub fn new(vocab: Vocabulary, store: TripleStore) -> GraphContext {
        let known = KnownTriples::from_slices([store.triples()]);
        GraphContext {
            vocab,
            store,
            known,
        }
    }
}

/// One servable model: parameters plus provenance.
pub struct ModelEntry {
    /// Name requests address it by.
    pub name: String,
    /// File it was (re)loaded from.
    pub path: PathBuf,
    /// Cache-invalidation token; unique per (re)load.
    pub generation: u64,
    /// The embedding model itself (`KgeModel: Send + Sync`).
    pub model: Box<dyn KgeModel>,
}

/// Thread-safe name → model map with hot reload.
pub struct ModelRegistry {
    graph: Arc<GraphContext>,
    models: RwLock<BTreeMap<String, Arc<ModelEntry>>>,
    next_generation: AtomicU64,
}

impl ModelRegistry {
    /// An empty registry serving against `graph`.
    pub fn new(graph: GraphContext) -> ModelRegistry {
        ModelRegistry {
            graph: Arc::new(graph),
            models: RwLock::new(BTreeMap::new()),
            next_generation: AtomicU64::new(1),
        }
    }

    /// The shared graph context.
    pub fn graph(&self) -> &Arc<GraphContext> {
        &self.graph
    }

    /// Loads (or replaces) `name` from `path`, returning the new entry's
    /// generation. Typed persistence errors (corruption, version skew) pass
    /// through untouched so callers keep their exit-code mapping.
    pub fn load(&self, name: &str, path: impl Into<PathBuf>) -> Result<u64, KgError> {
        let path = path.into();
        let model = read_model_file(&path)?;
        if model.num_entities() != self.graph.store.num_entities()
            || model.num_relations() != self.graph.store.num_relations()
        {
            return Err(KgError::Invariant(format!(
                "model {name:?} shape ({} entities, {} relations) does not match the served \
                 graph ({} entities, {} relations)",
                model.num_entities(),
                model.num_relations(),
                self.graph.store.num_entities(),
                self.graph.store.num_relations()
            )));
        }
        let generation = self.next_generation.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(ModelEntry {
            name: name.to_string(),
            path,
            generation,
            model,
        });
        self.models.write().insert(name.to_string(), entry);
        kgfd_obs::counter("serve.model_loads").inc();
        Ok(generation)
    }

    /// Re-reads `name` from the path it was originally loaded from. The
    /// new generation makes every cached response for the model stale.
    pub fn reload(&self, name: &str) -> Result<u64, KgError> {
        let path = self
            .models
            .read()
            .get(name)
            .map(|e| e.path.clone())
            .ok_or_else(|| KgError::Invariant(format!("no model named {name:?} is loaded")))?;
        self.load(name, path)
    }

    /// The current entry for `name`, if loaded. In-flight requests holding
    /// an older `Arc` finish against the parameters they started with.
    pub fn get(&self, name: &str) -> Option<Arc<ModelEntry>> {
        self.models.read().get(name).cloned()
    }

    /// Loaded model names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.models.read().keys().cloned().collect()
    }

    /// Number of loaded models.
    pub fn len(&self) -> usize {
        self.models.read().len()
    }

    /// True when no model is loaded.
    pub fn is_empty(&self) -> bool {
        self.models.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgfd_datasets::toy_biomedical;
    use kgfd_embed::{train, write_model_file, ModelKind, TrainConfig};

    fn toy_registry() -> (ModelRegistry, PathBuf) {
        let data = toy_biomedical();
        let config = TrainConfig {
            dim: 8,
            epochs: 5,
            seed: 3,
            ..TrainConfig::default()
        };
        let (model, _) = train(ModelKind::DistMult, &data.train, &config);
        let dir = std::env::temp_dir().join(format!("kgfd-serve-registry-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.kgm");
        write_model_file(&path, model.as_ref()).unwrap();
        let registry = ModelRegistry::new(GraphContext::new(data.vocab, data.train));
        (registry, path)
    }

    #[test]
    fn load_reload_bumps_generation() {
        let (registry, path) = toy_registry();
        let g1 = registry.load("toy", &path).unwrap();
        let g2 = registry.reload("toy").unwrap();
        assert!(g2 > g1, "reload must produce a fresh generation");
        assert_eq!(registry.names(), vec!["toy".to_string()]);
        assert_eq!(registry.get("toy").unwrap().generation, g2);
        assert!(registry.get("absent").is_none());
    }

    #[test]
    fn reload_of_unknown_model_is_a_typed_error() {
        let (registry, _path) = toy_registry();
        assert!(matches!(
            registry.reload("ghost"),
            Err(KgError::Invariant(_))
        ));
    }

    #[test]
    fn shape_mismatch_is_refused() {
        let (registry, path) = toy_registry();
        // A model trained on a different graph (one entity fewer).
        let data = toy_biomedical();
        let mut vocab = Vocabulary::new();
        let triples = {
            let mut scratch = Vec::new();
            for t in data.train.triples().iter().take(4) {
                let s = vocab.intern_entity(data.vocab.entity_label(t.subject).unwrap());
                let r = vocab.intern_relation(data.vocab.relation_label(t.relation).unwrap());
                let o = vocab.intern_entity(data.vocab.entity_label(t.object).unwrap());
                scratch.push(kgfd_kg::Triple {
                    subject: s,
                    relation: r,
                    object: o,
                });
            }
            scratch
        };
        let small = TripleStore::new(vocab.num_entities(), vocab.num_relations(), triples).unwrap();
        let (model, _) = train(
            ModelKind::DistMult,
            &small,
            &TrainConfig {
                dim: 8,
                epochs: 1,
                ..TrainConfig::default()
            },
        );
        let small_path = path.with_file_name("small.kgm");
        write_model_file(&small_path, model.as_ref()).unwrap();
        match registry.load("small", &small_path) {
            Err(KgError::Invariant(msg)) => assert!(msg.contains("does not match"), "{msg}"),
            other => panic!("expected shape refusal, got {other:?}"),
        }
    }
}
