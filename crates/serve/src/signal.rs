//! Dependency-free SIGTERM/SIGINT latching for graceful drain.
//!
//! The handler does the only thing an async-signal-safe handler may do
//! here: store into a static atomic. The serve loop polls
//! [`termination_requested`] and runs the actual drain (refuse new work,
//! finish admitted requests, join workers) in ordinary code.
//!
//! `std` already links the platform C runtime on unix, so `signal(2)` is
//! declared directly instead of pulling in a libc crate. On non-unix
//! targets installation is a no-op and the flag only ever reads `false`.

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATION_REQUESTED: AtomicBool = AtomicBool::new(false);

/// True once SIGTERM or SIGINT has been delivered (after
/// [`install_termination_handler`]).
pub fn termination_requested() -> bool {
    TERMINATION_REQUESTED.load(Ordering::SeqCst)
}

/// Test/driver hook: latch the flag as if a signal had arrived.
pub fn request_termination() {
    TERMINATION_REQUESTED.store(true, Ordering::SeqCst);
}

/// Installs the latching handler for SIGTERM and SIGINT. Idempotent;
/// replaces any previously installed disposition for those signals.
#[cfg(unix)]
pub fn install_termination_handler() {
    use std::os::raw::c_int;

    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;

    extern "C" fn on_signal(_signum: c_int) {
        TERMINATION_REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: c_int, handler: usize) -> usize;
    }

    let handler = on_signal as extern "C" fn(c_int) as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

/// No signals to install on non-unix targets; the drain flag can still be
/// raised programmatically via [`request_termination`].
#[cfg(not(unix))]
pub fn install_termination_handler() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_request_latches() {
        install_termination_handler();
        // The flag is process-global; this test only ever sets it, and no
        // other test in this crate reads it.
        assert!(!termination_requested() || cfg!(not(unix)));
        request_termination();
        assert!(termination_requested());
    }
}
