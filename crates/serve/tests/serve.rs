//! End-to-end tests of the serving engine over real sockets: admission
//! control, deadlines, cache determinism, drain, and error partitioning.

use fact_discovery::{try_discover_facts, DiscoveryConfig, StrategyKind};
use kgfd_datasets::toy_biomedical;
use kgfd_embed::{train, write_model_file, ModelKind, TrainConfig};
use kgfd_serve::{GraphContext, ModelRegistry, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A parsed HTTP response: status code, headers, body bytes.
struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    fn json(&self) -> serde_json::Value {
        serde_json::from_slice(&self.body)
            .unwrap_or_else(|e| panic!("response is not JSON ({e}): {}", self.text()))
    }
}

fn read_response(stream: &mut TcpStream) -> Response {
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a head");
    let head = String::from_utf8_lossy(&raw[..head_end]).into_owned();
    let mut lines = head.lines();
    let status = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse::<u16>().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| {
            let (n, v) = l.split_once(':')?;
            Some((n.trim().to_string(), v.trim().to_string()))
        })
        .collect();
    Response {
        status,
        headers,
        body: raw[head_end + 4..].to_vec(),
    }
}

fn post(addr: SocketAddr, path: &str, body: &str) -> Response {
    let mut stream = start_post(addr, path, body);
    read_response(&mut stream)
}

/// Sends a POST but does not read the response: the request occupies its
/// admission slot until the returned stream is read (or dropped).
fn start_post(addr: SocketAddr, path: &str, body: &str) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    stream.flush().unwrap();
    stream
}

fn get(addr: SocketAddr, path: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("write request");
    stream.flush().unwrap();
    read_response(&mut stream)
}

/// Trains a small model on the toy graph and writes it to a temp file
/// unique to `tag` (tests run concurrently in one process).
fn model_file(tag: &str) -> PathBuf {
    let data = toy_biomedical();
    let config = TrainConfig {
        dim: 8,
        epochs: 5,
        seed: 3,
        ..TrainConfig::default()
    };
    let (model, _) = train(ModelKind::DistMult, &data.train, &config);
    let dir = std::env::temp_dir().join(format!("kgfd-serve-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{tag}.kgm"));
    write_model_file(&path, model.as_ref()).unwrap();
    path
}

/// Boots a server with the toy graph and one model named "toy".
fn boot(tag: &str, config: ServeConfig) -> (Server, SocketAddr, Arc<ModelRegistry>) {
    let path = model_file(tag);
    let data = toy_biomedical();
    let registry = Arc::new(ModelRegistry::new(GraphContext::new(
        data.vocab, data.train,
    )));
    registry.load("toy", &path).unwrap();
    let server = Server::start(config, Arc::clone(&registry)).expect("bind");
    let addr = server.local_addr();
    (server, addr, registry)
}

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        enable_test_endpoints: true,
        ..ServeConfig::default()
    }
}

/// A triple from the toy graph, as JSON labels. Uses the first stored
/// triple so the query is always valid.
fn known_triple_json() -> String {
    let data = toy_biomedical();
    let t = data.train.triples()[0];
    format!(
        "[\"{}\", \"{}\", \"{}\"]",
        data.vocab.entity_label(t.subject).unwrap(),
        data.vocab.relation_label(t.relation).unwrap(),
        data.vocab.entity_label(t.object).unwrap()
    )
}

#[test]
fn get_routes_answer_inline() {
    let (server, addr, _) = boot("inline", test_config());
    let health = get(addr, "/healthz").json();
    assert_eq!(health["status"].as_str(), Some("ok"));
    assert_eq!(health["models"][0].as_str(), Some("toy"));
    let models = get(addr, "/v1/models").json();
    assert_eq!(models["models"][0]["name"].as_str(), Some("toy"));
    assert!(models["models"][0]["generation"].as_u64().is_some());
    let metrics = get(addr, "/metrics");
    assert_eq!(metrics.status, 200);
    assert!(metrics.text().contains("serve_requests"));
    server.shutdown();
}

#[test]
fn score_rank_discover_answer() {
    let (server, addr, _) = boot("answers", test_config());
    let triple = known_triple_json();

    let score = post(
        addr,
        "/v1/score",
        &format!("{{\"model\": \"toy\", \"triples\": [{triple}]}}"),
    );
    assert_eq!(score.status, 200, "{}", score.text());
    assert!(score.json()["scores"][0].as_f64().is_some());

    let rank = post(
        addr,
        "/v1/rank",
        &format!("{{\"model\": \"toy\", \"triples\": [{triple}]}}"),
    );
    assert_eq!(rank.status, 200, "{}", rank.text());
    let ranks = rank.json();
    assert!(ranks["ranks"][0]["mean"].as_f64().unwrap() >= 1.0);

    let discover = post(
        addr,
        "/v1/discover",
        "{\"model\": \"toy\", \"strategy\": \"ef\", \"top_n\": 20, \"max_candidates\": 50}",
    );
    assert_eq!(discover.status, 200, "{}", discover.text());
    let report = discover.json();
    assert_eq!(report["strategy"].as_str(), Some("EF"));
    assert!(report["fact_count"].as_u64().is_some());
    server.shutdown();
}

#[test]
fn discover_matches_the_in_process_pipeline() {
    let (server, addr, _) = boot("conformance", test_config());
    let response = post(
        addr,
        "/v1/discover",
        "{\"model\": \"toy\", \"strategy\": \"ef\", \"top_n\": 10, \"max_candidates\": 30, \
         \"seed\": 7}",
    );
    assert_eq!(response.status, 200, "{}", response.text());
    let served = response.json();

    // The same query straight through the library, bypassing HTTP.
    let data = toy_biomedical();
    let path = model_file("conformance-direct");
    let model = kgfd_embed::read_model_file(&path).unwrap();
    let config = DiscoveryConfig {
        strategy: StrategyKind::EntityFrequency,
        top_n: 10,
        max_candidates: 30,
        seed: 7,
        threads: ServeConfig::default().rank_threads,
        ..DiscoveryConfig::default()
    };
    let report = try_discover_facts(model.as_ref(), &data.train, &config).unwrap();

    let served_facts = served["facts"].as_array().expect("facts array");
    assert_eq!(served_facts.len(), report.facts.len());
    for (json, fact) in served_facts.iter().zip(&report.facts) {
        assert_eq!(
            json["subject"].as_str().unwrap(),
            data.vocab.entity_label(fact.triple.subject).unwrap()
        );
        assert_eq!(
            json["relation"].as_str().unwrap(),
            data.vocab.relation_label(fact.triple.relation).unwrap()
        );
        assert_eq!(
            json["object"].as_str().unwrap(),
            data.vocab.entity_label(fact.triple.object).unwrap()
        );
    }
    server.shutdown();
}

#[test]
fn cache_hit_is_bit_identical_to_the_cold_path() {
    let (server, addr, _) = boot("cache", test_config());
    let body = format!(
        "{{\"model\": \"toy\", \"triples\": [{}]}}",
        known_triple_json()
    );
    let cold = post(addr, "/v1/rank", &body);
    assert_eq!(cold.status, 200, "{}", cold.text());
    assert_eq!(cold.header("X-Kgfd-Cache"), Some("miss"));
    let warm = post(addr, "/v1/rank", &body);
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("X-Kgfd-Cache"), Some("hit"));
    assert_eq!(
        cold.body, warm.body,
        "cached response must replay the cold path byte for byte"
    );
    server.shutdown();
}

#[test]
fn reload_bumps_the_generation_and_invalidates_the_cache() {
    let (server, addr, _) = boot("reload", test_config());
    let body = format!(
        "{{\"model\": \"toy\", \"triples\": [{}]}}",
        known_triple_json()
    );
    assert_eq!(
        post(addr, "/v1/score", &body).header("X-Kgfd-Cache"),
        Some("miss")
    );
    assert_eq!(
        post(addr, "/v1/score", &body).header("X-Kgfd-Cache"),
        Some("hit")
    );

    let reload = post(addr, "/v1/reload", "{\"model\": \"toy\"}");
    assert_eq!(reload.status, 200, "{}", reload.text());
    assert!(reload.json()["generation"].as_u64().unwrap() > 1);

    // Fresh generation → the old entry can no longer be hit.
    assert_eq!(
        post(addr, "/v1/score", &body).header("X-Kgfd-Cache"),
        Some("miss")
    );
    assert_eq!(
        post(addr, "/v1/score", &body).header("X-Kgfd-Cache"),
        Some("hit")
    );
    server.shutdown();
}

#[test]
fn identical_concurrent_queries_get_identical_bytes() {
    let (server, addr, _) = boot("concurrent", test_config());
    let body = Arc::new(format!(
        "{{\"model\": \"toy\", \"triples\": [{}]}}",
        known_triple_json()
    ));
    let bodies: Vec<Vec<u8>> = {
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let body = Arc::clone(&body);
                std::thread::spawn(move || {
                    let r = post(addr, "/v1/rank", &body);
                    assert_eq!(r.status, 200, "{}", r.text());
                    r.body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    };
    for b in &bodies[1..] {
        assert_eq!(
            b, &bodies[0],
            "same query must render the same bytes under concurrency"
        );
    }
    server.shutdown();
}

#[test]
fn overload_is_shed_with_429_and_retry_after() {
    let (server, addr, _) = boot(
        "shed",
        ServeConfig {
            workers: 1,
            max_inflight: 1,
            ..test_config()
        },
    );
    // Occupy the only admission slot...
    let mut held = start_post(addr, "/v1/_sleep", "{\"ms\": 400}");
    wait_until(|| server.inflight() == 1);
    // ...so the next request must be shed.
    let shed = post(
        addr,
        "/v1/score",
        "{\"model\": \"toy\", \"triples\": [[\"a\",\"b\",\"c\"]]}",
    );
    assert_eq!(shed.status, 429, "{}", shed.text());
    assert_eq!(shed.header("Retry-After"), Some("1"));
    assert_eq!(shed.json()["error"].as_str(), Some("overloaded"));
    // The held request still completes normally.
    let first = read_response(&mut held);
    assert_eq!(first.status, 200, "{}", first.text());
    // And with the slot free again, new work is admitted.
    wait_until(|| server.inflight() == 0);
    let after = post(addr, "/v1/_sleep", "{\"ms\": 0}");
    assert_eq!(after.status, 200, "{}", after.text());
    server.shutdown();
}

#[test]
fn deadline_expiry_is_a_typed_timeout_that_frees_the_slot() {
    let (server, addr, _) = boot(
        "deadline",
        ServeConfig {
            workers: 1,
            max_inflight: 4,
            deadline_ms: 80,
            ..test_config()
        },
    );
    let expired = post(addr, "/v1/_sleep", "{\"ms\": 5000}");
    assert_eq!(expired.status, 408, "{}", expired.text());
    assert_eq!(expired.json()["error"].as_str(), Some("deadline_exceeded"));
    // The slot is freed by expiry, not leaked: quick work still runs.
    wait_until(|| server.inflight() == 0);
    let quick = post(addr, "/v1/_sleep", "{\"ms\": 0}");
    assert_eq!(quick.status, 200, "{}", quick.text());
    server.shutdown();
}

#[test]
fn drain_finishes_inflight_work_and_refuses_new() {
    let (server, addr, _) = boot(
        "drain",
        ServeConfig {
            workers: 2,
            ..test_config()
        },
    );
    let mut held = start_post(addr, "/v1/_sleep", "{\"ms\": 300}");
    wait_until(|| server.inflight() == 1);
    server.begin_drain();
    // New work is refused while draining...
    let refused = post(addr, "/v1/_sleep", "{\"ms\": 0}");
    assert_eq!(refused.status, 503, "{}", refused.text());
    assert_eq!(refused.json()["error"].as_str(), Some("draining"));
    // ...liveness still answers, reporting the drain...
    assert_eq!(
        get(addr, "/healthz").json()["status"].as_str(),
        Some("draining")
    );
    // ...and the in-flight request completes normally.
    let first = read_response(&mut held);
    assert_eq!(first.status, 200, "{}", first.text());
    let stats = server.shutdown();
    assert_eq!(
        stats.workers_joined, stats.workers_spawned,
        "graceful shutdown must join every worker"
    );
}

#[test]
fn bad_requests_partition_into_4xx() {
    let (server, addr, _) = boot(
        "errors",
        ServeConfig {
            max_body_bytes: 256,
            ..test_config()
        },
    );
    // Malformed JSON → 400.
    let malformed = post(addr, "/v1/score", "{not json");
    assert_eq!(malformed.status, 400);
    assert_eq!(malformed.json()["error"].as_str(), Some("bad_request"));
    // Unknown label → 400.
    let unknown_label = post(
        addr,
        "/v1/score",
        "{\"model\": \"toy\", \"triples\": [[\"nope\", \"nope\", \"nope\"]]}",
    );
    assert_eq!(unknown_label.status, 400);
    // Unknown model → 404.
    let unknown_model = post(
        addr,
        "/v1/score",
        &format!(
            "{{\"model\": \"ghost\", \"triples\": [{}]}}",
            known_triple_json()
        ),
    );
    assert_eq!(unknown_model.status, 404);
    assert_eq!(
        unknown_model.json()["error"].as_str(),
        Some("unknown_model")
    );
    // Unknown route → 404.
    assert_eq!(post(addr, "/v1/nope", "{}").status, 404);
    // Oversized body → 413, refused before the body is read.
    let oversized = post(
        addr,
        "/v1/score",
        &format!("{{\"pad\": \"{}\"}}", "x".repeat(1024)),
    );
    assert_eq!(oversized.status, 413);
    assert_eq!(
        oversized.json()["error"].as_str(),
        Some("payload_too_large")
    );
    server.shutdown();
}

/// Polls `cond` for up to two seconds.
fn wait_until(cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(2);
    while !cond() {
        assert!(Instant::now() < deadline, "condition not reached in 2s");
        std::thread::sleep(Duration::from_millis(5));
    }
}
