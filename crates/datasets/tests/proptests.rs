//! Property-based tests of the dataset substrate.

use kgfd_datasets::{fit_profile, generate, inject_noise, DatasetProfile, Zipf};
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = DatasetProfile> {
    (
        20usize..80,  // entities
        1usize..6,    // relations
        50usize..400, // train triples
        0.0f64..1.4,  // entity skew
        0.0f64..1.0,  // relation skew
        1usize..10,   // communities
        0.0f64..1.0,  // intra community
        0.05f64..1.0, // relation spread
        0u64..1000,   // seed
    )
        .prop_map(
            |(entities, relations, train, es, rs, communities, intra, spread, seed)| {
                DatasetProfile {
                    name: "prop".into(),
                    entities,
                    relations,
                    train_triples: train,
                    valid_triples: train / 20 + 1,
                    test_triples: train / 20 + 1,
                    entity_skew: es,
                    relation_skew: rs,
                    communities,
                    intra_community: intra,
                    relation_spread: spread,
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_datasets_satisfy_split_invariants(profile in arb_profile()) {
        // Dataset::new re-checks disjointness and coverage; generate() must
        // never produce a violating split for any profile.
        let data = generate(&profile).unwrap();
        prop_assert_eq!(data.train.num_entities(), profile.entities);
        prop_assert_eq!(data.train.num_relations(), profile.relations);
        for t in data.valid.iter().chain(&data.test) {
            prop_assert!(!data.train.contains(t));
        }
        prop_assert!(data.train.triples().iter().all(|t| !t.is_loop()));
    }

    #[test]
    fn generation_is_deterministic_for_any_profile(profile in arb_profile()) {
        let a = generate(&profile).unwrap();
        let b = generate(&profile).unwrap();
        prop_assert_eq!(a.train.triples(), b.train.triples());
        prop_assert_eq!(a.valid, b.valid);
    }

    #[test]
    fn zipf_pmf_is_a_distribution(n in 1usize..300, s in 0.0f64..2.5) {
        let z = Zipf::new(n, s);
        let total: f64 = (0..n).map(|i| z.pmf(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        // Monotone non-increasing in rank.
        for i in 1..n {
            prop_assert!(z.pmf(i - 1) >= z.pmf(i) - 1e-12);
        }
    }

    #[test]
    fn noise_injection_preserves_shape(profile in arb_profile(), rate in 0.0f64..1.0, seed in 0u64..100) {
        let data = generate(&profile).unwrap();
        let noisy = inject_noise(&data.train, rate, seed).unwrap();
        prop_assert_eq!(noisy.num_entities(), data.train.num_entities());
        prop_assert_eq!(noisy.num_relations(), data.train.num_relations());
        // Replacement never grows the graph; it can shrink it when
        // corruptions collide (dedup), especially on near-saturated tiny
        // graphs, so only the upper bound and non-emptiness are invariant.
        prop_assert!(noisy.len() <= data.train.len());
        prop_assert!(!noisy.is_empty());
    }

    #[test]
    fn fitted_profiles_are_valid_generator_inputs(profile in arb_profile()) {
        let data = generate(&profile).unwrap();
        if data.train.is_empty() {
            return Ok(());
        }
        let fitted = fit_profile("refit", &data.train, 1);
        prop_assert!(fitted.entity_skew.is_finite());
        prop_assert!((0.0..=1.5).contains(&fitted.entity_skew));
        prop_assert!(fitted.communities >= 1);
        prop_assert!((0.05..=0.9).contains(&fitted.intra_community));
        // The fitted profile must itself generate successfully.
        let regen = generate(&fitted).unwrap();
        prop_assert_eq!(regen.train.num_entities(), data.train.num_entities());
    }
}
