//! Declarative description of a synthetic dataset's structural shape.

use serde::{Deserialize, Serialize};

/// The knobs of the synthetic generator. Together they determine the
/// structural properties that drive every result in the paper: size
/// (entities/relations/triples), popularity skew (Zipf exponents), and
/// density (community structure → clustering coefficient).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetProfile {
    /// Dataset name, e.g. `"fb15k237-like"`.
    pub name: String,
    /// Number of entities `N`.
    pub entities: usize,
    /// Number of relation types `K`.
    pub relations: usize,
    /// Target training-triple count.
    pub train_triples: usize,
    /// Target validation-triple count.
    pub valid_triples: usize,
    /// Target test-triple count.
    pub test_triples: usize,
    /// Zipf exponent of entity popularity (0 = uniform, ~1 = web-like skew).
    pub entity_skew: f64,
    /// Zipf exponent of relation popularity.
    pub relation_skew: f64,
    /// Number of entity communities. Smaller communities + high
    /// `intra_community` → more triangles → higher clustering coefficient.
    pub communities: usize,
    /// Probability that a triple's object is drawn from the subject's
    /// community rather than globally.
    pub intra_community: f64,
    /// Fraction of communities each relation is "about" (relation locality).
    /// Lower values concentrate each relation on fewer communities, making
    /// the per-relation subject/object pools distinctive.
    pub relation_spread: f64,
    /// RNG seed; the generator is fully deterministic given the profile.
    pub seed: u64,
}

impl DatasetProfile {
    /// Scales all size fields by `factor` (≥ entities ≥ 2, relations ≥ 1,
    /// splits ≥ 1), keeping structural knobs unchanged. Used to shrink
    /// experiments for CI and benches without changing the dataset's shape.
    pub fn scaled(&self, factor: f64) -> DatasetProfile {
        assert!(factor > 0.0, "scale factor must be positive");
        let scale = |v: usize, min: usize| ((v as f64 * factor).round() as usize).max(min);
        DatasetProfile {
            name: self.name.clone(),
            entities: scale(self.entities, 2),
            relations: self.relations, // relation count defines the schema; keep it
            train_triples: scale(self.train_triples, 10),
            valid_triples: scale(self.valid_triples, 1),
            test_triples: scale(self.test_triples, 1),
            ..*self
        }
    }

    /// Average triples per entity implied by the profile — the sparsity
    /// measure the paper quotes (§4.2.1).
    pub fn implied_density(&self) -> f64 {
        2.0 * self.train_triples as f64 / self.entities as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> DatasetProfile {
        DatasetProfile {
            name: "p".into(),
            entities: 1000,
            relations: 20,
            train_triples: 10_000,
            valid_triples: 500,
            test_triples: 500,
            entity_skew: 0.9,
            relation_skew: 0.6,
            communities: 25,
            intra_community: 0.7,
            relation_spread: 0.3,
            seed: 1,
        }
    }

    #[test]
    fn scaling_preserves_knobs_and_floors_sizes() {
        let p = profile();
        let s = p.scaled(0.1);
        assert_eq!(s.entities, 100);
        assert_eq!(s.train_triples, 1000);
        assert_eq!(s.relations, 20, "schema is not scaled");
        assert_eq!(s.entity_skew, p.entity_skew);
        let tiny = p.scaled(1e-9);
        assert!(tiny.entities >= 2);
        assert!(tiny.train_triples >= 10);
    }

    #[test]
    fn implied_density_matches_formula() {
        let p = profile();
        assert!((p.implied_density() - 20.0).abs() < 1e-12);
    }
}
