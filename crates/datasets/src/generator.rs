//! Synthetic knowledge-graph generator.
//!
//! Benchmark KGs cannot be downloaded in this environment, so we generate
//! graphs that reproduce the structural properties the paper's results are
//! driven by (see DESIGN.md §1): Zipf-skewed entity and relation popularity,
//! community structure (which controls triangle density and hence the
//! clustering coefficient), and relation locality (each relation is "about"
//! a subset of communities, giving distinctive per-relation subject/object
//! pools — the inputs of the side-aware sampling strategies).
//!
//! Generation is fully deterministic given a [`DatasetProfile`].

use crate::{DatasetProfile, Zipf};
use kgfd_kg::{Dataset, KgError, Result, Triple, TripleStore, Vocabulary};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Generates a full train/valid/test [`Dataset`] from a profile.
///
/// Split sizes are targets: the coverage constraint (validation/test may only
/// use entities and relations seen in training, as in CoDEx/LibKGE) can move
/// a handful of triples into training. Exact counts are in the returned
/// dataset's [`Dataset::metadata`].
pub fn generate(profile: &DatasetProfile) -> Result<Dataset> {
    if profile.entities < 2 || profile.relations < 1 {
        return Err(KgError::Invariant(
            "profile needs at least 2 entities and 1 relation".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(profile.seed);

    let communities = assign_communities(profile, &mut rng);
    let relation_communities = assign_relation_communities(profile, &communities, &mut rng);

    let triples = generate_triples(profile, &communities, &relation_communities, &mut rng);
    let (train, valid, test) = split(profile, triples, &mut rng);

    let vocab = Vocabulary::synthetic(profile.entities, profile.relations);
    let store = TripleStore::new(profile.entities, profile.relations, train)?;
    Dataset::new(profile.name.clone(), vocab, store, valid, test)
}

/// Entity → community assignment plus member lists, members ordered by
/// global popularity rank (ascending entity id = descending popularity).
struct Communities {
    members: Vec<Vec<u32>>,
}

fn assign_communities(profile: &DatasetProfile, rng: &mut StdRng) -> Communities {
    let c = profile.communities.clamp(1, profile.entities);
    let mut members = vec![Vec::new(); c];
    for e in 0..profile.entities as u32 {
        members[rng.random_range(0..c)].push(e);
    }
    // No community may be empty (sampling needs a member to pick); steal from
    // the largest when needed.
    for i in 0..c {
        if members[i].is_empty() {
            let largest = (0..c)
                .max_by_key(|&j| members[j].len())
                .expect("at least one community");
            let e = members[largest].pop().expect("largest community nonempty");
            members[i].push(e);
        }
    }
    Communities { members }
}

fn assign_relation_communities(
    profile: &DatasetProfile,
    communities: &Communities,
    rng: &mut StdRng,
) -> Vec<Vec<usize>> {
    let c = communities.members.len();
    let per_relation = ((c as f64 * profile.relation_spread).ceil() as usize).clamp(1, c);
    let mut all: Vec<usize> = (0..c).collect();
    (0..profile.relations)
        .map(|_| {
            all.shuffle(rng);
            let mut chosen = all[..per_relation].to_vec();
            chosen.sort_unstable();
            chosen
        })
        .collect()
}

fn generate_triples(
    profile: &DatasetProfile,
    communities: &Communities,
    relation_communities: &[Vec<usize>],
    rng: &mut StdRng,
) -> Vec<Triple> {
    let target = profile.train_triples + profile.valid_triples + profile.test_triples;
    let entity_zipf = Zipf::new(profile.entities, profile.entity_skew);
    let relation_zipf = Zipf::new(profile.relations, profile.relation_skew);
    let community_zipfs: Vec<Zipf> = communities
        .members
        .iter()
        .map(|m| Zipf::new(m.len(), profile.entity_skew))
        .collect();

    let mut seen = HashSet::with_capacity(target * 2);
    let mut triples = Vec::with_capacity(target);
    // Self-loops and duplicates are rejected, so budget generously.
    let max_attempts = target.saturating_mul(40).max(10_000);
    let mut attempts = 0usize;
    while triples.len() < target && attempts < max_attempts {
        attempts += 1;
        let r = relation_zipf.sample(rng) as u32;
        let homes = &relation_communities[r as usize];
        let c = homes[rng.random_range(0..homes.len())];
        let members = &communities.members[c];

        let s = members[community_zipfs[c].sample(rng)];
        let o = if rng.random::<f64>() < profile.intra_community {
            members[community_zipfs[c].sample(rng)]
        } else {
            entity_zipf.sample(rng) as u32
        };
        if s == o {
            continue;
        }
        let t = Triple::new(s, r, o);
        if seen.insert(t) {
            triples.push(t);
        }
    }
    triples
}

fn split(
    profile: &DatasetProfile,
    mut triples: Vec<Triple>,
    rng: &mut StdRng,
) -> (Vec<Triple>, Vec<Triple>, Vec<Triple>) {
    triples.shuffle(rng);
    let total = triples.len();
    // When generation undershoots the target (dense profiles on tiny entity
    // counts), shrink splits proportionally.
    let requested = profile.train_triples + profile.valid_triples + profile.test_triples;
    let ratio = (total as f64 / requested as f64).min(1.0);
    let valid_target = (profile.valid_triples as f64 * ratio).round() as usize;
    let test_target = (profile.test_triples as f64 * ratio).round() as usize;
    let train_target = total.saturating_sub(valid_target + test_target);

    let mut train: Vec<Triple> = Vec::with_capacity(train_target);
    let mut valid = Vec::with_capacity(valid_target);
    let mut test = Vec::with_capacity(test_target);

    let mut seen_entities = vec![false; profile.entities];
    let mut seen_relations = vec![false; profile.relations];
    let cover = |t: &Triple, seen_entities: &mut Vec<bool>, seen_relations: &mut Vec<bool>| {
        seen_entities[t.subject.index()] = true;
        seen_entities[t.object.index()] = true;
        seen_relations[t.relation.index()] = true;
    };

    for t in triples {
        if train.len() < train_target {
            cover(&t, &mut seen_entities, &mut seen_relations);
            train.push(t);
        } else if seen_entities[t.subject.index()]
            && seen_entities[t.object.index()]
            && seen_relations[t.relation.index()]
        {
            if valid.len() < valid_target {
                valid.push(t);
            } else if test.len() < test_target {
                test.push(t);
            } else {
                cover(&t, &mut seen_entities, &mut seen_relations);
                train.push(t);
            }
        } else {
            // Not coverable as held-out: keep it in training.
            cover(&t, &mut seen_entities, &mut seen_relations);
            train.push(t);
        }
    }
    (train, valid, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgfd_graph_stats::GraphSummary;

    fn small_profile() -> DatasetProfile {
        DatasetProfile {
            name: "gen-test".into(),
            entities: 200,
            relations: 8,
            train_triples: 2000,
            valid_triples: 100,
            test_triples: 100,
            entity_skew: 0.9,
            relation_skew: 0.5,
            communities: 10,
            intra_community: 0.7,
            relation_spread: 0.4,
            seed: 42,
        }
    }

    #[test]
    fn generates_close_to_target_sizes() {
        let d = generate(&small_profile()).unwrap();
        let m = d.metadata();
        assert!(m.training >= 1800, "train = {}", m.training);
        assert!(m.validation >= 80, "valid = {}", m.validation);
        assert!(m.test >= 80, "test = {}", m.test);
        assert_eq!(m.entities, 200);
        assert_eq!(m.relations, 8);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&small_profile()).unwrap();
        let b = generate(&small_profile()).unwrap();
        assert_eq!(a.train.triples(), b.train.triples());
        assert_eq!(a.valid, b.valid);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn different_seeds_differ() {
        let mut p2 = small_profile();
        p2.seed = 43;
        let a = generate(&small_profile()).unwrap();
        let b = generate(&p2).unwrap();
        assert_ne!(a.train.triples(), b.train.triples());
    }

    #[test]
    fn no_self_loops() {
        let d = generate(&small_profile()).unwrap();
        assert!(d.train.triples().iter().all(|t| !t.is_loop()));
    }

    #[test]
    fn higher_intra_community_means_more_clustering() {
        let mut dense = small_profile();
        dense.intra_community = 0.95;
        dense.communities = 12;
        let mut sparse = small_profile();
        sparse.intra_community = 0.05;
        sparse.train_triples = 600; // fewer edges → fewer incidental triangles
        let cd = GraphSummary::compute(&generate(&dense).unwrap().train).avg_clustering;
        let cs = GraphSummary::compute(&generate(&sparse).unwrap().train).avg_clustering;
        assert!(
            cd > cs * 1.5,
            "expected clustering to rise with intra-community edges: {cd} vs {cs}"
        );
    }

    #[test]
    fn popularity_is_skewed_toward_low_ids() {
        let d = generate(&small_profile()).unwrap();
        let counts = kgfd_graph_stats::occurrence_degrees(&d.train);
        let head: u64 = counts[..20].iter().sum();
        let tail: u64 = counts[180..].iter().sum();
        assert!(head > tail * 3, "head={head} tail={tail}");
    }

    #[test]
    fn rejects_degenerate_profiles() {
        let mut p = small_profile();
        p.entities = 1;
        assert!(generate(&p).is_err());
    }
}
