//! A tiny deterministic biomedical knowledge graph.
//!
//! Mirrors the paper's motivating scenario (§1): drugs, proteins, and
//! diseases connected by `targets`, `associated_with`, `treats`,
//! `interacts_with`, and `coexpressed_with`. The `treats` facts follow a
//! latent rule (`d treats x` whenever `d targets p` and `p associated_with
//! x`), so even small embedding models can learn structure — and fact
//! discovery has true-but-held-out facts to find.
//!
//! The graph is handcrafted and fully deterministic; use it in doc examples,
//! unit tests, and the quickstart.

use kgfd_kg::{Dataset, Triple, TripleStore, Vocabulary};

const DRUGS: usize = 6;
const PROTEINS: usize = 6;
const DISEASES: usize = 4;

/// Builds the toy biomedical dataset: 16 entities, 5 relations, ~40 triples
/// split so that a handful of rule-derivable `treats` facts are held out.
pub fn toy_biomedical() -> Dataset {
    let mut vocab = Vocabulary::new();
    let drugs: Vec<_> = (0..DRUGS)
        .map(|i| vocab.intern_entity(&format!("drug{i}")))
        .collect();
    let proteins: Vec<_> = (0..PROTEINS)
        .map(|i| vocab.intern_entity(&format!("protein{i}")))
        .collect();
    let diseases: Vec<_> = (0..DISEASES)
        .map(|i| vocab.intern_entity(&format!("disease{i}")))
        .collect();

    let targets = vocab.intern_relation("targets");
    let associated = vocab.intern_relation("associated_with");
    let treats = vocab.intern_relation("treats");
    let interacts = vocab.intern_relation("interacts_with");
    let coexpressed = vocab.intern_relation("coexpressed_with");

    let mut train = Vec::new();
    // Every drug targets its own protein and the next one.
    for i in 0..DRUGS {
        train.push(Triple {
            subject: drugs[i],
            relation: targets,
            object: proteins[i],
        });
        train.push(Triple {
            subject: drugs[i],
            relation: targets,
            object: proteins[(i + 1) % PROTEINS],
        });
    }
    // Each protein is associated with one disease.
    for i in 0..PROTEINS {
        train.push(Triple {
            subject: proteins[i],
            relation: associated,
            object: diseases[i % DISEASES],
        });
    }
    // Drug interaction ring and protein co-expression chords.
    for i in 0..DRUGS {
        train.push(Triple {
            subject: drugs[i],
            relation: interacts,
            object: drugs[(i + 1) % DRUGS],
        });
    }
    for i in 0..PROTEINS {
        train.push(Triple {
            subject: proteins[i],
            relation: coexpressed,
            object: proteins[(i + 2) % PROTEINS],
        });
    }
    // Rule-derivable treats facts: d_i targets p_i and p_{i+1}, which are
    // associated with diseases i%4 and (i+1)%4 — so d_i treats both. The
    // *second* fact of drugs 4 and 5 is held out (valid/test), keeping every
    // drug in the treats subject pool — otherwise the per-relation sampling
    // pools of Algorithm 1 could never reach the held-out facts (the
    // long-tail limitation of §6).
    let mut valid = Vec::new();
    let mut test = Vec::new();
    for i in 0..DRUGS {
        train.push(Triple {
            subject: drugs[i],
            relation: treats,
            object: diseases[i % DISEASES],
        });
        let second = Triple {
            subject: drugs[i],
            relation: treats,
            object: diseases[(i + 1) % DISEASES],
        };
        match i {
            4 => valid.push(second),
            5 => test.push(second),
            _ => train.push(second),
        }
    }

    let num_entities = vocab.num_entities();
    let num_relations = vocab.num_relations();
    let store =
        TripleStore::new(num_entities, num_relations, train).expect("toy triples are well-formed");
    Dataset::new("toy-biomedical", vocab, store, valid, test)
        .expect("toy splits satisfy the coverage invariants")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_has_documented_shape() {
        let d = toy_biomedical();
        assert_eq!(d.train.num_entities(), 16);
        assert_eq!(d.train.num_relations(), 5);
        assert_eq!(d.valid.len(), 1);
        assert_eq!(d.test.len(), 1);
        assert!(d.train.len() >= 30);
    }

    #[test]
    fn toy_is_deterministic() {
        let a = toy_biomedical();
        let b = toy_biomedical();
        assert_eq!(a.train.triples(), b.train.triples());
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn held_out_facts_are_not_in_training() {
        let d = toy_biomedical();
        for t in d.valid.iter().chain(&d.test) {
            assert!(!d.train.contains(t));
        }
    }

    #[test]
    fn labels_resolve() {
        let d = toy_biomedical();
        let treats = d.vocab.relation("treats").unwrap();
        let treats_triples = d.train.triples_of_relation(treats);
        assert_eq!(treats_triples.len(), 10, "two treats facts are held out");
        assert!(d.vocab.entity("drug0").is_some());
        assert!(d.vocab.entity("disease3").is_some());
    }
}
