//! Zipf (power-law) sampling over ranked items.
//!
//! Benchmark knowledge graphs have heavily skewed entity popularity — the
//! few "good" nodes vs. the long tail the paper discusses in §4.2.2 and §6.
//! The synthetic generators reproduce that skew by sampling entities from a
//! Zipf distribution: item of rank `i` (0-based) has weight `1 / (i+1)^s`.

use rand::Rng;

/// Precomputed Zipf CDF over `n` ranked items with exponent `s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler. `n` must be positive; `s >= 0` (0 = uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` if there are no items (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..n` (0 = most popular).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.random();
        // partition_point returns the first index with cdf > u.
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.1);
        let sum: f64 = (0..100).map(|i| z.pmf(i)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for i in 0..4 {
            assert!((z.pmf(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn lower_ranks_are_more_probable() {
        let z = Zipf::new(50, 1.0);
        for i in 1..50 {
            assert!(z.pmf(i - 1) > z.pmf(i));
        }
    }

    #[test]
    fn samples_follow_the_skew() {
        let z = Zipf::new(10, 1.5);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[4]);
        assert!(counts[1] > counts[8]);
        // Empirical mass of rank 0 within 3 points of theoretical.
        let p0 = counts[0] as f64 / 20_000.0;
        assert!((p0 - z.pmf(0)).abs() < 0.03, "p0={p0}, pmf={}", z.pmf(0));
    }

    #[test]
    fn single_item_always_sampled() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }
}
