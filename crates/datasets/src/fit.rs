//! Profile fitting: infer a [`DatasetProfile`] from an existing graph, so a
//! user can generate synthetic stand-ins for a *private* knowledge graph —
//! the same substitution recipe this repository applies to the paper's
//! benchmark datasets (DESIGN.md §1), automated.
//!
//! Sizes are copied exactly; the popularity skews come from log–log
//! rank-frequency regression; community structure is a heuristic calibrated
//! so the regenerated graph lands near the original's clustering
//! coefficient and density (validated by the round-trip test below).

use crate::DatasetProfile;
use kgfd_graph_stats::GraphSummary;
use kgfd_kg::{Side, TripleStore};

/// Fits a generator profile to `store`. `valid`/`test` sizes are set to 5%
/// of the training size each (the CoDEx convention).
pub fn fit_profile(name: &str, store: &TripleStore, seed: u64) -> DatasetProfile {
    let summary = GraphSummary::compute(store);

    // Rank-frequency skew of entity occurrences (both sides).
    let mut entity_counts: Vec<u64> = store
        .global_side_counts(Side::Subject)
        .iter()
        .zip(store.global_side_counts(Side::Object))
        .map(|(&s, o)| s as u64 + o as u64)
        .filter(|&c| c > 0)
        .collect();
    entity_counts.sort_unstable_by(|a, b| b.cmp(a));
    let entity_skew = rank_frequency_slope(&entity_counts).clamp(0.0, 1.5);

    let mut relation_counts: Vec<u64> = store
        .used_relations()
        .iter()
        .map(|&r| store.triples_of_relation(r).len() as u64)
        .collect();
    relation_counts.sort_unstable_by(|a, b| b.cmp(a));
    let relation_skew = rank_frequency_slope(&relation_counts).clamp(0.0, 1.5);

    // Community heuristics: intra-community probability tracks the observed
    // clustering (calibrated on the builtin profiles); community count aims
    // for communities of ~2× the mean simple degree, where the generator's
    // triangle production is effective.
    let intra_community = (summary.avg_clustering * 2.2).clamp(0.05, 0.9);
    let mean_degree = summary.mean_degree.max(1.0);
    let communities = ((summary.num_entities as f64 / (2.0 * mean_degree)).round() as usize)
        .clamp(1, summary.num_entities.max(1));

    DatasetProfile {
        name: name.to_string(),
        entities: summary.num_entities,
        relations: summary.num_relations,
        train_triples: summary.num_triples,
        valid_triples: (summary.num_triples / 20).max(1),
        test_triples: (summary.num_triples / 20).max(1),
        entity_skew,
        relation_skew,
        communities,
        intra_community,
        relation_spread: 0.25,
        seed,
    }
}

/// Least-squares slope of `log(count)` against `−log(rank)` for a
/// descending count series — the Zipf exponent estimate.
fn rank_frequency_slope(descending_counts: &[u64]) -> f64 {
    let points: Vec<(f64, f64)> = descending_counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(rank, &c)| (((rank + 1) as f64).ln(), (c as f64).ln()))
        .collect();
    if points.len() < 2 {
        return 0.0;
    }
    let n = points.len() as f64;
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var = 0.0;
    for (x, y) in &points {
        cov += (x - mx) * (y - my);
        var += (x - mx) * (x - mx);
    }
    if var <= 0.0 {
        return 0.0;
    }
    // count ∝ rank^{−s} → slope is −s.
    -(cov / var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fb15k237_like, generate, mini};

    #[test]
    fn slope_recovers_exact_zipf() {
        // counts = 1000 / rank (s = 1).
        let counts: Vec<u64> = (1..=200u64).map(|r| 1000 / r).collect();
        let s = rank_frequency_slope(&counts);
        assert!((s - 1.0).abs() < 0.15, "estimated {s}");
    }

    #[test]
    fn slope_of_uniform_counts_is_zero() {
        let counts = vec![10u64; 100];
        assert!(rank_frequency_slope(&counts).abs() < 1e-9);
    }

    #[test]
    fn fitted_profile_copies_sizes_exactly() {
        let original = generate(&mini(&fb15k237_like())).unwrap();
        let fitted = fit_profile("refit", &original.train, 9);
        assert_eq!(fitted.entities, original.train.num_entities());
        assert_eq!(fitted.relations, original.train.num_relations());
        assert_eq!(fitted.train_triples, original.train.len());
        assert!(fitted.entity_skew > 0.1, "skewed graph detected as skewed");
    }

    #[test]
    fn roundtrip_preserves_structural_ballpark() {
        // generate → fit → regenerate: the regenerated graph must land in
        // the original's structural ballpark (density exact-ish, clustering
        // within a factor of ~2.5 — it is a heuristic, not an optimizer).
        let original = generate(&mini(&fb15k237_like())).unwrap();
        let fitted = fit_profile("refit", &original.train, 99);
        let regen = generate(&fitted).unwrap();

        let a = GraphSummary::compute(&original.train);
        let b = GraphSummary::compute(&regen.train);
        let density_ratio = b.avg_triples_per_entity / a.avg_triples_per_entity;
        assert!(
            (0.8..1.25).contains(&density_ratio),
            "density ratio {density_ratio}"
        );
        let clustering_ratio = (b.avg_clustering + 1e-6) / (a.avg_clustering + 1e-6);
        assert!(
            (0.4..2.5).contains(&clustering_ratio),
            "clustering {} vs {}",
            b.avg_clustering,
            a.avg_clustering
        );
    }
}
