//! Noise injection: corrupt a fraction of a training graph with false
//! triples. Real KGs contain errors; the paper's §6 notes the discovery
//! pipeline "assumes the KGE model is accurate", which it is not. Injecting
//! controlled noise lets the test suite and the ablation benches measure
//! how gracefully training and discovery degrade.

use kgfd_kg::{EntityId, Result, Triple, TripleStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Returns a store where `noise_rate` of the triples have been *replaced*
/// by random corruptions (one side re-sampled), keeping the triple count
/// constant. Corruptions that collide with existing triples are re-drawn a
/// bounded number of times.
pub fn inject_noise(store: &TripleStore, noise_rate: f64, seed: u64) -> Result<TripleStore> {
    assert!(
        (0.0..=1.0).contains(&noise_rate),
        "noise_rate must be in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let n = store.num_entities() as u32;
    let mut triples: Vec<Triple> = store.triples().to_vec();
    let to_corrupt = (triples.len() as f64 * noise_rate).round() as usize;

    // Corrupt a deterministic random subset of positions.
    let mut positions: Vec<usize> = (0..triples.len()).collect();
    for i in (1..positions.len()).rev() {
        positions.swap(i, rng.random_range(0..=i));
    }
    for &pos in positions.iter().take(to_corrupt) {
        let original = triples[pos];
        for _ in 0..16 {
            let e = EntityId(rng.random_range(0..n));
            let candidate = if rng.random::<bool>() {
                original.with_subject(e)
            } else {
                original.with_object(e)
            };
            if candidate != original && !store.contains(&candidate) {
                triples[pos] = candidate;
                break;
            }
        }
    }
    TripleStore::new(store.num_entities(), store.num_relations(), triples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy_biomedical;

    #[test]
    fn zero_noise_is_identity() {
        let data = toy_biomedical();
        let noisy = inject_noise(&data.train, 0.0, 1).unwrap();
        assert_eq!(noisy.triples(), data.train.triples());
    }

    #[test]
    fn noise_rate_controls_corruption_count() {
        let data = toy_biomedical();
        let noisy = inject_noise(&data.train, 0.5, 1).unwrap();
        let kept = noisy
            .triples()
            .iter()
            .filter(|t| data.train.contains(t))
            .count();
        let corrupted = noisy.len() - kept;
        let expected = (data.train.len() as f64 * 0.5).round() as usize;
        // Dedup of accidental collisions can lower the count slightly.
        assert!(
            corrupted >= expected.saturating_sub(3) && corrupted <= expected,
            "corrupted {corrupted}, expected ≈ {expected}"
        );
    }

    #[test]
    fn injection_is_deterministic() {
        let data = toy_biomedical();
        let a = inject_noise(&data.train, 0.3, 7).unwrap();
        let b = inject_noise(&data.train, 0.3, 7).unwrap();
        assert_eq!(a.triples(), b.triples());
        let c = inject_noise(&data.train, 0.3, 8).unwrap();
        assert_ne!(a.triples(), c.triples());
    }

    #[test]
    fn training_degrades_gracefully_under_noise() {
        // Failure injection: a model trained on a 60%-corrupted graph must
        // rank held-out truths worse than one trained on the clean graph.
        use kgfd_embed::{train, ModelKind, TrainConfig};
        use kgfd_eval::evaluate_ranking;
        let data = toy_biomedical();
        let config = TrainConfig {
            dim: 16,
            epochs: 30,
            seed: 3,
            ..TrainConfig::default()
        };
        let (clean_model, _) = train(ModelKind::ComplEx, &data.train, &config);
        let noisy_store = inject_noise(&data.train, 0.6, 5).unwrap();
        let (noisy_model, _) = train(ModelKind::ComplEx, &noisy_store, &config);

        let known = data.known_triples();
        let eval_set: Vec<_> = data.train.triples().to_vec();
        let clean = evaluate_ranking(clean_model.as_ref(), &eval_set, Some(&known), 2);
        let noisy = evaluate_ranking(noisy_model.as_ref(), &eval_set, Some(&known), 2);
        assert!(
            clean.mrr > noisy.mrr,
            "clean {} must beat noisy {}",
            clean.mrr,
            noisy.mrr
        );
    }
}
