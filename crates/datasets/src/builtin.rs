//! Profiles mirroring the paper's four evaluation datasets (Table 1), scaled
//! to CPU-experiment size, plus further-scaled `mini` variants for tests.
//!
//! Scaling rationale (DESIGN.md §1): entity counts are divided by 10–20 while
//! keeping the *ratios* that drive the paper's findings —
//!
//! * triples-per-entity (sparsity): FB15K-237 ≈ 37, WN18RR ≈ 4.2 (the paper's
//!   "4.5 relations per entity"), YAGO3-10 ≈ 17.5, CoDEx-L ≈ 14;
//! * relation counts are kept at paper scale where feasible (WN18RR's 11 and
//!   YAGO3-10's 37 exactly; FB15K-237's 237 is reduced to 47 to keep
//!   per-relation triple counts realistic at 1/10 entity scale);
//! * density ordering: FB15K-237 dense ≫ CoDEx-L ≈ YAGO3-10 > WN18RR sparse,
//!   controlled via community structure.

use crate::DatasetProfile;

/// FB15K-237-like: small, very dense, many relations, high clustering.
pub fn fb15k237_like() -> DatasetProfile {
    DatasetProfile {
        name: "fb15k237-like".into(),
        entities: 1_454,
        relations: 47,
        train_triples: 27_212,
        valid_triples: 1_754,
        test_triples: 2_043,
        entity_skew: 0.85,
        relation_skew: 0.7,
        communities: 40,
        intra_community: 0.8,
        relation_spread: 0.25,
        seed: 0xFB15,
    }
}

/// WN18RR-like: many entities, few triples, only 11 relations, very sparse
/// (average clustering ≈ 0.059 in the paper's Figure 3).
pub fn wn18rr_like() -> DatasetProfile {
    DatasetProfile {
        name: "wn18rr-like".into(),
        entities: 4_094,
        relations: 11,
        train_triples: 8_684,
        valid_triples: 303,
        test_triples: 313,
        entity_skew: 0.75,
        relation_skew: 0.8,
        communities: 700,
        intra_community: 0.55,
        relation_spread: 0.5,
        seed: 0x3818,
    }
}

/// YAGO3-10-like: the largest graph, 37 relations, moderately dense (every
/// original entity has ≥ 10 relations).
pub fn yago310_like() -> DatasetProfile {
    DatasetProfile {
        name: "yago310-like".into(),
        entities: 6_159,
        relations: 37,
        train_triples: 53_952,
        valid_triples: 250,
        test_triples: 250,
        entity_skew: 1.0,
        relation_skew: 0.75,
        communities: 150,
        intra_community: 0.65,
        relation_spread: 0.2,
        seed: 0x1A60,
    }
}

/// CoDEx-L-like: medium size, 69 relations, 90:5:5 split ratio.
pub fn codexl_like() -> DatasetProfile {
    DatasetProfile {
        name: "codexl-like".into(),
        entities: 3_898,
        relations: 69,
        train_triples: 27_540,
        valid_triples: 1_530,
        test_triples: 1_530,
        entity_skew: 0.9,
        relation_skew: 0.65,
        communities: 90,
        intra_community: 0.6,
        relation_spread: 0.2,
        seed: 0xC0DE,
    }
}

/// All four paper-dataset profiles in the order of the paper's Table 1.
pub fn all_paper_profiles() -> Vec<DatasetProfile> {
    vec![
        fb15k237_like(),
        wn18rr_like(),
        yago310_like(),
        codexl_like(),
    ]
}

/// A profile scaled down by 10× for unit/integration tests and quick benches.
pub fn mini(profile: &DatasetProfile) -> DatasetProfile {
    let mut p = profile.scaled(0.1);
    p.name = format!("{}-mini", p.name);
    // Keep community size roughly constant so clustering survives the scale-down.
    p.communities = (p.communities / 8).max(4);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use kgfd_graph_stats::GraphSummary;

    #[test]
    fn profiles_preserve_paper_density_ratios() {
        // triples-per-entity must track the original datasets.
        let fb = fb15k237_like().implied_density();
        let wn = wn18rr_like().implied_density();
        let yago = yago310_like().implied_density();
        let codex = codexl_like().implied_density();
        assert!((fb - 37.4).abs() < 1.0, "fb density {fb}");
        assert!((wn - 4.24).abs() < 0.5, "wn density {wn}");
        assert!((yago - 17.5).abs() < 1.0, "yago density {yago}");
        assert!((codex - 14.1).abs() < 1.0, "codex density {codex}");
    }

    #[test]
    fn relation_counts_follow_table1_ordering() {
        assert_eq!(wn18rr_like().relations, 11);
        assert_eq!(yago310_like().relations, 37);
        assert_eq!(codexl_like().relations, 69);
        assert!(fb15k237_like().relations > codexl_like().relations / 2);
    }

    #[test]
    fn mini_profiles_generate_quickly_and_keep_shape() {
        let p = mini(&fb15k237_like());
        let d = generate(&p).unwrap();
        assert_eq!(d.train.num_entities(), 145);
        assert!(d.train.len() > 1_000);
    }

    #[test]
    fn clustering_ordering_matches_figure3() {
        // Figure 3: WN18RR is by far the sparsest (avg coefficient 0.059);
        // FB15K-237 is the densest. Verify on the mini variants.
        let fb = GraphSummary::compute(&generate(&mini(&fb15k237_like())).unwrap().train);
        let wn = GraphSummary::compute(&generate(&mini(&wn18rr_like())).unwrap().train);
        assert!(
            fb.avg_clustering > 2.0 * wn.avg_clustering,
            "fb={} wn={}",
            fb.avg_clustering,
            wn.avg_clustering
        );
    }
}
