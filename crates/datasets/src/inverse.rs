//! Inverse-relation test-leakage detection and removal.
//!
//! FB15K and WN18 were superseded by FB15K-237 and WN18RR because test
//! triples `(o, r⁻¹, s)` could be answered by memorizing training triples
//! `(s, r, o)` (paper §4.1.2). This module provides the diagnostic (which
//! relation pairs are near-inverses of each other?) and the fix (drop the
//! rarer relation of each leaking pair) so synthetic datasets can be audited
//! the same way the community audited the originals.

use kgfd_kg::{RelationId, Triple, TripleStore};
use serde::{Deserialize, Serialize};

/// A detected (near-)inverse relation pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InversePair {
    /// The relation whose triples are mirrored.
    pub relation: RelationId,
    /// The relation mirroring it (may equal `relation` for symmetric ones).
    pub inverse: RelationId,
    /// Fraction of `relation`'s triples `(s, r, o)` with `(o, inverse, s)`
    /// present in the graph.
    pub overlap: f64,
}

/// Finds all ordered relation pairs `(r1, r2)` where at least `threshold`
/// of r1's triples are mirrored by r2. `r1 == r2` reports symmetry.
pub fn find_inverse_pairs(store: &TripleStore, threshold: f64) -> Vec<InversePair> {
    let mut pairs = Vec::new();
    for r1 in store.used_relations() {
        let triples = store.triples_of_relation(r1);
        if triples.is_empty() {
            continue;
        }
        for r2 in store.used_relations() {
            let mirrored = triples
                .iter()
                .filter(|t| store.contains(&t.inverted_as(r2)))
                .count();
            let overlap = mirrored as f64 / triples.len() as f64;
            if overlap >= threshold {
                pairs.push(InversePair {
                    relation: r1,
                    inverse: r2,
                    overlap,
                });
            }
        }
    }
    pairs
}

/// Removes leakage: for each asymmetric inverse pair, drops all triples of
/// the relation with fewer triples (keeping the canonical direction), the
/// same de-duplication recipe that produced FB15K-237. Symmetric relations
/// (`relation == inverse`) are left alone — symmetry is semantics, not
/// leakage.
pub fn remove_inverse_relations(store: &TripleStore, pairs: &[InversePair]) -> Vec<Triple> {
    let mut drop = vec![false; store.num_relations()];
    for p in pairs {
        if p.relation == p.inverse {
            continue;
        }
        let n1 = store.triples_of_relation(p.relation).len();
        let n2 = store.triples_of_relation(p.inverse).len();
        // Mutual pairs appear twice ((r1,r2) and (r2,r1)); break count ties by
        // id so both orientations agree on a single victim.
        let victim = match n1.cmp(&n2) {
            std::cmp::Ordering::Less => p.relation,
            std::cmp::Ordering::Greater => p.inverse,
            std::cmp::Ordering::Equal => p.relation.max(p.inverse),
        };
        drop[victim.index()] = true;
    }
    store
        .triples()
        .iter()
        .copied()
        .filter(|t| !drop[t.relation.index()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// r0 = "parent_of", r1 = "child_of" (exact inverse), r2 = "sibling" (symmetric).
    fn leaky_store() -> TripleStore {
        let mut triples = Vec::new();
        for i in 0..5u32 {
            triples.push(Triple::new(i, 0u32, i + 5));
            triples.push(Triple::new(i + 5, 1u32, i));
        }
        triples.push(Triple::new(0u32, 2u32, 1u32));
        triples.push(Triple::new(1u32, 2u32, 0u32));
        TripleStore::new(10, 3, triples).unwrap()
    }

    #[test]
    fn detects_exact_inverse_pairs() {
        let pairs = find_inverse_pairs(&leaky_store(), 0.9);
        assert!(pairs
            .iter()
            .any(|p| p.relation == RelationId(0) && p.inverse == RelationId(1)));
        assert!(pairs
            .iter()
            .any(|p| p.relation == RelationId(1) && p.inverse == RelationId(0)));
    }

    #[test]
    fn detects_symmetric_relations_as_self_inverse() {
        let pairs = find_inverse_pairs(&leaky_store(), 0.9);
        assert!(pairs
            .iter()
            .any(|p| p.relation == RelationId(2) && p.inverse == RelationId(2)));
    }

    #[test]
    fn threshold_filters_weak_overlap() {
        let pairs = find_inverse_pairs(&leaky_store(), 1.01);
        assert!(pairs.is_empty());
    }

    #[test]
    fn removal_drops_one_side_only() {
        let store = leaky_store();
        let pairs = find_inverse_pairs(&store, 0.9);
        let cleaned = remove_inverse_relations(&store, &pairs);
        let has_r0 = cleaned.iter().any(|t| t.relation == RelationId(0));
        let has_r1 = cleaned.iter().any(|t| t.relation == RelationId(1));
        assert!(has_r0 ^ has_r1, "exactly one direction survives");
        // Symmetric relation untouched.
        assert!(cleaned.iter().any(|t| t.relation == RelationId(2)));
    }

    #[test]
    fn cleaned_graph_has_no_asymmetric_leakage() {
        let store = leaky_store();
        let pairs = find_inverse_pairs(&store, 0.9);
        let cleaned = remove_inverse_relations(&store, &pairs);
        let cleaned_store = TripleStore::new(10, 3, cleaned).unwrap();
        let remaining = find_inverse_pairs(&cleaned_store, 0.9);
        assert!(remaining.iter().all(|p| p.relation == p.inverse));
    }
}
