//! # kgfd-datasets — synthetic benchmark knowledge graphs
//!
//! Generators that reproduce the *structural shape* of the paper's four
//! evaluation datasets (FB15K-237, WN18RR, YAGO3-10, CoDEx-L — Table 1)
//! without their raw files: Zipf-skewed popularity, community structure
//! controlling the clustering coefficient, relation locality, and
//! leakage-free train/valid/test splits. See DESIGN.md §1 for why each
//! substitution preserves the behaviour the paper measures.
//!
//! ```
//! use kgfd_datasets::{generate, mini, fb15k237_like};
//!
//! let dataset = generate(&mini(&fb15k237_like())).unwrap();
//! assert_eq!(dataset.train.num_entities(), 145);
//! assert!(dataset.train.len() > 1_000);
//! ```

#![warn(missing_docs)]

mod builtin;
mod fit;
mod generator;
mod inverse;
mod noise;
mod profile;
mod toy;
mod zipf;

pub use builtin::{
    all_paper_profiles, codexl_like, fb15k237_like, mini, wn18rr_like, yago310_like,
};
pub use fit::fit_profile;
pub use generator::generate;
pub use inverse::{find_inverse_pairs, remove_inverse_relations, InversePair};
pub use noise::inject_noise;
pub use profile::DatasetProfile;
pub use toy::toy_biomedical;
pub use zipf::Zipf;
