//! Integration tests for the observability layer: concurrency safety of the
//! registry, JSONL sink schema round-trips, and span-derived durations.

use kgfd_obs::{
    registry, scoped, span, DatasetShape, Event, Field, JsonlSink, Level, Payload, RunManifest,
};
use parking_lot::Mutex;
use std::sync::Arc;

/// Tests that install a process observer must not interleave.
static OBSERVER_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn counters_are_atomic_under_concurrent_writers() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let before = registry().counter("test.atomic.hits").get();
    crossbeam::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|_| {
                let c = registry().counter("test.atomic.hits");
                for _ in 0..PER_THREAD {
                    c.inc();
                }
            });
        }
    })
    .unwrap();
    let after = registry().counter("test.atomic.hits").get();
    assert_eq!(after - before, THREADS as u64 * PER_THREAD);
}

#[test]
fn histograms_are_consistent_under_concurrent_writers() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 5_000;
    let h = registry().histogram("test.atomic.latency");
    let before = h.count();
    crossbeam::thread::scope(|s| {
        for t in 0..THREADS {
            let h = Arc::clone(&h);
            s.spawn(move |_| {
                for i in 0..PER_THREAD {
                    h.record((t * PER_THREAD + i + 1) as f64);
                }
            });
        }
    })
    .unwrap();
    assert_eq!(h.count() - before, (THREADS * PER_THREAD) as u64);
    let expected: f64 = (1..=THREADS * PER_THREAD).map(|v| v as f64).sum();
    assert!((h.sum() - expected).abs() < 1e-6 * expected);
}

#[test]
fn jsonl_sink_lines_round_trip_through_the_event_schema() {
    let _serial = OBSERVER_LOCK.lock();
    let dir = std::env::temp_dir().join(format!("kgfd-obs-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.jsonl");

    {
        let _guard = scoped(Arc::new(JsonlSink::create(&path).unwrap()));
        kgfd_obs::warn("a degraded thing happened");
        kgfd_obs::metric(
            "embed.train.epoch_loss",
            0.125,
            vec![Field::new("epoch", 3u64)],
        );
        let sp = span!("discover.generation", relation = 7u64);
        sp.finish();
        RunManifest {
            command: "discover".to_string(),
            crate_version: "0.1.0".to_string(),
            strategy: "lcwa".to_string(),
            model: "transe".to_string(),
            seed: 42,
            dataset: DatasetShape {
                entities: 14,
                relations: 55,
                triples: 483,
            },
            config: vec![Field::new("top_n", 10u64)],
            wall_clock_s: 1.5,
            recoveries: Vec::new(),
            resumed_from: None,
            trace: None,
            pool: None,
        }
        .emit();
    }

    let text = std::fs::read_to_string(&path).unwrap();
    let events: Vec<Event> = text
        .lines()
        .map(|line| {
            let value: serde_json::Value = serde_json::from_str(line).expect("line parses");
            serde::Deserialize::deserialize(&value).expect("line matches the Event schema")
        })
        .collect();
    assert_eq!(events.len(), 4);

    let run = &events[0].run;
    assert!(!run.is_empty());
    for (i, e) in events.iter().enumerate() {
        assert_eq!(&e.run, run, "all lines share the run id");
        if i > 0 {
            assert!(e.t_us >= events[i - 1].t_us, "timestamps are monotonic");
        }
    }

    match &events[0].payload {
        Payload::Message { level, text } => {
            assert_eq!(*level, Level::Warn);
            assert_eq!(text, "a degraded thing happened");
        }
        other => panic!("expected Message, got {other:?}"),
    }
    match &events[1].payload {
        Payload::Metric {
            name,
            value,
            fields,
        } => {
            assert_eq!(name, "embed.train.epoch_loss");
            assert_eq!(*value, 0.125);
            assert_eq!(fields, &[Field::new("epoch", 3u64)]);
        }
        other => panic!("expected Metric, got {other:?}"),
    }
    match &events[2].payload {
        Payload::SpanEnd { name, fields, .. } => {
            assert_eq!(name, "discover.generation");
            assert_eq!(fields, &[Field::new("relation", 7u64)]);
        }
        other => panic!("expected SpanEnd, got {other:?}"),
    }
    match &events[3].payload {
        Payload::Manifest(m) => {
            assert_eq!(m.command, "discover");
            assert_eq!(m.strategy, "lcwa");
            assert_eq!(m.seed, 42);
            assert_eq!(m.dataset.triples, 483);
            assert_eq!(m.config, vec![Field::new("top_n", 10u64)]);
        }
        other => panic!("expected Manifest, got {other:?}"),
    }

    std::fs::remove_file(&path).ok();
}

#[test]
fn failing_sink_writes_do_not_panic_and_surface_a_recovery() {
    // /dev/full accepts the open but fails every write with ENOSPC —
    // exactly the disk-full scenario the sink must survive.
    if !std::path::Path::new("/dev/full").exists() {
        eprintln!("skipping: /dev/full not available on this platform");
        return;
    }
    let _serial = OBSERVER_LOCK.lock();
    // Clear any recoveries left over from other tests in this process.
    let _ = kgfd_obs::drain_recoveries();
    {
        let sink = JsonlSink::create("/dev/full").expect("open /dev/full");
        let _guard = scoped(Arc::new(sink));
        // Each event triggers a flush → ENOSPC. None of these may panic.
        for i in 0..5 {
            kgfd_obs::metric("test.sink.fail", i as f64, vec![]);
        }
    }
    let recoveries = kgfd_obs::drain_recoveries();
    assert_eq!(
        recoveries.len(),
        1,
        "exactly one recovery per failing sink, not one per event: {recoveries:?}"
    );
    assert!(
        recoveries[0].contains("write failed"),
        "recovery names the failure: {recoveries:?}"
    );
}

#[test]
fn fanout_keeps_delivering_past_a_failing_sink() {
    if !std::path::Path::new("/dev/full").exists() {
        eprintln!("skipping: /dev/full not available on this platform");
        return;
    }
    let _serial = OBSERVER_LOCK.lock();
    let _ = kgfd_obs::drain_recoveries();
    let dir = std::env::temp_dir().join(format!("kgfd-obs-fanout-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let good_path = dir.join("good.jsonl");
    {
        let broken = Arc::new(JsonlSink::create("/dev/full").unwrap());
        let good = Arc::new(JsonlSink::create(&good_path).unwrap());
        let _guard = scoped(Arc::new(kgfd_obs::Fanout::new(vec![broken, good])));
        kgfd_obs::warn("must reach the good sink");
        kgfd_obs::metric("test.fanout.value", 1.0, vec![]);
    }
    let text = std::fs::read_to_string(&good_path).unwrap();
    assert_eq!(
        text.lines().count(),
        2,
        "the healthy sink got every event despite its sibling failing"
    );
    assert!(!kgfd_obs::drain_recoveries().is_empty());
    std::fs::remove_file(&good_path).ok();
}

#[test]
fn dropping_a_sink_leaves_no_truncated_final_line() {
    let _serial = OBSERVER_LOCK.lock();
    let dir = std::env::temp_dir().join(format!("kgfd-obs-dropflush-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("dropflush.jsonl");
    {
        let _guard = scoped(Arc::new(JsonlSink::create(&path).unwrap()));
        // A manifest is the largest single line the pipeline writes — the
        // likeliest to straddle a BufWriter boundary if flushing is broken.
        let mut manifest = RunManifest::new("drop-flush-test");
        manifest.config = (0..64)
            .map(|i| Field::new(format!("key_{i}"), format!("value_{i}")))
            .collect();
        manifest.emit();
    }
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(
        text.ends_with('\n'),
        "file must end with a complete newline-terminated record"
    );
    for line in text.lines() {
        let value: serde_json::Value = serde_json::from_str(line).expect("no truncated JSON line");
        assert!(value.get("payload").is_some());
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn spans_feed_duration_histograms() {
    let _serial = OBSERVER_LOCK.lock();
    let _guard = scoped(Arc::new(kgfd_obs::NullObserver));
    let before = registry().histogram("test.span.duration_us").count();
    {
        let sp = span!("test.span");
        std::thread::sleep(std::time::Duration::from_millis(2));
        let took = sp.finish();
        assert!(took >= std::time::Duration::from_millis(2));
    }
    {
        // Dropping without finish() must still record.
        let _sp = span!("test.span");
    }
    let h = registry().histogram("test.span.duration_us");
    assert_eq!(h.count() - before, 2);
    // The slept span's duration (≥2000us) should dominate the histogram max.
    assert!(h.quantile(1.0).unwrap() >= 1_000.0);
}

#[test]
fn scoped_observer_restores_the_previous_observer() {
    let _serial = OBSERVER_LOCK.lock();

    struct CountingObserver(std::sync::atomic::AtomicUsize);
    impl kgfd_obs::Observer for CountingObserver {
        fn event(&self, _event: &Event) {
            self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    let outer = Arc::new(CountingObserver(std::sync::atomic::AtomicUsize::new(0)));
    let _outer_guard = scoped(Arc::clone(&outer) as Arc<dyn kgfd_obs::Observer>);
    kgfd_obs::info("seen by outer");
    {
        let _inner_guard = scoped(Arc::new(kgfd_obs::NullObserver));
        kgfd_obs::info("swallowed by inner");
    }
    kgfd_obs::info("seen by outer again");
    assert_eq!(outer.0.load(std::sync::atomic::Ordering::Relaxed), 2);
}
