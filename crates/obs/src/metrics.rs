//! Global metrics registry: counters, gauges, and log-bucketed histograms.
//!
//! All hot-path operations (`inc`, `set`, `record`) are lock-free atomics;
//! the registry lock is taken only on first use of a metric name and when
//! snapshotting. Histograms bucket values logarithmically (16 sub-buckets
//! per octave → worst-case relative quantile error 2^(1/16) − 1 ≈ 4.4%),
//! covering 2⁻¹⁶ .. 2⁴⁸ — sub-microsecond to multi-day when recording
//! microseconds.

use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Sub-buckets per power of two.
const SUBDIV: usize = 16;
/// Lowest representable octave (2^MIN_OCTAVE).
const MIN_OCTAVE: i32 = -16;
/// Number of octaves covered.
const OCTAVES: usize = 64;
/// Total bucket count.
const BUCKETS: usize = OCTAVES * SUBDIV;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins measurement.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Stores `v`.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Raises the gauge to `v` if `v` exceeds the current value — a
    /// lock-free running maximum (e.g. peak buffer occupancy across
    /// concurrent workers). Non-finite `v` is ignored.
    pub fn set_max(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let _ = self
            .bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                if v > f64::from_bits(bits) {
                    Some(v.to_bits())
                } else {
                    None
                }
            });
    }
}

/// A log-bucketed histogram of non-negative values.
pub struct Histogram {
    counts: Box<[AtomicU64]>,
    total: AtomicU64,
    sum_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        let counts: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            counts: counts.into_boxed_slice(),
            total: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Histogram {
    /// Records one observation. Non-finite and negative values clamp into
    /// the lowest bucket.
    pub fn record(&self, v: f64) {
        let idx = Self::bucket_of(v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        // CAS loop: contention here is rare (records are spread over time).
        let _ = self
            .sum_bits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
                Some((f64::from_bits(bits) + v.max(0.0)).to_bits())
            });
    }

    fn bucket_of(v: f64) -> usize {
        if !v.is_finite() || v <= 0.0 {
            return 0;
        }
        let pos = (v.log2() - MIN_OCTAVE as f64) * SUBDIV as f64;
        pos.floor().clamp(0.0, (BUCKETS - 1) as f64) as usize
    }

    /// Geometric midpoint of bucket `idx` — the value reported for
    /// quantiles landing in it.
    fn bucket_value(idx: usize) -> f64 {
        let exponent = MIN_OCTAVE as f64 + (idx as f64 + 0.5) / SUBDIV as f64;
        exponent.exp2()
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of recorded observations (negatives clamped to 0).
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) with the bucketing's relative error
    /// (≈4.4%); `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, bucket) in self.counts.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return Some(Self::bucket_value(idx));
            }
        }
        Some(Self::bucket_value(BUCKETS - 1))
    }

    /// Serializable summary of this histogram. An empty histogram reports
    /// `null` for mean and quantiles (matching the zero-epoch NaN-loss
    /// convention) rather than a misleading `0.0`.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        let sum = self.sum();
        HistogramSummary {
            count,
            sum,
            mean: if count == 0 {
                None
            } else {
                Some(sum / count as f64)
            },
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }

    /// Cumulative bucket counts at the upper edge of every *occupied*
    /// bucket, in ascending order — the Prometheus `_bucket{le=".."}`
    /// series. Empty buckets are skipped (the cumulative value at any
    /// omitted edge is recoverable from the previous entry), keeping the
    /// exposition proportional to the data rather than the 1024-slot
    /// backing array.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut cumulative = 0u64;
        for (idx, bucket) in self.counts.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 {
                cumulative += n;
                out.push((Self::bucket_upper(idx), cumulative));
            }
        }
        out
    }

    /// Upper edge of bucket `idx`.
    fn bucket_upper(idx: usize) -> f64 {
        let exponent = MIN_OCTAVE as f64 + (idx as f64 + 1.0) / SUBDIV as f64;
        exponent.exp2()
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistogramSummary {
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Arithmetic mean; `null` when no observations were recorded.
    pub mean: Option<f64>,
    /// Median (log-bucket resolution); `null` when empty.
    pub p50: Option<f64>,
    /// 95th percentile; `null` when empty.
    pub p95: Option<f64>,
    /// 99th percentile; `null` when empty.
    pub p99: Option<f64>,
}

/// The process-wide metrics registry.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<HashMap<String, Arc<Counter>>>,
    gauges: RwLock<HashMap<String, Arc<Gauge>>>,
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(self.counters.write().entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().get(name) {
            return Arc::clone(g);
        }
        Arc::clone(self.gauges.write().entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(self.histograms.write().entry(name.to_string()).or_default())
    }

    /// Serializable snapshot of every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
        }
    }

    /// Drops every registered metric (test isolation).
    pub fn reset(&self) {
        self.counters.write().clear();
        self.gauges.write().clear();
        self.histograms.write().clear();
    }
}

/// Snapshot of the whole registry, serializable for sinks and reports.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::default)
}

/// Shorthand for `registry().counter(name)`.
pub fn counter(name: &str) -> Arc<Counter> {
    registry().counter(name)
}

/// Shorthand for `registry().gauge(name)`.
pub fn gauge(name: &str) -> Arc<Gauge> {
    registry().gauge(name)
}

/// Shorthand for `registry().histogram(name)`.
pub fn histogram(name: &str) -> Arc<Histogram> {
    registry().histogram(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count_and_gauges_hold_last() {
        let r = Registry::default();
        let c = r.counter("x");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("x").get(), 5);
        let g = r.gauge("y");
        g.set(1.5);
        g.set(-2.0);
        assert_eq!(r.gauge("y").get(), -2.0);
    }

    #[test]
    fn gauge_set_max_is_a_running_maximum() {
        let g = Gauge::default();
        g.set_max(3.0);
        g.set_max(1.0);
        assert_eq!(g.get(), 3.0);
        g.set_max(7.5);
        assert_eq!(g.get(), 7.5);
        g.set_max(f64::NAN);
        g.set_max(f64::INFINITY);
        assert_eq!(g.get(), 7.5, "non-finite values must be ignored");
    }

    #[test]
    fn histogram_quantiles_hit_known_values() {
        let h = Histogram::default();
        for v in 1..=1000 {
            h.record(v as f64);
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!((p50 - 500.0).abs() / 500.0 < 0.05, "p50 = {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((p99 - 990.0).abs() / 990.0 < 0.05, "p99 = {p99}");
        assert_eq!(h.count(), 1000);
        assert!((h.sum() - 500_500.0).abs() < 1e-6);
    }

    #[test]
    fn extreme_and_invalid_values_clamp() {
        let h = Histogram::default();
        h.record(0.0);
        h.record(-3.0);
        h.record(f64::NAN);
        h.record(1e300);
        assert_eq!(h.count(), 4);
        assert!(h.quantile(0.0).unwrap() > 0.0);
    }

    #[test]
    fn empty_histogram_summary_reports_null_not_zero() {
        let h = Histogram::default();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, None);
        assert_eq!(s.p50, None);
        assert_eq!(s.p95, None);
        assert_eq!(s.p99, None);
        // And the nulls survive serialization — no spurious 0.0 in sinks.
        let json = serde_json::to_string(&s).expect("serializes");
        assert!(json.contains("\"p50\":null"), "got {json}");
        assert!(!json.contains("\"p50\":0"), "got {json}");
    }

    #[test]
    fn snapshot_is_sorted_by_name_regardless_of_insertion_order() {
        let r = Registry::default();
        for name in ["zeta", "alpha", "mid", "beta"] {
            r.counter(name).inc();
            r.gauge(name).set(1.0);
            r.histogram(name).record(1.0);
        }
        let snap = r.snapshot();
        let counter_names: Vec<&String> = snap.counters.keys().collect();
        let mut sorted = counter_names.clone();
        sorted.sort();
        assert_eq!(counter_names, sorted);
        let gauge_names: Vec<&String> = snap.gauges.keys().collect();
        let mut sorted = gauge_names.clone();
        sorted.sort();
        assert_eq!(gauge_names, sorted);
        let histogram_names: Vec<&String> = snap.histograms.keys().collect();
        let mut sorted = histogram_names.clone();
        sorted.sort();
        assert_eq!(histogram_names, sorted);
        // Byte-determinism: two snapshots of the same state serialize
        // identically.
        let a = serde_json::to_string(&snap).expect("serializes");
        let b = serde_json::to_string(&r.snapshot()).expect("serializes");
        assert_eq!(a, b);
    }

    #[test]
    fn cumulative_buckets_are_ascending_and_end_at_count() {
        let h = Histogram::default();
        for v in [1.0, 1.0, 10.0, 100.0, 1000.0] {
            h.record(v);
        }
        let buckets = h.cumulative_buckets();
        assert!(!buckets.is_empty());
        for pair in buckets.windows(2) {
            assert!(pair[0].0 < pair[1].0, "le edges ascend");
            assert!(pair[0].1 < pair[1].1, "cumulative counts ascend");
        }
        assert_eq!(buckets.last().unwrap().1, h.count());
        // The first edge must sit at or above the smallest observation's
        // bucket: 1.0 lands in a bucket whose upper edge exceeds 1.0.
        assert!(buckets[0].0 > 1.0);
    }
}
