//! Hierarchical trace collection: span identities, the per-thread span
//! stack, and the lock-free [`TraceCollector`].
//!
//! Every [`crate::Span`] carries a process-unique [`SpanId`] and a
//! `parent` id taken from the top of a **thread-local span stack** at
//! creation time, so spans opened while another span is live nest under it
//! with no explicit plumbing. Work dispatched to other threads (crossbeam
//! training workers, `BatchRanker` query-group workers) re-establishes the
//! link with an explicit handoff: the dispatching side captures a
//! [`SpanHandle`] (`Copy + Send`) and the worker either enters it
//! ([`SpanHandle::enter`], making it the parent of everything the worker
//! opens) or creates a direct child ([`crate::Span::child_for_thread`]).
//!
//! Finished spans are recorded into the process-wide [`TraceCollector`] —
//! a Treiber stack of heap nodes pushed with a single CAS, so recording
//! never takes a lock and never blocks another thread. Collection is **off
//! by default**: until [`enable`] is called, a finished span costs one
//! atomic load beyond what kgfd-obs v1 paid.

use crate::event::Field;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};

/// Process-unique identifier of one span. Ids are never reused; `0` is
/// reserved (no valid span has it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// A `Copy + Send` reference to a live span, used to parent work that runs
/// on another thread. See [`SpanHandle::enter`] and
/// [`crate::Span::child_for_thread`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanHandle {
    pub(crate) id: SpanId,
}

impl SpanHandle {
    /// The referenced span's id.
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Makes this span the current parent on the calling thread until the
    /// returned guard drops. Every span the thread opens while the guard is
    /// live nests under the handle's span — the cross-thread equivalent of
    /// simple lexical nesting.
    pub fn enter(&self) -> EnteredSpan {
        push_current(self.id);
        EnteredSpan { id: self.id }
    }
}

/// Guard of [`SpanHandle::enter`]; pops the entered span from the calling
/// thread's span stack on drop.
pub struct EnteredSpan {
    id: SpanId,
}

impl Drop for EnteredSpan {
    fn drop(&mut self) {
        pop_current(self.id);
    }
}

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh process-unique span id.
pub(crate) fn next_span_id() -> SpanId {
    SpanId(NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed))
}

// ---------------------------------------------------------------------------
// Per-thread span stack
// ---------------------------------------------------------------------------

thread_local! {
    static SPAN_STACK: RefCell<Vec<SpanId>> = const { RefCell::new(Vec::new()) };
}

/// The innermost live span on this thread, if any — the parent a new span
/// will attach to.
pub fn current_span() -> Option<SpanId> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

/// A dispatchable [`SpanHandle`] for the innermost live span — the thing to
/// capture right before spawning workers when the dispatching code does not
/// own the span itself (e.g. library code running under a caller's span).
pub fn current_span_handle() -> Option<SpanHandle> {
    current_span().map(|id| SpanHandle { id })
}

pub(crate) fn push_current(id: SpanId) {
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
}

/// Removes `id` from this thread's stack. Spans usually finish in LIFO
/// order, but a span held as a struct field can outlive later siblings —
/// search from the top so out-of-order finishes never corrupt the stack.
pub(crate) fn pop_current(id: SpanId) {
    SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        if let Some(pos) = stack.iter().rposition(|&x| x == id) {
            stack.remove(pos);
        }
    });
}

// ---------------------------------------------------------------------------
// Thread ids
// ---------------------------------------------------------------------------

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

/// A small dense id for the calling thread, assigned on first use (the
/// process's first tracing thread is 1). Used as the `tid` of Chrome trace
/// events; `std::thread::ThreadId` has no stable integer form.
pub fn thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

// ---------------------------------------------------------------------------
// The collector
// ---------------------------------------------------------------------------

/// One finished span as recorded by the [`TraceCollector`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SpanRecord {
    /// The span's process-unique id.
    pub id: u64,
    /// Id of the enclosing span (`None` for roots).
    pub parent: Option<u64>,
    /// Span name (`<crate>.<phase>`).
    pub name: String,
    /// Structured context fields.
    pub fields: Vec<Field>,
    /// Start, microseconds since the observability clock started.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub duration_us: u64,
    /// Dense id of the thread the span ran on (see [`thread_id`]).
    pub thread: u64,
}

struct Node {
    record: SpanRecord,
    next: *mut Node,
}

/// Lock-free sink of finished spans: a Treiber stack pushed with one CAS
/// per record, drained wholesale by swapping the head. Hot paths only ever
/// push; building trees, exports, and summaries happens on drained
/// snapshots.
pub struct TraceCollector {
    head: AtomicPtr<Node>,
    len: AtomicUsize,
    enabled: AtomicBool,
    /// Serializes the cold readers ([`TraceCollector::drain`] frees nodes,
    /// [`TraceCollector::snapshot`] walks them) against each other. `record`
    /// never takes it.
    reader_lock: parking_lot::Mutex<()>,
}

impl Default for TraceCollector {
    fn default() -> Self {
        TraceCollector {
            head: AtomicPtr::new(std::ptr::null_mut()),
            len: AtomicUsize::new(0),
            enabled: AtomicBool::new(false),
            reader_lock: parking_lot::Mutex::new(()),
        }
    }
}

impl TraceCollector {
    /// Whether finished spans are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Starts (or stops) recording finished spans.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// `true` when no spans have been recorded (or all were drained).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes one finished span. Lock-free; safe from any thread.
    pub fn record(&self, record: SpanRecord) {
        if !self.is_enabled() {
            return;
        }
        let node = Box::into_raw(Box::new(Node {
            record,
            next: std::ptr::null_mut(),
        }));
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` came from Box::into_raw above and is not yet
            // shared; writing its `next` field is exclusive access.
            unsafe { (*node).next = head };
            match self
                .head
                .compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => head = actual,
            }
        }
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes every record collected so far, oldest first (ids ascend with
    /// creation order, so the result is sorted by id for determinism even
    /// when threads interleaved their pushes).
    pub fn drain(&self) -> Vec<SpanRecord> {
        let _readers = self.reader_lock.lock();
        let mut head = self.head.swap(std::ptr::null_mut(), Ordering::Acquire);
        let mut records = Vec::new();
        while !head.is_null() {
            // SAFETY: the swap above made this list exclusively ours; each
            // node was created by Box::into_raw in `record`.
            let node = unsafe { Box::from_raw(head) };
            head = node.next;
            records.push(node.record);
        }
        self.len.fetch_sub(records.len(), Ordering::Relaxed);
        records.sort_by_key(|r| r.id);
        records
    }

    /// A copy of every record collected so far without draining, oldest
    /// first. Used by the live `/trace` endpoint, which must not steal the
    /// records from the end-of-run export.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let _readers = self.reader_lock.lock();
        let mut records = Vec::new();
        let mut head = self.head.load(Ordering::Acquire);
        while !head.is_null() {
            // SAFETY: nodes are only freed by `drain`, which holds
            // `reader_lock` for the whole swap-and-free — so every node
            // reachable from the head loaded above stays live until this
            // walk ends. Concurrent `record` calls only push *in front* of
            // that head and are simply not visited.
            let node = unsafe { &*head };
            records.push(node.record.clone());
            head = node.next;
        }
        records.reverse();
        records
    }
}

impl Drop for TraceCollector {
    fn drop(&mut self) {
        // Reclaim whatever was never drained. `&mut self` proves no other
        // thread holds the list.
        let mut head = *self.head.get_mut();
        while !head.is_null() {
            let node = unsafe { Box::from_raw(head) };
            head = node.next;
        }
    }
}

// SAFETY: all shared state is atomics; nodes are transferred between
// threads only through Release/Acquire pairs on `head`.
unsafe impl Send for TraceCollector {}
unsafe impl Sync for TraceCollector {}

static COLLECTOR: std::sync::OnceLock<TraceCollector> = std::sync::OnceLock::new();

/// The process-wide trace collector (disabled until [`enable`]).
pub fn collector() -> &'static TraceCollector {
    COLLECTOR.get_or_init(TraceCollector::default)
}

/// Turns span collection on process-wide (`--trace-out` / `--flame-out` /
/// `--serve-metrics` do this before the run starts).
pub fn enable() {
    collector().set_enabled(true);
}

/// Turns span collection off again (primarily for tests and benches that
/// measure the disabled path).
pub fn disable() {
    collector().set_enabled(false);
}

/// Records a synthetic span that was measured by hand rather than scoped —
/// used for aggregates like "total negative-sampling time inside this
/// shard", where wrapping every individual draw in a [`crate::Span`] would
/// cost more than the work being measured.
pub fn record_manual(name: &'static str, parent: Option<SpanId>, start_us: u64, duration_us: u64) {
    let c = collector();
    if !c.is_enabled() {
        return;
    }
    c.record(SpanRecord {
        id: next_span_id().0,
        parent: parent.map(|p| p.0),
        name: name.to_string(),
        fields: Vec::new(),
        start_us,
        duration_us,
        thread: thread_id(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_push_and_drain_in_id_order() {
        let c = TraceCollector::default();
        c.set_enabled(true);
        for i in [3u64, 1, 2] {
            c.record(SpanRecord {
                id: i,
                parent: None,
                name: format!("span{i}"),
                fields: Vec::new(),
                start_us: 0,
                duration_us: 1,
                thread: 1,
            });
        }
        assert_eq!(c.len(), 3);
        let drained = c.drain();
        assert_eq!(drained.iter().map(|r| r.id).collect::<Vec<_>>(), [1, 2, 3]);
        assert!(c.is_empty());
        assert!(c.drain().is_empty());
    }

    #[test]
    fn disabled_collector_drops_records() {
        let c = TraceCollector::default();
        c.record(SpanRecord {
            id: 1,
            parent: None,
            name: "x".into(),
            fields: Vec::new(),
            start_us: 0,
            duration_us: 1,
            thread: 1,
        });
        assert!(c.is_empty());
    }

    #[test]
    fn snapshot_leaves_records_in_place() {
        let c = TraceCollector::default();
        c.set_enabled(true);
        for i in 1..=4u64 {
            c.record(SpanRecord {
                id: i,
                parent: None,
                name: "s".into(),
                fields: Vec::new(),
                start_us: i,
                duration_us: 1,
                thread: 1,
            });
        }
        let snap = c.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(snap.first().unwrap().id, 1, "oldest first");
        assert_eq!(c.len(), 4, "snapshot must not drain");
        assert_eq!(c.drain().len(), 4);
    }

    #[test]
    fn concurrent_pushes_lose_nothing() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 2_000;
        let c = TraceCollector::default();
        c.set_enabled(true);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let c = &c;
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        c.record(SpanRecord {
                            id: (t * PER_THREAD + i) as u64,
                            parent: None,
                            name: "concurrent".into(),
                            fields: Vec::new(),
                            start_us: 0,
                            duration_us: 1,
                            thread: t as u64,
                        });
                    }
                });
            }
        });
        let drained = c.drain();
        assert_eq!(drained.len(), THREADS * PER_THREAD);
        // Every id exactly once.
        let mut ids: Vec<u64> = drained.iter().map(|r| r.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), THREADS * PER_THREAD);
    }

    #[test]
    fn stack_tracks_nesting_and_out_of_order_pops() {
        assert_eq!(current_span(), None);
        push_current(SpanId(10));
        push_current(SpanId(11));
        assert_eq!(current_span(), Some(SpanId(11)));
        // Out-of-order: removing the outer span keeps the inner current.
        pop_current(SpanId(10));
        assert_eq!(current_span(), Some(SpanId(11)));
        pop_current(SpanId(11));
        assert_eq!(current_span(), None);
    }

    #[test]
    fn entered_handle_parents_the_worker_thread() {
        let handle = SpanHandle { id: SpanId(77) };
        std::thread::scope(|s| {
            s.spawn(move || {
                assert_eq!(current_span(), None);
                {
                    let _g = handle.enter();
                    assert_eq!(current_span(), Some(SpanId(77)));
                }
                assert_eq!(current_span(), None);
            });
        });
    }
}
