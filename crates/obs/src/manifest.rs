//! The closing record of a run: what ran, on what, and how long it took.

use crate::event::{Field, Payload};

/// Shape of the dataset a run operated on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct DatasetShape {
    /// Number of entities.
    pub entities: u64,
    /// Number of relations.
    pub relations: u64,
    /// Number of (training) triples.
    pub triples: u64,
}

/// Utilization of the worker pool during one phase of a run: the fraction
/// of `pool_size × phase wall-clock` the workers spent busy (0.0–1.0).
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct PoolPhase {
    /// Phase label the jobs ran under (e.g. `train`, `discover`).
    pub phase: String,
    /// Busy fraction for that phase.
    pub utilization: f64,
}

/// Activity of the process-wide worker pool over the run. Populated at
/// [`RunManifest::emit`] time from this registry's `pool.*` metrics (the
/// pool crate publishes them by name; obs never depends on the pool).
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct PoolSummary {
    /// Jobs executed on pool workers (inline fallbacks excluded).
    pub jobs: u64,
    /// Median time a job waited in a worker's queue, in microseconds.
    pub queue_wait_us_p50: Option<f64>,
    /// 95th-percentile queue wait, in microseconds.
    pub queue_wait_us_p95: Option<f64>,
    /// Busy fraction per phase, in phase-name order.
    pub utilization: Vec<PoolPhase>,
}

/// Reads the pool's activity out of the metrics registry; `None` when no
/// pool job ran (e.g. a single-threaded run).
fn pool_summary() -> Option<PoolSummary> {
    let jobs = crate::counter("pool.jobs").get();
    if jobs == 0 {
        return None;
    }
    let wait = crate::histogram("pool.queue_wait_us");
    let utilization = crate::registry()
        .snapshot()
        .gauges
        .into_iter()
        .filter_map(|(name, value)| {
            let phase = name.strip_prefix("pool.utilization.")?;
            Some(PoolPhase {
                phase: phase.to_string(),
                utilization: value,
            })
        })
        .collect();
    Some(PoolSummary {
        jobs,
        queue_wait_us_p50: wait.quantile(0.5),
        queue_wait_us_p95: wait.quantile(0.95),
        utilization,
    })
}

/// Machine-readable summary emitted at the end of every run — the last
/// line of a JSONL sink.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct RunManifest {
    /// What ran (e.g. `discover`, `train`, `sweep`).
    pub command: String,
    /// Version of the workspace that produced this run.
    pub crate_version: String,
    /// Sampling strategy name (empty when not applicable).
    pub strategy: String,
    /// Embedding model name (empty when not applicable).
    pub model: String,
    /// Seed the run was keyed on.
    pub seed: u64,
    /// Shape of the input dataset.
    pub dataset: DatasetShape,
    /// Remaining configuration as key/value pairs.
    pub config: Vec<Field>,
    /// Total wall-clock time of the run, in seconds.
    pub wall_clock_s: f64,
    /// Recovery actions observed during the run (e.g. a corrupt zoo cache
    /// entry evicted and retrained, or a damaged training checkpoint
    /// skipped). Populated at [`RunManifest::emit`] time from the
    /// process-wide recovery log ([`crate::record_recovery`]).
    pub recoveries: Vec<String>,
    /// Path of the training checkpoint the run resumed from; `None` when
    /// the run started fresh (no `--resume`, or no usable checkpoint).
    pub resumed_from: Option<String>,
    /// Shape and hot spots of the span tree when trace collection was
    /// enabled for the run; `null` otherwise. Populated at
    /// [`RunManifest::emit`] time from the process collector (without
    /// draining it — exports still see the full tree).
    pub trace: Option<crate::export::TraceSummary>,
    /// Worker-pool activity (job count, queue-wait quantiles, per-phase
    /// utilization); `null` when no pool job ran. Populated at
    /// [`RunManifest::emit`] time from this registry's `pool.*` metrics.
    pub pool: Option<PoolSummary>,
}

impl RunManifest {
    /// A manifest for `command` stamped with the workspace version.
    pub fn new(command: impl Into<String>) -> Self {
        RunManifest {
            command: command.into(),
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
            ..RunManifest::default()
        }
    }

    /// Appends a config field (builder style).
    pub fn with_config(
        mut self,
        key: impl Into<String>,
        value: impl Into<crate::FieldValue>,
    ) -> Self {
        self.config.push(Field::new(key, value));
        self
    }

    /// Emits this manifest as the run's closing event, attaching any
    /// recovery actions recorded since the last emitted manifest and — when
    /// trace collection is enabled — a summary of the span tree so far.
    pub fn emit(&self) {
        let mut manifest = self.clone();
        manifest
            .recoveries
            .extend(crate::observer::drain_recoveries());
        if manifest.trace.is_none() {
            let collector = crate::trace::collector();
            if collector.is_enabled() && !collector.is_empty() {
                let tree = crate::export::TraceTree::build(collector.snapshot());
                manifest.trace = Some(tree.summary());
            }
        }
        if manifest.pool.is_none() {
            manifest.pool = pool_summary();
        }
        crate::observer::emit(Payload::Manifest(Box::new(manifest)));
    }
}
