//! The closing record of a run: what ran, on what, and how long it took.

use crate::event::{Field, Payload};

/// Shape of the dataset a run operated on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct DatasetShape {
    /// Number of entities.
    pub entities: u64,
    /// Number of relations.
    pub relations: u64,
    /// Number of (training) triples.
    pub triples: u64,
}

/// Machine-readable summary emitted at the end of every run — the last
/// line of a JSONL sink.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct RunManifest {
    /// What ran (e.g. `discover`, `train`, `sweep`).
    pub command: String,
    /// Version of the workspace that produced this run.
    pub crate_version: String,
    /// Sampling strategy name (empty when not applicable).
    pub strategy: String,
    /// Embedding model name (empty when not applicable).
    pub model: String,
    /// Seed the run was keyed on.
    pub seed: u64,
    /// Shape of the input dataset.
    pub dataset: DatasetShape,
    /// Remaining configuration as key/value pairs.
    pub config: Vec<Field>,
    /// Total wall-clock time of the run, in seconds.
    pub wall_clock_s: f64,
    /// Recovery actions observed during the run (e.g. a corrupt zoo cache
    /// entry evicted and retrained, or a damaged training checkpoint
    /// skipped). Populated at [`RunManifest::emit`] time from the
    /// process-wide recovery log ([`crate::record_recovery`]).
    pub recoveries: Vec<String>,
    /// Path of the training checkpoint the run resumed from; `None` when
    /// the run started fresh (no `--resume`, or no usable checkpoint).
    pub resumed_from: Option<String>,
    /// Shape and hot spots of the span tree when trace collection was
    /// enabled for the run; `null` otherwise. Populated at
    /// [`RunManifest::emit`] time from the process collector (without
    /// draining it — exports still see the full tree).
    pub trace: Option<crate::export::TraceSummary>,
}

impl RunManifest {
    /// A manifest for `command` stamped with the workspace version.
    pub fn new(command: impl Into<String>) -> Self {
        RunManifest {
            command: command.into(),
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
            ..RunManifest::default()
        }
    }

    /// Appends a config field (builder style).
    pub fn with_config(
        mut self,
        key: impl Into<String>,
        value: impl Into<crate::FieldValue>,
    ) -> Self {
        self.config.push(Field::new(key, value));
        self
    }

    /// Emits this manifest as the run's closing event, attaching any
    /// recovery actions recorded since the last emitted manifest and — when
    /// trace collection is enabled — a summary of the span tree so far.
    pub fn emit(&self) {
        let mut manifest = self.clone();
        manifest
            .recoveries
            .extend(crate::observer::drain_recoveries());
        if manifest.trace.is_none() {
            let collector = crate::trace::collector();
            if collector.is_enabled() && !collector.is_empty() {
                let tree = crate::export::TraceTree::build(collector.snapshot());
                manifest.trace = Some(tree.summary());
            }
        }
        crate::observer::emit(Payload::Manifest(manifest));
    }
}
