//! The structured event schema shared by every observer.
//!
//! One [`Event`] is one line in a JSONL sink: a run id, a monotonic
//! timestamp in microseconds since process start, and a payload. The schema
//! is serde-round-trippable so harness tooling can parse sink files back
//! into typed events.

use crate::manifest::RunManifest;

/// A single observable occurrence in the pipeline.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Event {
    /// Identifier of the run that produced this event (stable for the whole
    /// process).
    pub run: String,
    /// Microseconds since the observability clock started (monotonic).
    pub t_us: u64,
    /// What happened.
    pub payload: Payload,
}

/// The kinds of events the pipeline emits.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Payload {
    /// A span finished; `name` follows the `<crate>.<phase>` convention.
    SpanEnd {
        /// Span name, e.g. `discover.generation`.
        name: String,
        /// Wall-clock duration of the span.
        duration_us: u64,
        /// Process-unique id of the span (see [`crate::SpanId`]).
        span_id: u64,
        /// Id of the enclosing span, `null` for roots.
        parent_id: Option<u64>,
        /// Structured context (e.g. `relation = 3`).
        fields: Vec<Field>,
    },
    /// A point-in-time measurement; `name` follows
    /// `<crate>.<phase>.<name>`, e.g. `embed.train.epoch_loss`.
    Metric {
        /// Metric name.
        name: String,
        /// Measured value.
        value: f64,
        /// Structured context (e.g. `epoch = 7`).
        fields: Vec<Field>,
    },
    /// A human-readable message (progress line, warning, error).
    Message {
        /// Severity of the message.
        level: Level,
        /// Message text.
        text: String,
    },
    /// The closing record of a run. Boxed: a manifest is emitted once per
    /// run and is an order of magnitude larger than every other variant.
    Manifest(Box<RunManifest>),
}

/// Message severity. `Progress` and `Info` may be rate-limited or dropped
/// by observers; `Warn` and `Error` must always be delivered.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum Level {
    /// Transient progress, safe to drop.
    Progress,
    /// Informational, safe to drop.
    Info,
    /// Something degraded but the run continues.
    Warn,
    /// Something failed.
    Error,
}

/// A `key = value` pair attached to spans, metrics, and manifests.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Field {
    /// Field name.
    pub key: String,
    /// Field value.
    pub value: FieldValue,
}

impl Field {
    /// Builds a field from anything convertible to a [`FieldValue`].
    pub fn new(key: impl Into<String>, value: impl Into<FieldValue>) -> Self {
        Field {
            key: key.into(),
            value: value.into(),
        }
    }
}

/// The value of a [`Field`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum FieldValue {
    /// Unsigned integer.
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating point.
    Float(f64),
    /// Text.
    Text(String),
    /// Boolean.
    Bool(bool),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::UInt(v) => write!(f, "{v}"),
            FieldValue::Int(v) => write!(f, "{v}"),
            FieldValue::Float(v) => write!(f, "{v}"),
            FieldValue::Text(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! field_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::UInt(v as u64)
            }
        }
    )*};
}

field_from_uint!(u8, u16, u32, u64, usize);

macro_rules! field_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::Int(v as i64)
            }
        }
    )*};
}

field_from_int!(i8, i16, i32, i64, isize);

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::Float(v)
    }
}

impl From<f32> for FieldValue {
    fn from(v: f32) -> Self {
        FieldValue::Float(v as f64)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Text(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Text(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
