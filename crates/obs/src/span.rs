//! Scoped span timers.
//!
//! A [`Span`] measures the wall-clock time between its creation and its
//! `finish` (or drop). Finishing records the duration into the histogram
//! `<name>.duration_us` and emits a [`Payload::SpanEnd`] event, so one
//! instrumentation point feeds both the quantile registry and the JSONL
//! sink.

use crate::event::{Field, Payload};
use crate::histogram;
use std::time::{Duration, Instant};

/// An in-progress timed section. Ends on [`Span::finish`] or drop.
#[must_use = "a span measures the scope it is bound to; use `let _g = span!(..)`"]
pub struct Span {
    name: &'static str,
    fields: Vec<Field>,
    start: Instant,
    finished: bool,
}

impl Span {
    /// Starts a span with no context fields.
    pub fn start(name: &'static str) -> Self {
        Span::with_fields(name, Vec::new())
    }

    /// Starts a span carrying context fields.
    pub fn with_fields(name: &'static str, fields: Vec<Field>) -> Self {
        Span {
            name,
            fields,
            start: Instant::now(),
            finished: false,
        }
    }

    /// Time elapsed so far without ending the span.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Ends the span, returning its duration (also recorded + emitted).
    pub fn finish(mut self) -> Duration {
        self.end()
    }

    fn end(&mut self) -> Duration {
        self.finished = true;
        let duration = self.start.elapsed();
        let us = duration.as_micros() as u64;
        histogram(&format!("{}.duration_us", self.name)).record(us as f64);
        crate::observer::emit(Payload::SpanEnd {
            name: self.name.to_string(),
            duration_us: us,
            fields: std::mem::take(&mut self.fields),
        });
        duration
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.finished {
            self.end();
        }
    }
}

/// Starts a [`Span`]: `span!("discover.generation")` or
/// `span!("discover.generation", relation = r.0)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::start($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::Span::with_fields(
            $name,
            ::std::vec![$($crate::Field::new(::core::stringify!($key), $value)),+],
        )
    };
}
