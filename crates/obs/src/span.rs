//! Scoped span timers, now hierarchical.
//!
//! A [`Span`] measures the wall-clock time between its creation and its
//! `finish` (or drop). Every span carries a process-unique [`SpanId`] and
//! the id of its parent — the innermost span live on the creating thread
//! (see [`crate::trace`]) — so finished spans form a tree. Finishing
//! records the duration into the histogram `<name>.duration_us`, emits a
//! [`Payload::SpanEnd`] event, and (when trace collection is enabled)
//! pushes a [`crate::SpanRecord`] into the process collector.
//!
//! Hot inner loops use **trace-only** spans ([`span_traced!`] /
//! [`Span::start_traced`]): they still time the scope and feed the trace
//! tree, but skip the histogram and the event stream, so a per-batch or
//! per-shard span cannot flood a JSONL sink.
//!
//! Cross-thread parenting: capture [`Span::handle`] before dispatching,
//! then on the worker either `handle.enter()` (everything the worker opens
//! nests under it) or [`Span::child_for_thread`] (one explicit child).

use crate::event::{Field, Payload};
use crate::histogram;
use crate::trace::{self, SpanHandle, SpanId};
use std::time::{Duration, Instant};

/// An in-progress timed section. Ends on [`Span::finish`] or drop.
#[must_use = "a span measures the scope it is bound to; use `let _g = span!(..)`"]
pub struct Span {
    name: &'static str,
    fields: Vec<Field>,
    start: Instant,
    start_us: u64,
    id: SpanId,
    parent: Option<SpanId>,
    finished: bool,
    /// When false, finishing skips the histogram and the SpanEnd event
    /// (trace-only spans for hot paths).
    emit: bool,
}

impl Span {
    /// Starts a span with no context fields.
    pub fn start(name: &'static str) -> Self {
        Span::new(name, Vec::new(), None, true)
    }

    /// Starts a span carrying context fields.
    pub fn with_fields(name: &'static str, fields: Vec<Field>) -> Self {
        Span::new(name, fields, None, true)
    }

    /// Starts a **trace-only** span: timed and recorded in the trace tree,
    /// but neither histogrammed nor emitted as an event. For per-batch /
    /// per-shard / per-kernel scopes that would otherwise flood sinks.
    pub fn start_traced(name: &'static str) -> Self {
        Span::new(name, Vec::new(), None, false)
    }

    /// [`Span::start_traced`] with context fields.
    pub fn with_fields_traced(name: &'static str, fields: Vec<Field>) -> Self {
        Span::new(name, fields, None, false)
    }

    /// Starts a trace-only span on the *current* thread as an explicit
    /// child of `parent` — the cross-thread handoff for workers that
    /// process one unit of work for a span owned by the dispatching
    /// thread. Nested spans the worker opens while this one is live attach
    /// under it through the ordinary thread-local stack.
    pub fn child_for_thread(parent: SpanHandle, name: &'static str) -> Self {
        Span::new(name, Vec::new(), Some(parent.id()), false)
    }

    /// [`Span::child_for_thread`] with context fields.
    pub fn child_for_thread_with_fields(
        parent: SpanHandle,
        name: &'static str,
        fields: Vec<Field>,
    ) -> Self {
        Span::new(name, fields, Some(parent.id()), false)
    }

    fn new(
        name: &'static str,
        fields: Vec<Field>,
        explicit_parent: Option<SpanId>,
        emit: bool,
    ) -> Self {
        let id = trace::next_span_id();
        let parent = explicit_parent.or_else(trace::current_span);
        trace::push_current(id);
        Span {
            name,
            fields,
            start: Instant::now(),
            start_us: crate::observer::clock_us(),
            id,
            parent,
            finished: false,
            emit,
        }
    }

    /// This span's process-unique id.
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Id of the span this one nests under, if any.
    pub fn parent(&self) -> Option<SpanId> {
        self.parent
    }

    /// A `Copy + Send` handle for parenting work dispatched to other
    /// threads (see [`SpanHandle::enter`] and [`Span::child_for_thread`]).
    pub fn handle(&self) -> SpanHandle {
        SpanHandle { id: self.id }
    }

    /// Time elapsed so far without ending the span.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Ends the span, returning its duration (also recorded + emitted).
    pub fn finish(mut self) -> Duration {
        self.end()
    }

    fn end(&mut self) -> Duration {
        self.finished = true;
        trace::pop_current(self.id);
        let duration = self.start.elapsed();
        let us = duration.as_micros() as u64;
        let collector = trace::collector();
        if collector.is_enabled() {
            collector.record(crate::trace::SpanRecord {
                id: self.id.0,
                parent: self.parent.map(|p| p.0),
                name: self.name.to_string(),
                fields: self.fields.clone(),
                start_us: self.start_us,
                duration_us: us,
                thread: trace::thread_id(),
            });
        }
        if self.emit {
            histogram(&format!("{}.duration_us", self.name)).record(us as f64);
            crate::observer::emit(Payload::SpanEnd {
                name: self.name.to_string(),
                duration_us: us,
                span_id: self.id.0,
                parent_id: self.parent.map(|p| p.0),
                fields: std::mem::take(&mut self.fields),
            });
        }
        duration
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.finished {
            self.end();
        }
    }
}

/// Emits one synthesized [`Payload::SpanEnd`] event (and the matching
/// `<name>.duration_us` histogram sample) for work that was timed
/// externally — typically a phase whose execution interleaves with another
/// phase (e.g. streaming generation/evaluation chunks) but which must still
/// surface as a *single* per-phase event so sinks see one record per phase
/// per unit of work.
///
/// The event gets a fresh span id and parents under the innermost live span
/// of the calling thread. It is **not** recorded into the trace collector:
/// the fine-grained trace-only spans that were actually timed already
/// represent this duration in the trace tree, and recording the aggregate
/// again would double-count it.
pub fn emit_span_aggregate(name: &str, duration: Duration, fields: Vec<Field>) {
    let us = duration.as_micros() as u64;
    histogram(&format!("{name}.duration_us")).record(us as f64);
    crate::observer::emit(Payload::SpanEnd {
        name: name.to_string(),
        duration_us: us,
        span_id: trace::next_span_id().0,
        parent_id: trace::current_span().map(|p| p.0),
        fields,
    });
}

/// Starts a [`Span`]: `span!("discover.generation")` or
/// `span!("discover.generation", relation = r.0)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::start($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::Span::with_fields(
            $name,
            ::std::vec![$($crate::Field::new(::core::stringify!($key), $value)),+],
        )
    };
}

/// Starts a trace-only [`Span`] (no histogram, no event — see
/// [`Span::start_traced`]): `span_traced!("embed.train.batch")` or
/// `span_traced!("embed.train.shard", shard = i)`.
#[macro_export]
macro_rules! span_traced {
    ($name:expr) => {
        $crate::Span::start_traced($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::Span::with_fields_traced(
            $name,
            ::std::vec![$($crate::Field::new(::core::stringify!($key), $value)),+],
        )
    };
}
