//! A dependency-free live metrics endpoint.
//!
//! [`MetricsServer::start`] binds a `std::net::TcpListener` and serves
//! three read-only routes over HTTP/1.1 until [`MetricsServer::shutdown`]
//! (or drop):
//!
//! * `GET /metrics` — the registry in Prometheus text exposition format:
//!   counters and gauges as single samples, histograms as cumulative
//!   `_bucket{le="..."}` series plus `_sum` / `_count`. Metric names have
//!   `.` and other non-identifier characters mapped to `_`
//!   (`embed.train.epoch_loss` → `embed_train_epoch_loss`).
//! * `GET /healthz` — a small JSON document with the run id, uptime in
//!   seconds, and the current pipeline phase (see [`set_phase`]).
//! * `GET /trace` — the top spans by self time from the live trace
//!   collector, as JSON (see [`crate::export::top_spans_json`]).
//!
//! The server is deliberately minimal: one request per connection,
//! `Connection: close`, no keep-alive, no TLS. It exists so `curl` and a
//! Prometheus scraper can watch a long `train`/`grid` run — not to be a
//! general web server.
//!
//! **Shutdown.** `shutdown()` flips a stop flag and then connects to the
//! listener itself to unblock the accept loop, joining the thread before
//! returning — so a run never exits with the port still held.

use crate::metrics::registry;
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

static PHASE: Mutex<Option<String>> = Mutex::new(None);

/// Declares the pipeline phase reported by `GET /healthz` (e.g.
/// `"train"`, `"discover"`, `"grid:cell lcwa_uniform/transe"`).
pub fn set_phase(phase: impl Into<String>) {
    *PHASE.lock() = Some(phase.into());
}

/// The phase last declared with [`set_phase`], if any.
pub fn current_phase() -> Option<String> {
    PHASE.lock().clone()
}

/// A running metrics endpoint. Shut down explicitly with
/// [`MetricsServer::shutdown`]; dropping it does the same.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9464`, or port `0` for an ephemeral
    /// port) and starts serving on a background thread.
    pub fn start(addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("kgfd-metrics".into())
            .spawn(move || accept_loop(listener, stop_flag))?;
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call; an error just means the listener is
        // already gone, which is equally fine.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: TcpListener, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // A slow or stuck client must not wedge the endpoint.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        handle_connection(stream);
    }
}

fn handle_connection(mut stream: TcpStream) {
    // Read until the blank line ending the request headers (clients may
    // deliver the request in several segments), bounded to keep a
    // misbehaving peer from holding the loop.
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 8192 {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
    let request = String::from_utf8_lossy(&buf);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            prometheus_text(),
        ),
        "/healthz" => ("200 OK", "application/json", healthz_json()),
        "/trace" => ("200 OK", "application/json", trace_json()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found: routes are /metrics, /healthz, /trace\n".to_string(),
        ),
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

/// Maps a metric name onto the Prometheus identifier charset
/// (`[a-zA-Z0-9_:]`); everything else — notably the `.` separators of the
/// `<crate>.<phase>.<name>` convention — becomes `_`.
fn prometheus_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders the whole registry as Prometheus text exposition format. Output
/// order is deterministic: counters, then gauges, then histograms, each
/// sorted by name (the registry snapshot is BTreeMap-backed).
pub fn prometheus_text() -> String {
    let reg = registry();
    let snap = reg.snapshot();
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let n = prometheus_name(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {value}\n"));
    }
    for (name, value) in &snap.gauges {
        let n = prometheus_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", format_value(*value)));
    }
    for name in snap.histograms.keys() {
        let n = prometheus_name(name);
        out.push_str(&format!("# TYPE {n} histogram\n"));
        // Buckets come from the live histogram (the snapshot carries only
        // the quantile summary). The histogram may have gained samples
        // since the snapshot; `_count`/`_sum` are re-read alongside the
        // buckets so the series stays self-consistent.
        let h = reg.histogram(name);
        for (le, cumulative) in h.cumulative_buckets() {
            out.push_str(&format!(
                "{n}_bucket{{le=\"{}\"}} {cumulative}\n",
                format_value(le)
            ));
        }
        out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
        out.push_str(&format!("{n}_sum {}\n", format_value(h.sum())));
        out.push_str(&format!("{n}_count {}\n", h.count()));
    }
    out
}

fn healthz_json() -> String {
    let phase = match current_phase() {
        Some(p) => format!("\"{}\"", p.replace('\\', "\\\\").replace('"', "\\\"")),
        None => "null".to_string(),
    };
    format!(
        "{{\"status\":\"ok\",\"run\":\"{}\",\"uptime_s\":{:.3},\"phase\":{phase}}}\n",
        crate::observer::run_id(),
        crate::observer::clock_us() as f64 / 1e6,
    )
}

fn trace_json() -> String {
    let tree = crate::export::TraceTree::build(crate::trace::collector().snapshot());
    crate::export::top_spans_json(&tree, 20)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `PHASE` is process-global; tests that set it take this lock so the
    /// harness's thread-per-test execution cannot interleave them.
    static PHASE_TEST_LOCK: Mutex<()> = Mutex::new(());

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let request = format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n");
        stream.write_all(request.as_bytes()).expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        response
    }

    #[test]
    fn serves_metrics_healthz_trace_and_404() {
        let _phase = PHASE_TEST_LOCK.lock();
        registry().counter("serve.test.requests").add(3);
        registry().gauge("serve.test.loss").set(0.25);
        let h = registry().histogram("serve.test.latency_us");
        h.record(10.0);
        h.record(1000.0);
        set_phase("unit-test");

        let server = MetricsServer::start("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();

        let metrics = get(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "got {metrics}");
        assert!(metrics.contains("# TYPE serve_test_requests counter"));
        assert!(metrics.contains("serve_test_requests 3"));
        assert!(metrics.contains("serve_test_loss 0.25"));
        assert!(metrics.contains("serve_test_latency_us_bucket{le=\"+Inf\"} 2"));
        assert!(metrics.contains("serve_test_latency_us_count 2"));

        let health = get(addr, "/healthz");
        assert!(health.contains("\"status\":\"ok\""));
        assert!(health.contains("\"phase\":\"unit-test\""));
        let body = health.split("\r\n\r\n").nth(1).expect("body");
        let parsed: serde_json::Value = serde_json::from_str(body).expect("healthz is JSON");
        assert!(parsed["uptime_s"].as_f64().is_some());

        let trace = get(addr, "/trace");
        let body = trace.split("\r\n\r\n").nth(1).expect("body");
        let parsed: serde_json::Value = serde_json::from_str(body).expect("trace is JSON");
        assert!(parsed["spans"].as_u64().is_some());

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "got {missing}");

        server.shutdown();
    }

    #[test]
    fn phase_set_before_start_is_visible_on_the_first_request() {
        // Regression: callers must be able to declare the phase *before*
        // binding the endpoint so that the very first scrape — issued the
        // instant the bound address is announced — already reports it.
        // (`kgfd` once called `set_phase` after `MetricsServer::start`,
        // leaving a window where /healthz showed a stale or null phase.)
        let _phase = PHASE_TEST_LOCK.lock();
        set_phase("pre-bind-phase");
        let server = MetricsServer::start("127.0.0.1:0").expect("bind");
        let health = get(server.local_addr(), "/healthz");
        assert!(
            health.contains("\"phase\":\"pre-bind-phase\""),
            "first /healthz after bind must show the pre-bind phase, got: {health}"
        );
        server.shutdown();
    }

    #[test]
    fn shutdown_releases_the_port() {
        let server = MetricsServer::start("127.0.0.1:0").expect("bind");
        let addr = server.local_addr();
        server.shutdown();
        // The accept thread has been joined; rebinding the same port must
        // succeed immediately.
        let rebound = TcpListener::bind(addr).expect("port released");
        drop(rebound);
    }

    #[test]
    fn prometheus_text_is_deterministic() {
        registry().counter("serve.det.a").inc();
        registry().counter("serve.det.b").inc();
        let first = prometheus_text();
        let second = prometheus_text();
        assert_eq!(first, second);
    }
}
