//! `kgfd-obs` — structured tracing, metrics, and run manifests for the
//! fact-discovery pipeline.
//!
//! The crate has four pieces, designed to add near-zero overhead when
//! nothing is listening:
//!
//! * a **metrics registry** ([`registry`]) of lock-free [`Counter`]s,
//!   [`Gauge`]s, and log-bucketed [`Histogram`]s (p50/p95/p99 with ≈4.4%
//!   relative error);
//! * **scoped span timers** ([`Span`], [`span!`]) that feed both the
//!   histogram registry and the event stream;
//! * an **[`Observer`] pipeline** — [`NullObserver`], rate-limited
//!   [`StderrProgress`], and [`JsonlSink`] (one serde event per line,
//!   tagged with a run id and monotonic timestamps) — installed with
//!   [`set_observer`] or temporarily with [`scoped`];
//! * a **[`RunManifest`]** emitted at the end of every run recording the
//!   command, configuration, seed, dataset shape, and wall-clock totals.
//!
//! Metric and span names follow `<crate>.<phase>.<name>`, e.g.
//! `embed.train.epoch_loss` or `discover.generation.duration_us`.
//!
//! ```
//! let _cell = kgfd_obs::scoped(std::sync::Arc::new(kgfd_obs::NullObserver));
//! let span = kgfd_obs::span!("discover.generation", relation = 3u64);
//! // ... work ...
//! let took = span.finish();
//! kgfd_obs::metric("discover.generation.candidates", 128.0, vec![]);
//! ```

#![warn(missing_docs)]

mod event;
mod manifest;
mod metrics;
mod observer;
mod span;

pub use event::{Event, Field, FieldValue, Level, Payload};
pub use manifest::{DatasetShape, RunManifest};
pub use metrics::{
    counter, gauge, histogram, registry, Counter, Gauge, Histogram, HistogramSummary,
    MetricsSnapshot, Registry,
};
pub use observer::{
    clock_us, drain_recoveries, emit, error, info, metric, observer, progress, record_recovery,
    run_id, scoped, set_observer, warn, Fanout, JsonlSink, NullObserver, Observer, ScopedObserver,
    StderrProgress,
};
pub use span::Span;
