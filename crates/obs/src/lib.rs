//! `kgfd-obs` — structured tracing, metrics, and run manifests for the
//! fact-discovery pipeline.
//!
//! The crate has four pieces, designed to add near-zero overhead when
//! nothing is listening:
//!
//! * a **metrics registry** ([`registry`]) of lock-free [`Counter`]s,
//!   [`Gauge`]s, and log-bucketed [`Histogram`]s (p50/p95/p99 with ≈4.4%
//!   relative error);
//! * **scoped span timers** ([`Span`], [`span!`]) that feed both the
//!   histogram registry and the event stream;
//! * an **[`Observer`] pipeline** — [`NullObserver`], rate-limited
//!   [`StderrProgress`], and [`JsonlSink`] (one serde event per line,
//!   tagged with a run id and monotonic timestamps) — installed with
//!   [`set_observer`] or temporarily with [`scoped`];
//! * a **[`RunManifest`]** emitted at the end of every run recording the
//!   command, configuration, seed, dataset shape, and wall-clock totals.
//!
//! v2 adds **hierarchical tracing**: spans carry [`SpanId`]s and parent
//! links through a thread-local span stack (cross-thread handoff via
//! [`Span::child_for_thread`] / [`SpanHandle::enter`]), finished spans land
//! in a lock-free process [`TraceCollector`] (opt-in via
//! [`enable_tracing`]), the tree exports as Chrome trace-event JSON and
//! collapsed-stack flamegraph text ([`export`]), and a dependency-free
//! [`MetricsServer`] serves live `/metrics` (Prometheus), `/healthz`, and
//! `/trace` endpoints.
//!
//! Metric and span names follow `<crate>.<phase>.<name>`, e.g.
//! `embed.train.epoch_loss` or `discover.generation.duration_us`.
//!
//! ```
//! let _cell = kgfd_obs::scoped(std::sync::Arc::new(kgfd_obs::NullObserver));
//! let span = kgfd_obs::span!("discover.generation", relation = 3u64);
//! // ... work ...
//! let took = span.finish();
//! kgfd_obs::metric("discover.generation.candidates", 128.0, vec![]);
//! ```

#![warn(missing_docs)]

mod event;
pub mod export;
mod manifest;
mod metrics;
mod observer;
mod serve;
mod span;
mod trace;

pub use event::{Event, Field, FieldValue, Level, Payload};
pub use export::{
    chrome_trace, flamegraph_collapsed, top_spans_json, TraceNode, TraceSummary, TraceTree,
};
pub use manifest::{DatasetShape, PoolPhase, PoolSummary, RunManifest};
pub use metrics::{
    counter, gauge, histogram, registry, Counter, Gauge, Histogram, HistogramSummary,
    MetricsSnapshot, Registry,
};
pub use observer::{
    clock_us, drain_recoveries, emit, error, info, metric, observer, progress, record_recovery,
    run_id, scoped, set_observer, warn, Fanout, JsonlSink, NullObserver, Observer, ScopedObserver,
    StderrProgress,
};
pub use serve::{current_phase, prometheus_text, set_phase, MetricsServer};
pub use span::{emit_span_aggregate, Span};
pub use trace::{
    collector, current_span, current_span_handle, disable as disable_tracing,
    enable as enable_tracing, record_manual, thread_id, EnteredSpan, SpanHandle, SpanId,
    SpanRecord, TraceCollector,
};
