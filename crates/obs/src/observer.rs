//! Observer trait, the built-in observers, and the process-wide pipeline
//! (run id, monotonic clock, current observer).

use crate::event::{Event, Level, Payload};
use parking_lot::{Mutex, RwLock};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant, SystemTime};

/// A consumer of pipeline [`Event`]s.
///
/// Implementations must be cheap when they ignore an event — the hot paths
/// call [`Observer::event`] unconditionally.
pub trait Observer: Send + Sync {
    /// Delivers one event.
    fn event(&self, event: &Event);

    /// Flushes buffered output (no-op by default).
    fn flush(&self) {}
}

/// Discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn event(&self, _event: &Event) {}
}

/// Renders events as human-readable stderr lines.
///
/// `Warn` and `Error` messages are always printed; everything else is
/// rate-limited to one line per interval, and only printed at all when
/// constructed with [`StderrProgress::new`] (the [`StderrProgress::warnings_only`]
/// variant — the default observer — keeps stderr clean on happy paths).
pub struct StderrProgress {
    min_level: Level,
    interval: Duration,
    last: Mutex<Option<Instant>>,
}

impl StderrProgress {
    /// Full progress output, rate-limited to ~5 lines/second.
    pub fn new() -> Self {
        StderrProgress {
            min_level: Level::Progress,
            interval: Duration::from_millis(200),
            last: Mutex::new(None),
        }
    }

    /// Only `Warn`/`Error` messages (the default observer's behaviour).
    pub fn warnings_only() -> Self {
        StderrProgress {
            min_level: Level::Warn,
            interval: Duration::ZERO,
            last: Mutex::new(None),
        }
    }

    /// True when a rate-limited line may be printed now.
    fn admit(&self) -> bool {
        let mut last = self.last.lock();
        match *last {
            Some(t) if t.elapsed() < self.interval => false,
            _ => {
                *last = Some(Instant::now());
                true
            }
        }
    }
}

impl Default for StderrProgress {
    fn default() -> Self {
        StderrProgress::new()
    }
}

impl Observer for StderrProgress {
    fn event(&self, event: &Event) {
        match &event.payload {
            Payload::Message { level, text } => {
                if *level >= Level::Warn {
                    eprintln!("{}: {text}", level_name(*level));
                } else if *level >= self.min_level && self.admit() {
                    eprintln!("{text}");
                }
            }
            Payload::SpanEnd {
                name,
                duration_us,
                fields,
                ..
            } if self.min_level <= Level::Progress && self.admit() => {
                eprintln!(
                    "[{:>10.3}s] {name} {} ({:.3}s)",
                    event.t_us as f64 / 1e6,
                    render_fields(fields),
                    *duration_us as f64 / 1e6
                );
            }
            Payload::Metric {
                name,
                value,
                fields,
            } if self.min_level <= Level::Progress && self.admit() => {
                eprintln!(
                    "[{:>10.3}s] {name} = {value:.6} {}",
                    event.t_us as f64 / 1e6,
                    render_fields(fields)
                );
            }
            _ => {}
        }
    }
}

fn level_name(level: Level) -> &'static str {
    match level {
        Level::Progress => "progress",
        Level::Info => "info",
        Level::Warn => "warning",
        Level::Error => "error",
    }
}

fn render_fields(fields: &[crate::Field]) -> String {
    fields
        .iter()
        .map(|f| format!("{}={}", f.key, f.value))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Writes one serde-serialized [`Event`] per line.
///
/// Every line is flushed immediately so the file is complete even if the
/// process exits without dropping the sink.
///
/// A failing write (disk full, file descriptor yanked) never panics the
/// run: the first failure lands one entry in the process recovery log
/// ([`record_recovery`]) — so the condition surfaces in the next run
/// manifest — and subsequent failures are dropped silently rather than
/// flooding the log once per event.
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
    path: String,
    failed: std::sync::atomic::AtomicBool,
}

impl JsonlSink {
    /// Creates (truncating) the sink file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref();
        Ok(JsonlSink {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
            path: path.display().to_string(),
            failed: std::sync::atomic::AtomicBool::new(false),
        })
    }

    fn note_failure(&self, err: &std::io::Error) {
        use std::sync::atomic::Ordering;
        if !self.failed.swap(true, Ordering::Relaxed) {
            record_recovery(format!(
                "jsonl sink '{}' write failed ({err}); further events to this sink may be lost",
                self.path
            ));
        }
    }
}

impl Observer for JsonlSink {
    fn event(&self, event: &Event) {
        if let Ok(line) = serde_json::to_string(event) {
            let mut out = self.out.lock();
            if let Err(err) = writeln!(out, "{line}").and_then(|()| out.flush()) {
                self.note_failure(&err);
            }
        }
    }

    fn flush(&self) {
        if let Err(err) = self.out.lock().flush() {
            self.note_failure(&err);
        }
    }
}

/// Delivers every event to several observers in order.
pub struct Fanout {
    observers: Vec<Arc<dyn Observer>>,
}

impl Fanout {
    /// Combines `observers` (useful for `--progress` + `--metrics-out`).
    pub fn new(observers: Vec<Arc<dyn Observer>>) -> Self {
        Fanout { observers }
    }
}

impl Observer for Fanout {
    fn event(&self, event: &Event) {
        for o in &self.observers {
            o.event(event);
        }
    }

    fn flush(&self) {
        for o in &self.observers {
            o.flush();
        }
    }
}

// ---------------------------------------------------------------------------
// Process-wide pipeline
// ---------------------------------------------------------------------------

static OBSERVER: RwLock<Option<Arc<dyn Observer>>> = RwLock::new(None);
static DEFAULT: OnceLock<Arc<dyn Observer>> = OnceLock::new();
static CLOCK: OnceLock<Instant> = OnceLock::new();
static RUN_ID: OnceLock<String> = OnceLock::new();

fn default_observer() -> Arc<dyn Observer> {
    Arc::clone(DEFAULT.get_or_init(|| Arc::new(StderrProgress::warnings_only())))
}

/// The currently installed observer (warnings-only stderr when none was
/// installed).
pub fn observer() -> Arc<dyn Observer> {
    OBSERVER
        .read()
        .as_ref()
        .map(Arc::clone)
        .unwrap_or_else(default_observer)
}

/// Installs `o` as the process observer, returning the previous one.
pub fn set_observer(o: Arc<dyn Observer>) -> Arc<dyn Observer> {
    OBSERVER.write().replace(o).unwrap_or_else(default_observer)
}

/// Installs `o` until the returned guard drops, then restores the previous
/// observer (flushing `o` first). Used by the harness to give each grid
/// cell its own sink.
pub fn scoped(o: Arc<dyn Observer>) -> ScopedObserver {
    let previous = set_observer(o);
    ScopedObserver {
        previous: Some(previous),
    }
}

/// Guard restoring the previously installed observer on drop.
pub struct ScopedObserver {
    previous: Option<Arc<dyn Observer>>,
}

impl Drop for ScopedObserver {
    fn drop(&mut self) {
        if let Some(previous) = self.previous.take() {
            let current = set_observer(previous);
            current.flush();
        }
    }
}

/// Microseconds since the observability clock started (first call wins).
pub fn clock_us() -> u64 {
    CLOCK.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// This process's run identifier (wall-clock nanos ⊕ pid, hex).
pub fn run_id() -> &'static str {
    RUN_ID.get_or_init(|| {
        let nanos = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        format!("{:016x}", nanos ^ ((std::process::id() as u64) << 48))
    })
}

/// Process-wide log of recovery actions (e.g. a corrupt model-zoo cache
/// entry evicted and retrained). Libraries append with [`record_recovery`];
/// [`crate::RunManifest::emit`] drains the log into the manifest, so a
/// recovery that happened deep inside a library call is still visible in
/// the run's closing JSONL record.
static RECOVERIES: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Appends one recovery action to the process-wide recovery log.
pub fn record_recovery(text: impl Into<String>) {
    RECOVERIES.lock().push(text.into());
}

/// Takes (and clears) the recovery log. Called by
/// [`crate::RunManifest::emit`]; each recovery appears in exactly one
/// manifest.
pub fn drain_recoveries() -> Vec<String> {
    std::mem::take(&mut *RECOVERIES.lock())
}

/// Wraps `payload` in an [`Event`] (run id + timestamp) and delivers it to
/// the current observer.
pub fn emit(payload: Payload) {
    let event = Event {
        run: run_id().to_string(),
        t_us: clock_us(),
        payload,
    };
    observer().event(&event);
}

/// Emits a [`Payload::Metric`] event.
pub fn metric(name: impl Into<String>, value: f64, fields: Vec<crate::Field>) {
    emit(Payload::Metric {
        name: name.into(),
        value,
        fields,
    });
}

/// Emits a `Progress` message.
pub fn progress(text: impl Into<String>) {
    emit(Payload::Message {
        level: Level::Progress,
        text: text.into(),
    });
}

/// Emits an `Info` message.
pub fn info(text: impl Into<String>) {
    emit(Payload::Message {
        level: Level::Info,
        text: text.into(),
    });
}

/// Emits a `Warn` message (delivered even by the default observer).
pub fn warn(text: impl Into<String>) {
    emit(Payload::Message {
        level: Level::Warn,
        text: text.into(),
    });
}

/// Emits an `Error` message.
pub fn error(text: impl Into<String>) {
    emit(Payload::Message {
        level: Level::Error,
        text: text.into(),
    });
}
