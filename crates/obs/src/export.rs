//! Exports of the collected span tree: Chrome trace-event JSON (loadable
//! in `chrome://tracing` / Perfetto), collapsed-stack flamegraph text
//! (`inferno` / `flamegraph.pl` input format), and the compact
//! [`TraceSummary`] attached to run manifests.
//!
//! All exports operate on a drained (or snapshotted) `Vec<[SpanRecord]>`
//! from the [`crate::TraceCollector`] — they never touch live collector
//! state, so exporting is pure and testable.
//!
//! **Self time vs. total time.** A node's *total* time is its own recorded
//! wall-clock duration; its *self* time is the total minus the summed
//! durations of its direct children, clamped at zero. The clamp matters:
//! children dispatched to worker threads overlap each other, so their sum
//! can legitimately exceed the parent's duration — in a sequential run the
//! self-times over a tree add back up to the root's total exactly.

use crate::trace::SpanRecord;
use std::collections::HashMap;

/// The collected spans arranged as a forest, with per-node self time.
pub struct TraceTree {
    /// All records, sorted by id (creation order).
    pub records: Vec<SpanRecord>,
    /// `children[i]` — indices into `records` of node `i`'s direct children.
    pub children: Vec<Vec<usize>>,
    /// Indices of roots (no parent, or parent never recorded).
    pub roots: Vec<usize>,
    /// `self_us[i]` — duration of `records[i]` minus its direct children's
    /// durations, clamped at 0 (see the module docs).
    pub self_us: Vec<u64>,
    /// `depth[i]` — 0 for roots, parent depth + 1 otherwise.
    pub depth: Vec<u32>,
}

impl TraceTree {
    /// Builds the forest from drained records. Children whose parent span
    /// was never recorded (e.g. collection enabled mid-run) are treated as
    /// roots rather than dropped.
    pub fn build(mut records: Vec<SpanRecord>) -> TraceTree {
        records.sort_by_key(|r| r.id);
        let index_of: HashMap<u64, usize> =
            records.iter().enumerate().map(|(i, r)| (r.id, i)).collect();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); records.len()];
        let mut roots = Vec::new();
        for (i, r) in records.iter().enumerate() {
            match r.parent.and_then(|p| index_of.get(&p)) {
                Some(&p) => children[p].push(i),
                None => roots.push(i),
            }
        }
        let mut self_us = vec![0u64; records.len()];
        for (i, r) in records.iter().enumerate() {
            let child_total: u64 = children[i].iter().map(|&c| records[c].duration_us).sum();
            self_us[i] = r.duration_us.saturating_sub(child_total);
        }
        let mut depth = vec![0u32; records.len()];
        // Ids ascend with creation order and a child is always created
        // after its parent, so one forward pass settles every depth.
        for i in 0..records.len() {
            for &c in &children[i] {
                depth[c] = depth[i] + 1;
            }
        }
        TraceTree {
            records,
            children,
            roots,
            self_us,
            depth,
        }
    }

    /// Number of spans in the forest.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no spans were collected.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Maximum nesting depth (0 for an empty forest; 1 for roots only...
    /// counted as *levels*, so a root with one child is depth 2).
    pub fn max_depth(&self) -> u32 {
        self.depth.iter().map(|d| d + 1).max().unwrap_or(0)
    }

    /// Per-name aggregation (count, total, self), sorted by descending
    /// self time then name — the rows of `/trace` and the manifest's
    /// top-self-time table.
    pub fn aggregate_by_name(&self) -> Vec<TraceNode> {
        let mut by_name: HashMap<&str, TraceNode> = HashMap::new();
        for (i, r) in self.records.iter().enumerate() {
            let node = by_name.entry(r.name.as_str()).or_insert_with(|| TraceNode {
                name: r.name.clone(),
                count: 0,
                total_us: 0,
                self_us: 0,
            });
            node.count += 1;
            node.total_us += r.duration_us;
            node.self_us += self.self_us[i];
        }
        let mut nodes: Vec<TraceNode> = by_name.into_values().collect();
        nodes.sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.name.cmp(&b.name)));
        nodes
    }

    /// The summed self time of the spans in root positions' subtrees equals
    /// the summed root durations; this is the roots' *own* duration total —
    /// what a sequential run's wall clock should roughly match.
    pub fn root_total_us(&self) -> u64 {
        self.roots
            .iter()
            .map(|&i| self.records[i].duration_us)
            .sum()
    }

    /// Compact summary for the run manifest.
    pub fn summary(&self) -> TraceSummary {
        TraceSummary {
            spans: self.len() as u64,
            max_depth: self.max_depth(),
            top_self_time: self.aggregate_by_name().into_iter().take(5).collect(),
        }
    }
}

/// One aggregated row of the trace (all spans sharing a name).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TraceNode {
    /// Span name.
    pub name: String,
    /// How many spans had this name.
    pub count: u64,
    /// Summed wall-clock duration, microseconds.
    pub total_us: u64,
    /// Summed self time (total minus direct children), microseconds.
    pub self_us: u64,
}

/// The `trace` section of a [`crate::RunManifest`]: enough to see the shape
/// and hot spots of a run without opening the full trace file.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TraceSummary {
    /// Spans collected.
    pub spans: u64,
    /// Deepest nesting level (levels, so a lone root counts 1).
    pub max_depth: u32,
    /// The five span names with the largest summed self time.
    pub top_self_time: Vec<TraceNode>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the forest as Chrome trace-event JSON (the `traceEvents` array
/// format): one complete (`"ph": "X"`) event per span, `ts`/`dur` in
/// microseconds, worker threads as `tid`s, and `id`/`parent` ids under
/// `args` so tooling can rebuild the tree exactly. Load the file in
/// `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace(tree: &TraceTree) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    for (i, r) in tree.records.iter().enumerate() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let mut args = format!("\"id\":{}", r.id);
        if let Some(p) = r.parent {
            args.push_str(&format!(",\"parent\":{p}"));
        }
        args.push_str(&format!(",\"self_us\":{}", tree.self_us[i]));
        for f in &r.fields {
            let value = match &f.value {
                crate::FieldValue::Text(t) => format!("\"{}\"", json_escape(t)),
                other => {
                    let s = other.to_string();
                    // Non-finite floats have no JSON literal.
                    if s.parse::<f64>().is_ok() {
                        s
                    } else {
                        format!("\"{}\"", json_escape(&s))
                    }
                }
            };
            args.push_str(&format!(",\"{}\":{value}", json_escape(&f.key)));
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"kgfd\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{{args}}}}}",
            json_escape(&r.name),
            r.start_us,
            r.duration_us,
            r.thread
        ));
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Renders the forest as collapsed-stack flamegraph text: one
/// `root;child;leaf <self_us>` line per node with non-zero self time,
/// ready for `flamegraph.pl` or `inferno-flamegraph`. Lines are sorted so
/// the output is deterministic for a fixed trace.
pub fn flamegraph_collapsed(tree: &TraceTree) -> String {
    let mut stacks: HashMap<String, u64> = HashMap::new();
    let mut stack_names: Vec<&str> = Vec::new();
    for &root in &tree.roots {
        collapse_into(tree, root, &mut stack_names, &mut stacks);
    }
    let mut lines: Vec<String> = stacks
        .into_iter()
        .map(|(stack, us)| format!("{stack} {us}"))
        .collect();
    lines.sort();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

fn collapse_into<'a>(
    tree: &'a TraceTree,
    node: usize,
    stack: &mut Vec<&'a str>,
    out: &mut HashMap<String, u64>,
) {
    stack.push(&tree.records[node].name);
    let self_us = tree.self_us[node];
    if self_us > 0 {
        *out.entry(stack.join(";")).or_insert(0) += self_us;
    }
    for &c in &tree.children[node] {
        collapse_into(tree, c, stack, out);
    }
    stack.pop();
}

/// The top-`n` aggregated rows by self time as a standalone JSON document —
/// the body of the live `GET /trace` endpoint.
pub fn top_spans_json(tree: &TraceTree, n: usize) -> String {
    let rows = tree.aggregate_by_name();
    let mut out = format!(
        "{{\"spans\":{},\"max_depth\":{},\"top\":[",
        tree.len(),
        tree.max_depth()
    );
    for (i, row) in rows.iter().take(n).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"count\":{},\"total_us\":{},\"self_us\":{}}}",
            json_escape(&row.name),
            row.count,
            row.total_us,
            row.self_us
        ));
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, parent: Option<u64>, name: &str, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.to_string(),
            fields: Vec::new(),
            start_us: start,
            duration_us: dur,
            thread: 1,
        }
    }

    fn sample_tree() -> TraceTree {
        // root(100) ── a(60) ── a1(20)
        //          └── b(30)
        TraceTree::build(vec![
            record(1, None, "root", 0, 100),
            record(2, Some(1), "a", 5, 60),
            record(3, Some(2), "a1", 10, 20),
            record(4, Some(1), "b", 70, 30),
        ])
    }

    #[test]
    fn self_time_subtracts_direct_children() {
        let t = sample_tree();
        assert_eq!(t.self_us, vec![10, 40, 20, 30]);
        assert_eq!(t.max_depth(), 3);
        assert_eq!(t.roots, vec![0]);
        // Sequential tree: self times sum back to the root total.
        assert_eq!(t.self_us.iter().sum::<u64>(), 100);
        assert_eq!(t.root_total_us(), 100);
    }

    #[test]
    fn overlapping_children_clamp_self_time_at_zero() {
        // Parallel children: 2 × 80us inside a 100us parent.
        let t = TraceTree::build(vec![
            record(1, None, "root", 0, 100),
            record(2, Some(1), "w", 0, 80),
            record(3, Some(1), "w", 0, 80),
        ]);
        assert_eq!(t.self_us[0], 0);
    }

    #[test]
    fn orphan_parents_become_roots() {
        let t = TraceTree::build(vec![record(7, Some(999), "late", 0, 5)]);
        assert_eq!(t.roots, vec![0]);
        assert_eq!(t.depth, vec![0]);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_parent_links() {
        let t = sample_tree();
        let json = chrome_trace(&t);
        let value: serde_json::Value = serde_json::from_str(&json).expect("parses");
        let events = value["traceEvents"].as_array().expect("array");
        assert_eq!(events.len(), 4);
        for e in events {
            assert_eq!(e["ph"].as_str(), Some("X"));
            assert!(e["dur"].as_u64().is_some());
        }
        assert_eq!(events[1]["args"]["parent"].as_u64(), Some(1));
        assert_eq!(events[0]["args"]["self_us"].as_u64(), Some(10));
    }

    #[test]
    fn chrome_trace_escapes_field_text() {
        let mut r = record(1, None, "odd\"name", 0, 5);
        r.fields
            .push(crate::Field::new("note", "line\nbreak \"quoted\""));
        let t = TraceTree::build(vec![r]);
        let json = chrome_trace(&t);
        let value: serde_json::Value = serde_json::from_str(&json).expect("escaped JSON parses");
        assert_eq!(value["traceEvents"][0]["name"].as_str(), Some("odd\"name"));
    }

    #[test]
    fn flamegraph_lines_are_semicolon_stacks_with_self_time() {
        let t = sample_tree();
        let text = flamegraph_collapsed(&t);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            vec!["root 10", "root;a 40", "root;a;a1 20", "root;b 30"]
        );
    }

    #[test]
    fn aggregation_merges_same_name_and_sorts_by_self_time() {
        let t = TraceTree::build(vec![
            record(1, None, "root", 0, 100),
            record(2, Some(1), "work", 0, 30),
            record(3, Some(1), "work", 30, 30),
        ]);
        let rows = t.aggregate_by_name();
        assert_eq!(rows[0].name, "work");
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[0].total_us, 60);
        assert_eq!(rows[0].self_us, 60);
        assert_eq!(rows[1].name, "root");
        assert_eq!(rows[1].self_us, 40);

        let summary = t.summary();
        assert_eq!(summary.spans, 3);
        assert_eq!(summary.max_depth, 2);
        assert_eq!(summary.top_self_time.len(), 2);
    }

    #[test]
    fn top_spans_json_parses_and_limits() {
        let t = sample_tree();
        let json = top_spans_json(&t, 2);
        let value: serde_json::Value = serde_json::from_str(&json).expect("parses");
        assert_eq!(value["spans"].as_u64(), Some(4));
        assert_eq!(value["top"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn empty_tree_exports_cleanly() {
        let t = TraceTree::build(Vec::new());
        assert!(t.is_empty());
        assert_eq!(t.max_depth(), 0);
        let json = chrome_trace(&t);
        let value: serde_json::Value = serde_json::from_str(&json).expect("parses");
        assert_eq!(value["traceEvents"].as_array().unwrap().len(), 0);
        assert_eq!(flamegraph_collapsed(&t), "");
    }
}
