//! Property-based tests of the graph analytics invariants.
#![allow(clippy::needless_range_loop)]

use kgfd_graph_stats::{
    average_clustering, local_clustering_coefficients, local_triangle_counts, occurrence_degrees,
    simple_degrees, square_clustering_coefficients, total_triangles, Histogram,
    UndirectedAdjacency,
};
use kgfd_kg::{Triple, TripleStore};
use proptest::prelude::*;

const N: u32 = 10;
const K: u32 = 3;

fn arb_store() -> impl Strategy<Value = TripleStore> {
    proptest::collection::vec((0..N, 0..K, 0..N), 0..80).prop_map(|raw| {
        let triples = raw
            .into_iter()
            .map(|(s, r, o)| Triple::new(s, r, o))
            .collect();
        TripleStore::new(N as usize, K as usize, triples).unwrap()
    })
}

proptest! {
    #[test]
    fn adjacency_is_symmetric_and_loop_free(store in arb_store()) {
        let adj = UndirectedAdjacency::from_store(&store);
        for v in 0..N {
            let vid = kgfd_kg::EntityId(v);
            for &u in adj.neighbors(vid) {
                prop_assert_ne!(u, v, "self loops must be dropped");
                prop_assert!(adj.has_edge(kgfd_kg::EntityId(u), vid));
            }
        }
    }

    #[test]
    fn neighbor_lists_are_sorted_unique(store in arb_store()) {
        let adj = UndirectedAdjacency::from_store(&store);
        for v in 0..N {
            let ns = adj.neighbors(kgfd_kg::EntityId(v));
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn triangle_counts_sum_is_divisible_by_three(store in arb_store()) {
        let adj = UndirectedAdjacency::from_store(&store);
        let t = local_triangle_counts(&adj);
        let sum: u64 = t.iter().sum();
        prop_assert_eq!(sum % 3, 0);
        prop_assert_eq!(total_triangles(&t), sum / 3);
    }

    #[test]
    fn triangles_bounded_by_degree_pairs(store in arb_store()) {
        let adj = UndirectedAdjacency::from_store(&store);
        let t = local_triangle_counts(&adj);
        for v in 0..N as usize {
            let d = adj.degree(kgfd_kg::EntityId(v as u32)) as u64;
            prop_assert!(t[v] <= d * d.saturating_sub(1) / 2);
        }
    }

    #[test]
    fn clustering_coefficients_in_unit_interval(store in arb_store()) {
        let adj = UndirectedAdjacency::from_store(&store);
        let c = local_clustering_coefficients(&adj);
        for &x in &c {
            prop_assert!((0.0..=1.0).contains(&x));
        }
        let avg = average_clustering(&c);
        prop_assert!((0.0..=1.0).contains(&avg));
    }

    #[test]
    fn square_coefficients_in_unit_interval(store in arb_store()) {
        let adj = UndirectedAdjacency::from_store(&store);
        for x in square_clustering_coefficients(&adj) {
            prop_assert!((0.0..=1.0).contains(&x), "c4 = {x} out of range");
        }
    }

    #[test]
    fn occurrence_degrees_sum_to_twice_triples(store in arb_store()) {
        let d = occurrence_degrees(&store);
        prop_assert_eq!(d.iter().sum::<u64>(), 2 * store.len() as u64);
    }

    #[test]
    fn simple_degree_never_exceeds_occurrence_degree(store in arb_store()) {
        let adj = UndirectedAdjacency::from_store(&store);
        let simple = simple_degrees(&adj);
        let occ = occurrence_degrees(&store);
        for v in 0..N as usize {
            prop_assert!(simple[v] <= occ[v]);
        }
    }

    #[test]
    fn histogram_total_matches_input_len(values in proptest::collection::vec(0.0f64..1.0, 0..200)) {
        let h = Histogram::build(values.iter().copied(), 0.0, 1.0, 16);
        prop_assert_eq!(h.total, values.len() as u64);
        prop_assert_eq!(h.counts.iter().sum::<u64>(), values.len() as u64);
    }
}
