//! Local clustering coefficients (Watts–Strogatz) on the simple projection.
//!
//! `c(v) = 2 T(v) / (deg(v) (deg(v) − 1))` (paper Eq. 5), with `c(v) = 0`
//! for nodes of degree < 2. The dataset-level average of `c(v)` is the
//! density measure the paper uses throughout (Figure 3, §4.2.3).

use crate::{local_triangle_counts, UndirectedAdjacency};
use kgfd_kg::EntityId;

/// Local clustering coefficient per node.
pub fn local_clustering_coefficients(adj: &UndirectedAdjacency) -> Vec<f64> {
    let triangles = local_triangle_counts(adj);
    clustering_from_triangles(adj, &triangles)
}

/// Same as [`local_clustering_coefficients`] but reuses precomputed triangle
/// counts, since callers typically need both.
pub fn clustering_from_triangles(adj: &UndirectedAdjacency, triangles: &[u64]) -> Vec<f64> {
    (0..adj.num_nodes())
        .map(|v| {
            let d = adj.degree(EntityId(v as u32)) as f64;
            if d < 2.0 {
                0.0
            } else {
                2.0 * triangles[v] as f64 / (d * (d - 1.0))
            }
        })
        .collect()
}

/// Global clustering coefficient (transitivity): `3 × triangles / wedges`,
/// where a wedge is a path of length two. Unlike the node-average this
/// weighs hubs by their wedge count — the other density measure commonly
/// quoted alongside Figure 3.
pub fn global_transitivity(adj: &UndirectedAdjacency, triangles: &[u64]) -> f64 {
    let closed: u64 = triangles.iter().sum(); // 3 × #triangles
    let wedges: u64 = (0..adj.num_nodes())
        .map(|v| {
            let d = adj.degree(EntityId(v as u32)) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        0.0
    } else {
        closed as f64 / wedges as f64
    }
}

/// Average of the local clustering coefficients over *all* nodes — the red
/// line of the paper's Figure 3 (e.g. WN18RR ≈ 0.059).
pub fn average_clustering(coefficients: &[f64]) -> f64 {
    if coefficients.is_empty() {
        return 0.0;
    }
    coefficients.iter().sum::<f64>() / coefficients.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgfd_kg::{Triple, TripleStore};

    fn adj_of(n: usize, edges: &[(u32, u32)]) -> UndirectedAdjacency {
        let triples = edges
            .iter()
            .map(|&(a, b)| Triple::new(a, 0u32, b))
            .collect();
        UndirectedAdjacency::from_store(&TripleStore::new(n, 1, triples).unwrap())
    }

    #[test]
    fn complete_graph_has_coefficient_one() {
        let adj = adj_of(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        for c in local_clustering_coefficients(&adj) {
            assert!((c - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn star_hub_has_coefficient_zero() {
        let adj = adj_of(4, &[(0, 1), (0, 2), (0, 3)]);
        let c = local_clustering_coefficients(&adj);
        assert_eq!(c, vec![0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn triangle_with_pendant() {
        // 0-1-2 triangle, 3 pendant on 2.
        let adj = adj_of(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let c = local_clustering_coefficients(&adj);
        assert!((c[0] - 1.0).abs() < 1e-12);
        assert!((c[1] - 1.0).abs() < 1e-12);
        // node 2: deg 3, 1 triangle → 2·1/(3·2) = 1/3
        assert!((c[2] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(c[3], 0.0);
    }

    #[test]
    fn average_includes_zero_degree_nodes() {
        let adj = adj_of(4, &[(0, 1), (1, 2), (2, 0)]);
        let c = local_clustering_coefficients(&adj);
        // three nodes at 1.0, one isolated at 0.0 → 0.75
        assert!((average_clustering(&c) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_average_is_zero() {
        assert_eq!(average_clustering(&[]), 0.0);
    }

    #[test]
    fn transitivity_of_triangle_is_one() {
        let adj = adj_of(3, &[(0, 1), (1, 2), (2, 0)]);
        let t = crate::local_triangle_counts(&adj);
        assert!((global_transitivity(&adj, &t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transitivity_differs_from_average_on_hubby_graphs() {
        // Triangle + large star on node 0: node-average stays high (three
        // triangle nodes at ≥ 1/3), transitivity collapses (the hub's many
        // open wedges dominate).
        let adj = adj_of(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (0, 3),
                (0, 4),
                (0, 5),
                (0, 6),
                (0, 7),
            ],
        );
        let t = crate::local_triangle_counts(&adj);
        let coeffs = crate::clustering_from_triangles(&adj, &t);
        let avg = average_clustering(&coeffs);
        let trans = global_transitivity(&adj, &t);
        assert!(trans < avg, "transitivity {trans} vs average {avg}");
    }

    #[test]
    fn star_has_zero_transitivity() {
        let adj = adj_of(4, &[(0, 1), (0, 2), (0, 3)]);
        let t = crate::local_triangle_counts(&adj);
        assert_eq!(global_transitivity(&adj, &t), 0.0);
    }
}
