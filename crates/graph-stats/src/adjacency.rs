//! Undirected homogeneous projection of a knowledge graph.
//!
//! The paper's triangle- and clustering-based sampling strategies (Section
//! 3.1.2) "are computed as if the graph is homogeneous and undirected": edge
//! labels and directions are dropped, parallel edges collapse into one, and
//! self-loops are removed. This module materializes that projection as a
//! CSR structure with sorted neighbour lists, which makes neighbourhood
//! intersection (the kernel of triangle counting) a linear merge.

use kgfd_kg::{EntityId, TripleStore};

/// CSR adjacency of the undirected simple projection.
#[derive(Debug, Clone)]
pub struct UndirectedAdjacency {
    offsets: Vec<usize>,
    neighbors: Vec<u32>,
}

impl UndirectedAdjacency {
    /// Projects a triple store: for every triple `(s, r, o)` with `s != o`,
    /// adds the undirected edge `{s, o}` once.
    pub fn from_store(store: &TripleStore) -> Self {
        let n = store.num_entities();
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(store.len() * 2);
        for t in store.triples() {
            if t.subject != t.object {
                pairs.push((t.subject.0, t.object.0));
                pairs.push((t.object.0, t.subject.0));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();

        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(pairs.len());
        offsets.push(0);
        let mut cursor = 0usize;
        for v in 0..n as u32 {
            while cursor < pairs.len() && pairs[cursor].0 == v {
                neighbors.push(pairs[cursor].1);
                cursor += 1;
            }
            offsets.push(neighbors.len());
        }
        UndirectedAdjacency { offsets, neighbors }
    }

    /// Number of nodes (the full entity range, including isolated nodes).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges in the simple projection.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Sorted distinct neighbours of `v`.
    #[inline]
    pub fn neighbors(&self, v: EntityId) -> &[u32] {
        let i = v.index();
        &self.neighbors[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Simple degree of `v` (number of distinct neighbours).
    #[inline]
    pub fn degree(&self, v: EntityId) -> usize {
        self.offsets[v.index() + 1] - self.offsets[v.index()]
    }

    /// `true` if `{u, v}` is an edge of the projection (binary search).
    #[inline]
    pub fn has_edge(&self, u: EntityId, v: EntityId) -> bool {
        self.neighbors(u).binary_search(&v.0).is_ok()
    }
}

/// Size of the sorted intersection of two ascending slices — the number of
/// common neighbours of two nodes.
#[inline]
pub fn sorted_intersection_count(a: &[u32], b: &[u32]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut count = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgfd_kg::Triple;

    /// Triangle 0-1-2 plus pendant 3, with a duplicate edge in both
    /// directions and a self-loop to exercise projection rules.
    fn diamond() -> UndirectedAdjacency {
        let store = TripleStore::new(
            4,
            2,
            vec![
                Triple::new(0u32, 0u32, 1u32),
                Triple::new(1u32, 1u32, 0u32), // parallel reverse edge, other relation
                Triple::new(1u32, 0u32, 2u32),
                Triple::new(0u32, 0u32, 2u32),
                Triple::new(2u32, 0u32, 3u32),
                Triple::new(3u32, 0u32, 3u32), // self-loop: dropped
            ],
        )
        .unwrap();
        UndirectedAdjacency::from_store(&store)
    }

    #[test]
    fn projection_collapses_parallel_edges_and_drops_loops() {
        let adj = diamond();
        assert_eq!(adj.num_nodes(), 4);
        assert_eq!(adj.num_edges(), 4); // {0,1},{1,2},{0,2},{2,3}
        assert_eq!(adj.neighbors(EntityId(0)), &[1, 2]);
        assert_eq!(adj.neighbors(EntityId(2)), &[0, 1, 3]);
        assert_eq!(adj.neighbors(EntityId(3)), &[2]);
    }

    #[test]
    fn degree_counts_distinct_neighbors() {
        let adj = diamond();
        assert_eq!(adj.degree(EntityId(0)), 2);
        assert_eq!(adj.degree(EntityId(2)), 3);
        assert_eq!(adj.degree(EntityId(3)), 1);
    }

    #[test]
    fn has_edge_is_symmetric() {
        let adj = diamond();
        assert!(adj.has_edge(EntityId(0), EntityId(1)));
        assert!(adj.has_edge(EntityId(1), EntityId(0)));
        assert!(!adj.has_edge(EntityId(0), EntityId(3)));
    }

    #[test]
    fn isolated_nodes_have_empty_neighborhoods() {
        let store = TripleStore::new(3, 1, vec![Triple::new(0u32, 0u32, 1u32)]).unwrap();
        let adj = UndirectedAdjacency::from_store(&store);
        assert_eq!(adj.neighbors(EntityId(2)), &[] as &[u32]);
        assert_eq!(adj.degree(EntityId(2)), 0);
    }

    #[test]
    fn intersection_count_on_samples() {
        assert_eq!(sorted_intersection_count(&[1, 3, 5], &[2, 3, 5, 7]), 2);
        assert_eq!(sorted_intersection_count(&[], &[1]), 0);
        assert_eq!(sorted_intersection_count(&[1, 2], &[3, 4]), 0);
    }
}
