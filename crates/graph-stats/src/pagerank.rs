//! PageRank on the undirected simple projection — an additional popularity
//! measure for sampling strategies. The paper's conclusion is that measures
//! correlating with node popularity make good sampling weights (§4.2.4);
//! PageRank is the canonical such measure and serves as an extension
//! strategy beyond the paper's six.

use crate::UndirectedAdjacency;
use kgfd_kg::EntityId;

/// Power-iteration PageRank with damping `d`, run until the L1 change drops
/// below `tol` or `max_iterations` passes. Isolated nodes receive the
/// teleport mass only. Returns a probability vector (sums to 1).
pub fn pagerank(
    adj: &UndirectedAdjacency,
    damping: f64,
    max_iterations: usize,
    tol: f64,
) -> Vec<f64> {
    let n = adj.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];

    for _ in 0..max_iterations {
        let mut dangling_mass = 0.0;
        next.fill(0.0);
        for (v, &rank_v) in rank.iter().enumerate() {
            let degree = adj.degree(EntityId(v as u32));
            if degree == 0 {
                dangling_mass += rank_v;
                continue;
            }
            let share = rank_v / degree as f64;
            for &u in adj.neighbors(EntityId(v as u32)) {
                next[u as usize] += share;
            }
        }
        let teleport = (1.0 - damping) * uniform + damping * dangling_mass * uniform;
        let mut delta = 0.0;
        for v in 0..n {
            let new = teleport + damping * next[v];
            delta += (new - rank[v]).abs();
            rank[v] = new;
        }
        if delta < tol {
            break;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgfd_kg::{Triple, TripleStore};

    fn adj_of(n: usize, edges: &[(u32, u32)]) -> UndirectedAdjacency {
        let triples = edges
            .iter()
            .map(|&(a, b)| Triple::new(a, 0u32, b))
            .collect();
        UndirectedAdjacency::from_store(&TripleStore::new(n, 1, triples).unwrap())
    }

    #[test]
    fn ranks_sum_to_one() {
        let adj = adj_of(5, &[(0, 1), (1, 2), (2, 3), (0, 4)]);
        let r = pagerank(&adj, 0.85, 100, 1e-10);
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hub_outranks_leaves() {
        // Star: the hub collects rank from every leaf.
        let adj = adj_of(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let r = pagerank(&adj, 0.85, 100, 1e-10);
        for leaf in 1..5 {
            assert!(r[0] > r[leaf], "hub {} vs leaf {}", r[0], r[leaf]);
        }
    }

    #[test]
    fn symmetric_graph_gives_equal_ranks() {
        // Cycle: perfect symmetry → uniform ranks.
        let adj = adj_of(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let r = pagerank(&adj, 0.85, 200, 1e-12);
        for v in 1..4 {
            assert!((r[v] - r[0]).abs() < 1e-9);
        }
    }

    #[test]
    fn isolated_nodes_get_teleport_mass_only() {
        let adj = adj_of(3, &[(0, 1)]);
        let r = pagerank(&adj, 0.85, 100, 1e-12);
        assert!(r[2] > 0.0, "teleport keeps isolated nodes reachable");
        assert!(r[2] < r[0]);
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_yields_empty_ranks() {
        let adj = adj_of(0, &[]);
        assert!(pagerank(&adj, 0.85, 10, 1e-9).is_empty());
    }
}
