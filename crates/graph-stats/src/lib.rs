//! # kgfd-graph-stats — graph analytics for sampling strategies
//!
//! The structural node measures the paper's six sampling strategies are
//! built on (Section 3.1.2), computed on the undirected homogeneous
//! projection of the knowledge graph:
//!
//! * [`occurrence_degrees`] — GRAPH DEGREE (Eq. 3)
//! * [`local_triangle_counts`] — CLUSTERING TRIANGLES (Eq. 4)
//! * [`local_clustering_coefficients`] — CLUSTERING COEFFICIENT (Eq. 5)
//! * [`square_clustering_coefficients`] — CLUSTERING SQUARES (Eq. 6)
//!
//! plus the dataset-level density measures of the analysis sections
//! ([`average_clustering`], [`GraphSummary`]) and [`Histogram`] for the
//! distribution figures.
//!
//! ```
//! use kgfd_kg::{Triple, TripleStore};
//! use kgfd_graph_stats::{UndirectedAdjacency, local_triangle_counts};
//!
//! let store = TripleStore::new(3, 1, vec![
//!     Triple::new(0u32, 0u32, 1u32),
//!     Triple::new(1u32, 0u32, 2u32),
//!     Triple::new(2u32, 0u32, 0u32),
//! ]).unwrap();
//! let adj = UndirectedAdjacency::from_store(&store);
//! assert_eq!(local_triangle_counts(&adj), vec![1, 1, 1]);
//! ```

#![warn(missing_docs)]

mod adjacency;
mod clustering;
mod components;
mod degree;
mod histogram;
mod pagerank;
mod squares;
mod summary;
mod triangles;

pub use adjacency::{sorted_intersection_count, UndirectedAdjacency};
pub use clustering::{
    average_clustering, clustering_from_triangles, global_transitivity,
    local_clustering_coefficients,
};
pub use components::{connected_components, ComponentSummary, UnionFind};
pub use degree::{avg_triples_per_entity, occurrence_degrees, simple_degrees};
pub use histogram::Histogram;
pub use pagerank::pagerank;
pub use squares::{square_clustering_coefficients, square_clustering_of};
pub use summary::{Descriptive, GraphSummary};
pub use triangles::{local_triangle_counts, total_triangles};
