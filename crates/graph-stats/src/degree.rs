//! Node degrees of a knowledge graph, in both the multigraph and the
//! simple-projection sense.
//!
//! The paper's GRAPH DEGREE strategy (Eq. 3) weighs entity `x` by
//! `deg(x) / Σ deg(v)` where `deg(x)` is "the sum of in- and out-degree" —
//! i.e. the number of triple occurrences of `x`, counting parallel edges.
//! That is [`occurrence_degrees`]. The clustering coefficient (Eq. 5) instead
//! uses the degree of the undirected *simple* projection, [`simple_degrees`].

use crate::UndirectedAdjacency;
use kgfd_kg::{Side, TripleStore};

/// Multigraph degree per entity: number of triples in which the entity
/// appears as subject plus those where it appears as object. Self-loops
/// count twice, matching in+out degree semantics.
pub fn occurrence_degrees(store: &TripleStore) -> Vec<u64> {
    let subj = store.global_side_counts(Side::Subject);
    let obj = store.global_side_counts(Side::Object);
    subj.iter()
        .zip(&obj)
        .map(|(&s, &o)| s as u64 + o as u64)
        .collect()
}

/// Simple-projection degree per entity: number of distinct neighbours in the
/// undirected homogeneous projection.
pub fn simple_degrees(adj: &UndirectedAdjacency) -> Vec<u64> {
    (0..adj.num_nodes())
        .map(|v| adj.degree(kgfd_kg::EntityId(v as u32)) as u64)
        .collect()
}

/// Average number of triples per entity — the "relations per entity" figure
/// the paper quotes when explaining WN18RR's sparsity (§4.2.1: "entities of
/// WN18RR have an average of 4.5 relations").
pub fn avg_triples_per_entity(store: &TripleStore) -> f64 {
    if store.num_entities() == 0 {
        return 0.0;
    }
    // Each triple touches two entity slots.
    2.0 * store.len() as f64 / store.num_entities() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgfd_kg::Triple;

    fn store() -> TripleStore {
        TripleStore::new(
            4,
            2,
            vec![
                Triple::new(0u32, 0u32, 1u32),
                Triple::new(1u32, 1u32, 0u32),
                Triple::new(0u32, 1u32, 1u32),
                Triple::new(2u32, 0u32, 2u32), // self-loop
            ],
        )
        .unwrap()
    }

    #[test]
    fn occurrence_degree_counts_multiplicity() {
        let d = occurrence_degrees(&store());
        // entity 0: subject ×2, object ×1 → 3; entity 1: subject ×1, object ×2 → 3
        // entity 2: self-loop → 2; entity 3: isolated → 0
        assert_eq!(d, vec![3, 3, 2, 0]);
    }

    #[test]
    fn simple_degree_ignores_multiplicity_and_loops() {
        let s = store();
        let adj = UndirectedAdjacency::from_store(&s);
        let d = simple_degrees(&adj);
        assert_eq!(d, vec![1, 1, 0, 0]);
    }

    #[test]
    fn degree_sums_relate_to_triple_count() {
        let s = store();
        let total: u64 = occurrence_degrees(&s).iter().sum();
        assert_eq!(total, 2 * s.len() as u64);
    }

    #[test]
    fn avg_triples_per_entity_matches_paper_arithmetic() {
        // WN18RR-style: ~90k triples over ~40k entities → ~4.5 per entity.
        let v: f64 = 2.0 * 90_000.0 / 40_000.0;
        assert!((v - 4.5).abs() < 1e-9);
        let s = store();
        assert!((avg_triples_per_entity(&s) - 2.0).abs() < 1e-12);
    }
}
