//! Connected components of the undirected projection (union-find).
//!
//! Component structure matters for fact discovery: candidates can only link
//! entities the sampler reaches, and a fragmented graph (many components)
//! bounds how far any popularity-based strategy can see.

use crate::UndirectedAdjacency;
use kgfd_kg::EntityId;

/// Disjoint-set forest with path halving and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            // Path halving.
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x as usize
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        self.components -= 1;
        true
    }

    /// Number of disjoint sets.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Size of `x`'s set.
    pub fn component_size(&mut self, x: usize) -> usize {
        let root = self.find(x);
        self.size[root] as usize
    }
}

/// Component statistics of a graph.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ComponentSummary {
    /// Number of connected components (isolated nodes count).
    pub count: usize,
    /// Nodes in the largest component.
    pub largest: usize,
    /// Number of isolated nodes (degree 0).
    pub isolated: usize,
}

/// Computes the component summary of the undirected projection.
pub fn connected_components(adj: &UndirectedAdjacency) -> ComponentSummary {
    let n = adj.num_nodes();
    let mut uf = UnionFind::new(n);
    for v in 0..n {
        for &u in adj.neighbors(EntityId(v as u32)) {
            uf.union(v, u as usize);
        }
    }
    let mut largest = 0;
    let mut isolated = 0;
    for v in 0..n {
        largest = largest.max(uf.component_size(v));
        if adj.degree(EntityId(v as u32)) == 0 {
            isolated += 1;
        }
    }
    ComponentSummary {
        count: uf.num_components(),
        largest: if n == 0 { 0 } else { largest },
        isolated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgfd_kg::{Triple, TripleStore};

    fn adj_of(n: usize, edges: &[(u32, u32)]) -> UndirectedAdjacency {
        let triples = edges
            .iter()
            .map(|&(a, b)| Triple::new(a, 0u32, b))
            .collect();
        UndirectedAdjacency::from_store(&TripleStore::new(n, 1, triples).unwrap())
    }

    #[test]
    fn two_components_plus_isolated_node() {
        // {0,1,2} triangle, {3,4} edge, {5} isolated.
        let adj = adj_of(6, &[(0, 1), (1, 2), (2, 0), (3, 4)]);
        let c = connected_components(&adj);
        assert_eq!(c.count, 3);
        assert_eq!(c.largest, 3);
        assert_eq!(c.isolated, 1);
    }

    #[test]
    fn fully_connected_graph_has_one_component() {
        let adj = adj_of(4, &[(0, 1), (1, 2), (2, 3)]);
        let c = connected_components(&adj);
        assert_eq!(c.count, 1);
        assert_eq!(c.largest, 4);
        assert_eq!(c.isolated, 0);
    }

    #[test]
    fn union_find_counts_merges() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0), "already merged");
        assert!(uf.union(2, 3));
        assert_eq!(uf.num_components(), 2);
        assert_eq!(uf.component_size(0), 2);
        assert_eq!(uf.find(0), uf.find(1));
        assert_ne!(uf.find(0), uf.find(2));
    }

    #[test]
    fn empty_graph_edge_cases() {
        let adj = adj_of(3, &[]);
        let c = connected_components(&adj);
        assert_eq!(c.count, 3);
        assert_eq!(c.largest, 1);
        assert_eq!(c.isolated, 3);
    }
}
