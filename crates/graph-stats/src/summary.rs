//! One-shot structural summary of a knowledge graph — everything the paper's
//! analysis sections read off a dataset (sparsity, density, degree skew).

use crate::{
    average_clustering, avg_triples_per_entity, clustering_from_triangles, local_triangle_counts,
    occurrence_degrees, UndirectedAdjacency,
};
use kgfd_kg::TripleStore;
use serde::{Deserialize, Serialize};

/// Structural statistics of one graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GraphSummary {
    /// `|E|` — number of entities (vocabulary size).
    pub num_entities: usize,
    /// `|R|` — number of relation types.
    pub num_relations: usize,
    /// `|G|` — number of triples.
    pub num_triples: usize,
    /// Edges of the undirected simple projection.
    pub simple_edges: usize,
    /// Average triples per entity (the paper's "average relations" measure).
    pub avg_triples_per_entity: f64,
    /// Average local clustering coefficient (Figure 3's red line).
    pub avg_clustering: f64,
    /// Total distinct triangles.
    pub total_triangles: u64,
    /// Maximum multigraph degree.
    pub max_degree: u64,
    /// Mean multigraph degree.
    pub mean_degree: f64,
}

impl GraphSummary {
    /// Computes the full summary. Cost is dominated by triangle counting.
    pub fn compute(store: &TripleStore) -> Self {
        let adj = UndirectedAdjacency::from_store(store);
        let triangles = local_triangle_counts(&adj);
        let coeffs = clustering_from_triangles(&adj, &triangles);
        let degrees = occurrence_degrees(store);
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        let mean_degree = if degrees.is_empty() {
            0.0
        } else {
            degrees.iter().sum::<u64>() as f64 / degrees.len() as f64
        };
        GraphSummary {
            num_entities: store.num_entities(),
            num_relations: store.num_relations(),
            num_triples: store.len(),
            simple_edges: adj.num_edges(),
            avg_triples_per_entity: avg_triples_per_entity(store),
            avg_clustering: average_clustering(&coeffs),
            total_triangles: crate::total_triangles(&triangles),
            max_degree,
            mean_degree,
        }
    }
}

/// Descriptive statistics of a numeric series (used when comparing weight
/// vectors and coefficient distributions across strategies).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Descriptive {
    /// Number of values.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Descriptive {
    /// Computes all statistics in one pass (two for the variance).
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Descriptive {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Descriptive {
            count: values.len(),
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgfd_kg::Triple;

    #[test]
    fn summary_of_triangle_graph() {
        let store = TripleStore::new(
            3,
            1,
            vec![
                Triple::new(0u32, 0u32, 1u32),
                Triple::new(1u32, 0u32, 2u32),
                Triple::new(2u32, 0u32, 0u32),
            ],
        )
        .unwrap();
        let s = GraphSummary::compute(&store);
        assert_eq!(s.num_triples, 3);
        assert_eq!(s.simple_edges, 3);
        assert_eq!(s.total_triangles, 1);
        assert!((s.avg_clustering - 1.0).abs() < 1e-12);
        assert!((s.mean_degree - 2.0).abs() < 1e-12);
        assert_eq!(s.max_degree, 2);
    }

    #[test]
    fn descriptive_matches_hand_computation() {
        let d = Descriptive::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.count, 4);
        assert!((d.mean - 2.5).abs() < 1e-12);
        assert!((d.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 4.0);
    }

    #[test]
    fn descriptive_of_empty_is_zeroed() {
        let d = Descriptive::of(&[]);
        assert_eq!(d.count, 0);
        assert_eq!(d.mean, 0.0);
    }
}
