//! Local triangle counting on the undirected simple projection.
//!
//! `T(v) = |{ e_uw : u, w ∈ N_v, e_uw ∈ E }|` — the number of edges among the
//! neighbours of `v` (paper Eq. 4). Computed with the node-iterator
//! algorithm: for each neighbour `u` of `v`, the triangles through the edge
//! `{v, u}` are the common neighbours `|N(v) ∩ N(u)|`; summing over `u`
//! counts each triangle at `v` twice.

use crate::adjacency::{sorted_intersection_count, UndirectedAdjacency};
use kgfd_kg::EntityId;

/// Local triangle count per node.
pub fn local_triangle_counts(adj: &UndirectedAdjacency) -> Vec<u64> {
    let n = adj.num_nodes();
    let mut counts = vec![0u64; n];
    for (v, slot) in counts.iter_mut().enumerate() {
        let nv = adj.neighbors(EntityId(v as u32));
        let mut twice = 0u64;
        for &u in nv {
            twice += sorted_intersection_count(nv, adj.neighbors(EntityId(u))) as u64;
        }
        *slot = twice / 2;
    }
    counts
}

/// Total number of distinct triangles in the graph
/// (`Σ_v T(v) / 3`, since each triangle is counted at its three corners).
pub fn total_triangles(local: &[u64]) -> u64 {
    local.iter().sum::<u64>() / 3
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgfd_kg::{Triple, TripleStore};

    fn adj_of(n: usize, edges: &[(u32, u32)]) -> UndirectedAdjacency {
        let triples = edges
            .iter()
            .map(|&(a, b)| Triple::new(a, 0u32, b))
            .collect();
        UndirectedAdjacency::from_store(&TripleStore::new(n, 1, triples).unwrap())
    }

    #[test]
    fn triangle_graph() {
        let adj = adj_of(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(local_triangle_counts(&adj), vec![1, 1, 1]);
        assert_eq!(total_triangles(&[1, 1, 1]), 1);
    }

    #[test]
    fn square_has_no_triangles() {
        let adj = adj_of(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(local_triangle_counts(&adj), vec![0, 0, 0, 0]);
    }

    #[test]
    fn k4_counts() {
        // K4: every node participates in C(3,2) = 3 triangles; 4 total.
        let adj = adj_of(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let t = local_triangle_counts(&adj);
        assert_eq!(t, vec![3, 3, 3, 3]);
        assert_eq!(total_triangles(&t), 4);
    }

    #[test]
    fn star_center_has_no_triangles() {
        // The paper's §4.2.2 example: a star's hub is popular but triangle-free.
        let adj = adj_of(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(local_triangle_counts(&adj), vec![0, 0, 0, 0, 0]);
    }

    #[test]
    fn two_triangles_sharing_an_edge() {
        // 0-1-2 and 1-2-3 share edge {1,2}.
        let adj = adj_of(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        let t = local_triangle_counts(&adj);
        assert_eq!(t, vec![1, 2, 2, 1]);
        assert_eq!(total_triangles(&t), 2);
    }

    #[test]
    fn direction_and_labels_are_ignored() {
        // Same undirected structure built with mixed directions/relations.
        let store = TripleStore::new(
            3,
            2,
            vec![
                Triple::new(1u32, 0u32, 0u32),
                Triple::new(1u32, 1u32, 2u32),
                Triple::new(0u32, 1u32, 2u32),
            ],
        )
        .unwrap();
        let adj = UndirectedAdjacency::from_store(&store);
        assert_eq!(local_triangle_counts(&adj), vec![1, 1, 1]);
    }
}
