//! Fixed-bin histograms for the distribution plots of the paper
//! (Figure 3: clustering-coefficient distributions; Figure 5: per-node
//! triangle/coefficient profiles).

use serde::{Deserialize, Serialize};

/// A histogram over `[min, max]` with equal-width bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    /// Lower edge of the first bin.
    pub min: f64,
    /// Upper edge of the last bin.
    pub max: f64,
    /// Per-bin counts; `counts.len()` is the number of bins.
    pub counts: Vec<u64>,
    /// Number of values seen (including out-of-range clamped ones).
    pub total: u64,
}

impl Histogram {
    /// Builds a histogram of `values` with `bins` equal-width bins spanning
    /// `[min, max]`. Values outside the range are clamped into the edge bins
    /// (distribution plots should not silently drop outliers).
    pub fn build(values: impl IntoIterator<Item = f64>, min: f64, max: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(max > min, "histogram range must be non-empty");
        let mut counts = vec![0u64; bins];
        let width = (max - min) / bins as f64;
        let mut total = 0u64;
        for v in values {
            let idx = ((v - min) / width).floor();
            let idx = (idx as i64).clamp(0, bins as i64 - 1) as usize;
            counts[idx] += 1;
            total += 1;
        }
        Histogram {
            min,
            max,
            counts,
            total,
        }
    }

    /// `(bin_center, count)` pairs — the series a plotting tool consumes.
    pub fn series(&self) -> Vec<(f64, u64)> {
        let width = (self.max - self.min) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.min + width * (i as f64 + 0.5), c))
            .collect()
    }

    /// Fraction of mass in each bin.
    pub fn densities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_expected_bins() {
        let h = Histogram::build([0.05, 0.15, 0.95, 0.15], 0.0, 1.0, 10);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[1], 2);
        assert_eq!(h.counts[9], 1);
        assert_eq!(h.total, 4);
    }

    #[test]
    fn out_of_range_values_clamp_to_edges() {
        let h = Histogram::build([-5.0, 5.0], 0.0, 1.0, 4);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[3], 1);
    }

    #[test]
    fn boundary_value_goes_to_last_bin() {
        let h = Histogram::build([1.0], 0.0, 1.0, 4);
        assert_eq!(h.counts[3], 1);
    }

    #[test]
    fn series_centers_are_midpoints() {
        let h = Histogram::build([0.1], 0.0, 1.0, 2);
        let s = h.series();
        assert!((s[0].0 - 0.25).abs() < 1e-12);
        assert!((s[1].0 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn densities_sum_to_one() {
        let h = Histogram::build([0.1, 0.2, 0.7, 0.9, 0.3], 0.0, 1.0, 7);
        let sum: f64 = h.densities().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_has_zero_densities() {
        let h = Histogram::build(std::iter::empty(), 0.0, 1.0, 3);
        assert_eq!(h.densities(), vec![0.0, 0.0, 0.0]);
    }
}
