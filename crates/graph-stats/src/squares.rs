//! Square (cycle-of-4) clustering coefficient of Zhang et al. (paper Eq. 6).
//!
//! ```text
//!            Σ_{u<w ∈ N(v)} q_v(u, w)
//! c4(v) = ─────────────────────────────────
//!          Σ_{u<w ∈ N(v)} [a_v(u, w) + q_v(u, w)]
//! ```
//!
//! where `q_v(u, w)` is the number of common neighbours of `u` and `w`
//! other than `v` (each closes a square `v-u-x-w`), and
//! `a_v(u, w) = (k_u − (1 + q_v + θ_uw)) + (k_w − (1 + q_v + θ_uw))`
//! counts the potential-but-missing squares. `θ_uw = 1` iff `u` and `w` are
//! directly connected. (The paper prints `θ_uv` in the first term; the
//! source formula — Zhang et al. 2008, as implemented by
//! `networkx.square_clustering` — uses `θ_uw` in both, which we follow.)
//!
//! This is the strategy the paper *excludes* from the main grid because a
//! single run took ~54 hours (§4.3): per node the cost is quadratic in the
//! degree with a neighbourhood intersection inside, and the ablation bench
//! `ablation_squares` reproduces that blow-up on scaled data.

use crate::adjacency::{sorted_intersection_count, UndirectedAdjacency};
use kgfd_kg::EntityId;

/// Square clustering coefficient per node. Nodes with fewer than two
/// neighbours (no pair to close a square through) get 0.
pub fn square_clustering_coefficients(adj: &UndirectedAdjacency) -> Vec<f64> {
    (0..adj.num_nodes())
        .map(|v| square_clustering_of(adj, EntityId(v as u32)))
        .collect()
}

/// Square clustering coefficient of a single node.
pub fn square_clustering_of(adj: &UndirectedAdjacency, v: EntityId) -> f64 {
    let nv = adj.neighbors(v);
    if nv.len() < 2 {
        return 0.0;
    }
    let mut numerator = 0.0f64;
    let mut denominator = 0.0f64;
    for (i, &u) in nv.iter().enumerate() {
        let nu = adj.neighbors(EntityId(u));
        let ku = nu.len() as f64;
        for &w in &nv[i + 1..] {
            let nw = adj.neighbors(EntityId(w));
            let kw = nw.len() as f64;
            let mut q = sorted_intersection_count(nu, nw) as f64;
            // Exclude v itself from the common neighbours.
            if nu.binary_search(&v.0).is_ok() && nw.binary_search(&v.0).is_ok() {
                q -= 1.0;
            }
            let theta = if adj.has_edge(EntityId(u), EntityId(w)) {
                1.0
            } else {
                0.0
            };
            let a = (ku - (1.0 + q + theta)) + (kw - (1.0 + q + theta));
            numerator += q;
            denominator += a + q;
        }
    }
    if denominator <= 0.0 {
        0.0
    } else {
        numerator / denominator
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgfd_kg::{Triple, TripleStore};

    fn adj_of(n: usize, edges: &[(u32, u32)]) -> UndirectedAdjacency {
        let triples = edges
            .iter()
            .map(|&(a, b)| Triple::new(a, 0u32, b))
            .collect();
        UndirectedAdjacency::from_store(&TripleStore::new(n, 1, triples).unwrap())
    }

    #[test]
    fn four_cycle_is_all_ones() {
        // C4: every pair of a node's two neighbours has exactly one common
        // neighbour besides v, and no unfulfilled square slots.
        let adj = adj_of(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        for c in square_clustering_coefficients(&adj) {
            assert!((c - 1.0).abs() < 1e-12, "got {c}");
        }
    }

    #[test]
    fn triangle_has_zero_squares() {
        let adj = adj_of(3, &[(0, 1), (1, 2), (2, 0)]);
        for c in square_clustering_coefficients(&adj) {
            assert_eq!(c, 0.0);
        }
    }

    #[test]
    fn path_has_zero_squares_but_nonzero_denominator() {
        // Path 0-1-2-3: node 1's neighbour pair (0,2) has no common
        // neighbour besides 1, but node 2 offers an open square slot.
        let adj = adj_of(4, &[(0, 1), (1, 2), (2, 3)]);
        let c = square_clustering_coefficients(&adj);
        assert_eq!(c, vec![0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn pendant_nodes_are_zero() {
        let adj = adj_of(2, &[(0, 1)]);
        assert_eq!(square_clustering_coefficients(&adj), vec![0.0, 0.0]);
    }

    #[test]
    fn k4_matches_networkx_value() {
        // networkx.square_clustering(K4) = 1/3 for every node: each neighbour
        // pair (u,w) has q=1 (the fourth node), theta=1, k=3 →
        // a = (3-(1+1+1))·2 = 0 ... q/(q+a) per pair: 1/(1+0)=1? Let's
        // compute: per pair q=1, a=(3-3)+(3-3)=0 → ratio 1? No — networkx
        // K4 square clustering is 1.0? Verify by the formula directly:
        // numerator = 3 pairs × q=1 = 3; denominator = 3 × (0+1) = 3 → 1.0.
        let adj = adj_of(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        for c in square_clustering_coefficients(&adj) {
            assert!((c - 1.0).abs() < 1e-12, "got {c}");
        }
    }

    #[test]
    fn open_square_lowers_coefficient() {
        // Square 0-1-2-3 plus pendant 4 on node 1: node 0's pair (1,3) still
        // closes via 2, but node 1 now has extra open slots through 4.
        let closed = adj_of(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let open = adj_of(5, &[(0, 1), (1, 2), (2, 3), (3, 0), (1, 4)]);
        let c_closed = square_clustering_of(&closed, EntityId(1));
        let c_open = square_clustering_of(&open, EntityId(1));
        assert!(c_open < c_closed);
        assert!(c_open > 0.0);
    }
}
