//! **Figure 3** — distribution of the local clustering coefficients of all
//! nodes, per dataset, with the dataset average (the red line; the paper
//! quotes WN18RR ≈ 0.059, by far the sparsest).

use crate::{write_json, DatasetRef, Scale, TextTable};
use kgfd_graph_stats::{
    average_clustering, local_clustering_coefficients, Histogram, UndirectedAdjacency,
};
use serde::Serialize;

const BINS: usize = 20;

/// One dataset's distribution.
#[derive(Debug, Clone, Serialize)]
pub struct ClusteringDistribution {
    /// Dataset name.
    pub dataset: String,
    /// Average coefficient over all nodes.
    pub average: f64,
    /// `(bin_center, count)` histogram series over `[0, 1]`.
    pub histogram: Vec<(f64, u64)>,
}

/// Computes all four distributions.
pub fn distributions(scale: Scale) -> Vec<ClusteringDistribution> {
    DatasetRef::ALL
        .iter()
        .map(|&d| {
            let data = d.load(scale);
            let adj = UndirectedAdjacency::from_store(&data.train);
            let coeffs = local_clustering_coefficients(&adj);
            let hist = Histogram::build(coeffs.iter().copied(), 0.0, 1.0, BINS);
            ClusteringDistribution {
                dataset: d.name().to_string(),
                average: average_clustering(&coeffs),
                histogram: hist.series(),
            }
        })
        .collect()
}

/// Renders the distributions and writes `fig3-<scale>.json`.
pub fn render(scale: Scale) -> String {
    let dists = distributions(scale);
    write_json(&format!("fig3-{}", scale.name()), &dists);
    let mut out = format!(
        "Figure 3 — clustering-coefficient distributions ({} scale)\n",
        scale.name()
    );
    let mut table = TextTable::new(["dataset", "avg coefficient", "nodes at 0", "nodes > 0.5"]);
    for d in &dists {
        let total: u64 = d.histogram.iter().map(|(_, c)| c).sum();
        let zeros = d.histogram.first().map(|&(_, c)| c).unwrap_or(0);
        let high: u64 = d
            .histogram
            .iter()
            .filter(|(center, _)| *center > 0.5)
            .map(|(_, c)| c)
            .sum();
        table.row([
            d.dataset.clone(),
            format!("{:.4}", d.average),
            format!("{:.1}%", 100.0 * zeros as f64 / total.max(1) as f64),
            format!("{:.1}%", 100.0 * high as f64 / total.max(1) as f64),
        ]);
    }
    out.push_str(&table.render());
    // Sparkline-style histogram per dataset for the terminal.
    for d in &dists {
        let max = d
            .histogram
            .iter()
            .map(|&(_, c)| c)
            .max()
            .unwrap_or(1)
            .max(1);
        let bars: String = d
            .histogram
            .iter()
            .map(|&(_, c)| {
                const LEVELS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
                LEVELS[((c * 8) as f64 / max as f64).round() as usize]
            })
            .collect();
        out.push_str(&format!(
            "{:<16} |{}| avg={:.4}\n",
            d.dataset, bars, d.average
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wn18rr_is_the_sparsest_dataset() {
        let dists = distributions(Scale::Mini);
        let avg = |name: &str| {
            dists
                .iter()
                .find(|d| d.dataset.contains(name))
                .unwrap()
                .average
        };
        assert!(avg("wn18rr") < avg("fb15k237"));
        assert!(avg("wn18rr") < avg("yago310"));
        assert!(avg("wn18rr") < avg("codexl"));
    }

    #[test]
    fn histograms_cover_all_nodes() {
        let dists = distributions(Scale::Mini);
        for d in &dists {
            let total: u64 = d.histogram.iter().map(|(_, c)| c).sum();
            assert!(total > 0, "{} histogram empty", d.dataset);
        }
    }
}
