//! **Figure 9** — impact of `top_n` on discovery efficiency, lines per
//! `max_candidates`: (a) CLUSTERING TRIANGLES, (b) UNIFORM RANDOM. The
//! paper's shape: efficiency rises with `top_n` (more candidates pass the
//! filter at zero extra cost), with the triangles strategy leveling off
//! around `top_n ≈ 200` (the elbow the paper declines in favor of 500).

use crate::{write_json, SweepResults, TextTable};
use fact_discovery::StrategyKind;

/// Renders both panels and writes `fig9-<scale>.json`.
pub fn render(results: &SweepResults) -> String {
    write_json(&format!("fig9-{}", results.scale.name()), &results.cells);
    let mut out = format!(
        "Figure 9 — efficiency vs top_n, lines per max_candidates (fb15k237-like, TransE, {} scale)\n",
        results.scale.name()
    );
    for (panel, strategy) in [
        ("(a)", StrategyKind::ClusteringTriangles),
        ("(b)", StrategyKind::UniformRandom),
    ] {
        let cells = results.series(strategy);
        if cells.is_empty() {
            continue;
        }
        let mut mcs: Vec<usize> = cells.iter().map(|c| c.max_candidates).collect();
        mcs.dedup();
        let mut tops: Vec<usize> = cells.iter().map(|c| c.top_n).collect();
        tops.sort_unstable();
        tops.dedup();

        out.push_str(&format!("\n{panel} {strategy}: facts/hour\n"));
        let mut headers = vec!["top_n".to_string()];
        headers.extend(mcs.iter().map(|m| format!("mc={m}")));
        let mut table = TextTable::new(headers);
        for &t in &tops {
            let mut row = vec![t.to_string()];
            for &mc in &mcs {
                row.push(
                    results
                        .at(strategy, mc, t)
                        .map_or("-".into(), |c| format!("{:.0}", c.facts_per_hour)),
                );
            }
            table.row(row);
        }
        out.push_str(&table.render());
    }
    out
}
