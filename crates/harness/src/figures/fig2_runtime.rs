//! **Figure 2** — runtime of the discovery algorithm per strategy × model,
//! grouped by dataset. The paper's shape: UNIFORM RANDOM / ENTITY FREQUENCY
//! / GRAPH DEGREE form the fast group, the triangle-based strategies the
//! slow group, and WN18RR is fast across the board (few relations, sparse).

use crate::figures::grid_matrix;
use crate::{write_json, GridResults};

/// Renders the runtime matrices and writes `fig2-<scale>.json`.
pub fn render(results: &GridResults) -> String {
    write_json(&format!("fig2-{}", results.scale.name()), &results.cells);
    let body = grid_matrix(results, "discovery runtime (s)", |c| {
        format!("{:.2}", c.runtime_s)
    });
    format!(
        "Figure 2 — discovery runtime by strategy and model ({} scale, top_n={}, max_candidates={})\n{}",
        results.scale.name(),
        results.top_n,
        results.max_candidates,
        body
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GridCell, Scale};
    use fact_discovery::StrategyKind;
    use kgfd_embed::ModelKind;

    fn fake_results() -> GridResults {
        let mut cells = Vec::new();
        for strategy in StrategyKind::PAPER_GRID {
            for model in ModelKind::PAPER_GRID {
                cells.push(GridCell {
                    dataset: crate::DatasetRef::Fb15k237,
                    model,
                    strategy,
                    runtime_s: 1.5,
                    preparation_s: 0.1,
                    candidates: 100,
                    facts: 10,
                    mrr: 0.1,
                    facts_per_hour: 100.0,
                });
            }
        }
        GridResults {
            scale: Scale::Mini,
            top_n: 50,
            max_candidates: 100,
            cells,
        }
    }

    #[test]
    fn render_emits_one_matrix_per_dataset_present() {
        let s = render(&fake_results());
        assert!(s.contains("Figure 2"));
        assert!(s.contains("fb15k237-like"));
        assert!(!s.contains("wn18rr-like"), "absent datasets are skipped");
        // All five strategy abbreviations appear as rows.
        for a in ["UR", "EF", "GD", "CC", "CT"] {
            assert!(s.contains(a));
        }
    }
}
