//! **Figure 8** — fact quality (MRR) on FB15K-237 with TransE and
//! CLUSTERING TRIANGLES: (a) vs `max_candidates` at fixed `top_n`,
//! (b) vs `top_n` at fixed `max_candidates`. The paper's shape: MRR is
//! stable in `max_candidates` but *decreases* as `top_n` grows (looser
//! filter → lower-ranked facts admitted).

use crate::{write_json, SweepResults, TextTable};
use fact_discovery::StrategyKind;

/// Renders both panels and writes `fig8-<scale>.json`.
pub fn render(results: &SweepResults) -> String {
    write_json(&format!("fig8-{}", results.scale.name()), &results.cells);
    let strategy = StrategyKind::ClusteringTriangles;
    let cells = results.series(strategy);
    let mut mcs: Vec<usize> = cells.iter().map(|c| c.max_candidates).collect();
    mcs.dedup();
    let mut tops: Vec<usize> = cells.iter().map(|c| c.top_n).collect();
    tops.sort_unstable();
    tops.dedup();
    let pivot_top = *tops.last().unwrap_or(&0);
    let pivot_mc = *mcs.last().unwrap_or(&0);

    let mut out = format!(
        "Figure 8 — MRR under hyperparameter sweeps ({strategy}, fb15k237-like, TransE, {} scale)\n",
        results.scale.name()
    );

    out.push_str(&format!(
        "\n(a) MRR vs max_candidates (top_n = {pivot_top})\n"
    ));
    let mut a = TextTable::new(["max_candidates", "MRR", "facts"]);
    for &mc in &mcs {
        if let Some(c) = results.at(strategy, mc, pivot_top) {
            a.row([mc.to_string(), format!("{:.4}", c.mrr), c.facts.to_string()]);
        }
    }
    out.push_str(&a.render());

    out.push_str(&format!(
        "\n(b) MRR vs top_n (max_candidates = {pivot_mc})\n"
    ));
    let mut b = TextTable::new(["top_n", "MRR", "facts"]);
    for &t in &tops {
        if let Some(c) = results.at(strategy, pivot_mc, t) {
            b.row([t.to_string(), format!("{:.4}", c.mrr), c.facts.to_string()]);
        }
    }
    out.push_str(&b.render());
    out
}
