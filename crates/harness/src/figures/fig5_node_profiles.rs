//! **Figure 5** — per-node triangle counts (a) vs. clustering coefficients
//! (b) on FB15K-237, indexed by node. The paper's point (§4.2.2): the two
//! measures barely correlate — a node's coefficient "fluctuates regardless
//! of its triangle value", which is why CLUSTERING TRIANGLES tracks
//! popularity while CLUSTERING COEFFICIENT does not.

use crate::figures::pearson;
use crate::{write_json, DatasetRef, Scale};
use kgfd_graph_stats::{
    clustering_from_triangles, local_triangle_counts, occurrence_degrees, UndirectedAdjacency,
};
use serde::Serialize;

/// The two per-node series plus their correlations.
#[derive(Debug, Clone, Serialize)]
pub struct NodeProfiles {
    /// Dataset name.
    pub dataset: String,
    /// Per-node triangle counts (Figure 5a).
    pub triangles: Vec<f64>,
    /// Per-node clustering coefficients (Figure 5b).
    pub coefficients: Vec<f64>,
    /// Pearson correlation triangles ↔ coefficients (expected: weak).
    pub triangle_coefficient_corr: f64,
    /// Pearson correlation triangles ↔ degree (expected: strong —
    /// triangles are a popularity measure).
    pub triangle_degree_corr: f64,
    /// Pearson correlation coefficient ↔ degree (expected: weak/negative).
    pub coefficient_degree_corr: f64,
}

/// Computes the profiles on the FB15K-237-like dataset.
pub fn profiles(scale: Scale) -> NodeProfiles {
    let data = DatasetRef::Fb15k237.load(scale);
    let adj = UndirectedAdjacency::from_store(&data.train);
    let tri_u = local_triangle_counts(&adj);
    let coefficients = clustering_from_triangles(&adj, &tri_u);
    let triangles: Vec<f64> = tri_u.into_iter().map(|t| t as f64).collect();
    let degrees: Vec<f64> = occurrence_degrees(&data.train)
        .into_iter()
        .map(|d| d as f64)
        .collect();
    NodeProfiles {
        dataset: DatasetRef::Fb15k237.name().to_string(),
        triangle_coefficient_corr: pearson(&triangles, &coefficients),
        triangle_degree_corr: pearson(&triangles, &degrees),
        coefficient_degree_corr: pearson(&coefficients, &degrees),
        triangles,
        coefficients,
    }
}

/// Renders Figure 5's analysis and writes `fig5-<scale>.json`.
pub fn render(scale: Scale) -> String {
    let p = profiles(scale);
    write_json(&format!("fig5-{}", scale.name()), &p);
    format!(
        "Figure 5 — per-node triangles vs clustering coefficient ({}, {} scale)\n\
         nodes: {}\n\
         corr(triangles, coefficient) = {:+.3}   (paper: weak — the measures diverge)\n\
         corr(triangles, degree)      = {:+.3}   (paper: strong — triangles track popularity)\n\
         corr(coefficient, degree)    = {:+.3}   (paper: weak/negative — hubs have low coefficients)\n",
        p.dataset,
        scale.name(),
        p.triangles.len(),
        p.triangle_coefficient_corr,
        p.triangle_degree_corr,
        p.coefficient_degree_corr,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangles_track_degree_far_better_than_coefficient_does() {
        // The structural claim behind §4.2.2's Figure 5 analysis.
        let p = profiles(Scale::Mini);
        assert!(
            p.triangle_degree_corr > 0.5,
            "triangles should track popularity: {}",
            p.triangle_degree_corr
        );
        assert!(
            p.triangle_degree_corr > p.coefficient_degree_corr + 0.3,
            "coefficient must correlate with degree far less: {} vs {}",
            p.triangle_degree_corr,
            p.coefficient_degree_corr
        );
    }

    #[test]
    fn series_are_parallel() {
        let p = profiles(Scale::Mini);
        assert_eq!(p.triangles.len(), p.coefficients.len());
    }
}
