//! **§4.3 prose** — the CLUSTERING SQUARES cost blow-up. The paper excluded
//! the strategy after one FB15K-237 run took ~54 hours (vs 2–3 hours for the
//! others) while yielding only 98 facts/hour. This regenerator runs SQUARES
//! and TRIANGLES side by side and reports the preparation-cost ratio, which
//! is where the blow-up lives (the C4 coefficient is quadratic per node with
//! a neighbourhood intersection inside).

use crate::{trained_model, write_json, DatasetRef, Scale};
use fact_discovery::{discover_facts, DiscoveryConfig, Measures, StrategyKind};
use kgfd_embed::ModelKind;
use serde::Serialize;

/// Side-by-side cost measurements.
#[derive(Debug, Clone, Serialize)]
pub struct SquaresCost {
    /// Strategy measured.
    pub strategy: String,
    /// Strategy-measure preparation seconds.
    pub preparation_s: f64,
    /// Total runtime seconds.
    pub runtime_s: f64,
    /// Facts discovered.
    pub facts: usize,
    /// Facts per hour.
    pub facts_per_hour: f64,
}

/// Runs the comparison on FB15K-237-like with TransE.
pub fn measure(scale: Scale, top_n: usize, max_candidates: usize) -> Vec<SquaresCost> {
    let dataset = DatasetRef::Fb15k237;
    let data = dataset.load(scale);
    let model = trained_model(dataset, ModelKind::TransE, scale, &data);
    [
        StrategyKind::ClusteringTriangles,
        StrategyKind::ClusteringSquares,
    ]
    .into_iter()
    .map(|strategy| {
        let config = DiscoveryConfig {
            strategy,
            top_n,
            max_candidates,
            seed: 5,
            ..DiscoveryConfig::default()
        };
        // Time the measure construction directly: `report.preparation` is
        // amortized by the engine's (fingerprint, strategy) cache, but this
        // ablation is about the *intrinsic* cost of building the measure.
        let prep_start = std::time::Instant::now();
        let _ = Measures::compute(strategy, &data.train);
        let preparation_s = prep_start.elapsed().as_secs_f64();
        let report = discover_facts(model.as_ref(), &data.train, &config);
        SquaresCost {
            strategy: strategy.name().to_string(),
            preparation_s,
            runtime_s: report.total.as_secs_f64(),
            facts: report.facts.len(),
            facts_per_hour: report.facts_per_hour(),
        }
    })
    .collect()
}

/// Renders the ablation and writes `squares-cost-<scale>.json`.
pub fn render(scale: Scale) -> String {
    let (top_n, max_candidates) = match scale {
        Scale::Standard => (500, 500),
        Scale::Mini => (50, 100),
    };
    let rows = measure(scale, top_n, max_candidates);
    write_json(&format!("squares-cost-{}", scale.name()), &rows);
    let ratio = if rows[0].preparation_s > 0.0 {
        rows[1].preparation_s / rows[0].preparation_s
    } else {
        f64::INFINITY
    };
    let mut out = format!(
        "§4.3 ablation — CLUSTERING SQUARES cost ({} scale, fb15k237-like, TransE)\n",
        scale.name()
    );
    let mut table =
        crate::TextTable::new(["strategy", "prep (s)", "total (s)", "facts", "facts/hour"]);
    for r in &rows {
        table.row([
            r.strategy.clone(),
            format!("{:.3}", r.preparation_s),
            format!("{:.2}", r.runtime_s),
            r.facts.to_string(),
            format!("{:.0}", r.facts_per_hour),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "squares/triangles preparation-cost ratio: {ratio:.1}× \
         (paper: ~54 h vs 2–3 h ≈ 20×)\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squares_preparation_dominates_triangles() {
        let rows = measure(Scale::Mini, 20, 40);
        let triangles = &rows[0];
        let squares = &rows[1];
        assert!(
            squares.preparation_s > triangles.preparation_s,
            "squares {} should cost more than triangles {}",
            squares.preparation_s,
            triangles.preparation_s
        );
    }
}
