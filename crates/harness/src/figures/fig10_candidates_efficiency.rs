//! **Figure 10** — impact of `max_candidates` on efficiency at the pivot
//! `top_n`: (a) CLUSTERING TRIANGLES, (b) UNIFORM RANDOM. The paper's
//! shape: triangles' efficiency levels off near `max_candidates = 500`
//! (their chosen value); uniform random is noisier.

use crate::{write_json, SweepResults, TextTable};
use fact_discovery::StrategyKind;

/// Renders both panels and writes `fig10-<scale>.json`.
pub fn render(results: &SweepResults) -> String {
    write_json(&format!("fig10-{}", results.scale.name()), &results.cells);
    let mut tops: Vec<usize> = results.cells.iter().map(|c| c.top_n).collect();
    tops.sort_unstable();
    tops.dedup();
    let pivot_top = *tops.last().unwrap_or(&0);

    let mut out = format!(
        "Figure 10 — efficiency vs max_candidates (top_n = {pivot_top}, fb15k237-like, TransE, {} scale)\n",
        results.scale.name()
    );
    for (panel, strategy) in [
        ("(a)", StrategyKind::ClusteringTriangles),
        ("(b)", StrategyKind::UniformRandom),
    ] {
        let cells = results.series(strategy);
        if cells.is_empty() {
            continue;
        }
        let mut mcs: Vec<usize> = cells.iter().map(|c| c.max_candidates).collect();
        mcs.dedup();

        out.push_str(&format!("\n{panel} {strategy}\n"));
        let mut table = TextTable::new(["max_candidates", "facts/hour", "facts", "runtime (s)"]);
        for &mc in &mcs {
            if let Some(c) = results.at(strategy, mc, pivot_top) {
                table.row([
                    mc.to_string(),
                    format!("{:.0}", c.facts_per_hour),
                    c.facts.to_string(),
                    format!("{:.2}", c.runtime_s),
                ]);
            }
        }
        out.push_str(&table.render());
    }
    out
}
