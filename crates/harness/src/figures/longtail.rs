//! **§6 analysis** — the long-tail problem, quantified.
//!
//! The paper's first "lesson learned": all non-uniform strategies sample
//! from dense regions, leaving long-tail entities — where discovery is most
//! needed — unexplored. This regenerator measures it two ways:
//!
//! 1. the popularity-stratified MRR gap of the trained model itself
//!    ([`kgfd_eval::evaluate_stratified`]);
//! 2. the fraction of discovered facts touching only above-median-degree
//!    entities, per strategy, including the `exploration_epsilon` remedy.

use crate::{trained_model, write_json, DatasetRef, Scale, TextTable};
use fact_discovery::{discover_facts, DiscoveryConfig, StrategyKind};
use kgfd_embed::ModelKind;
use kgfd_graph_stats::occurrence_degrees;
use serde::Serialize;

/// Long-tail coverage of one discovery configuration.
#[derive(Debug, Clone, Serialize)]
pub struct LongTailRow {
    /// Label of the configuration.
    pub config: String,
    /// Facts discovered.
    pub facts: usize,
    /// Fraction of facts where both entities are above the median degree.
    pub head_fraction: f64,
    /// Fraction of facts touching at least one at-or-below-median entity.
    pub tail_touch_fraction: f64,
    /// MRR of the discovered facts.
    pub mrr: f64,
}

/// Measures long-tail coverage per strategy (plus the ε-exploration remedy).
pub fn rows(scale: Scale) -> Vec<LongTailRow> {
    let dataset = DatasetRef::Fb15k237;
    let data = dataset.load(scale);
    let model = trained_model(dataset, ModelKind::TransE, scale, &data);
    let degrees = occurrence_degrees(&data.train);
    let mut sorted: Vec<u64> = degrees.iter().copied().filter(|&d| d > 0).collect();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];

    let (top_n, max_candidates) = match scale {
        Scale::Standard => (500, 500),
        Scale::Mini => (50, 100),
    };
    let mut configs: Vec<(String, DiscoveryConfig)> = StrategyKind::PAPER_GRID
        .iter()
        .map(|&strategy| {
            (
                strategy.abbrev().to_string(),
                DiscoveryConfig {
                    strategy,
                    top_n,
                    max_candidates,
                    seed: 13,
                    ..DiscoveryConfig::default()
                },
            )
        })
        .collect();
    configs.push((
        "EF + ε=0.5".to_string(),
        DiscoveryConfig {
            strategy: StrategyKind::EntityFrequency,
            top_n,
            max_candidates,
            exploration_epsilon: 0.5,
            seed: 13,
            ..DiscoveryConfig::default()
        },
    ));

    configs
        .into_iter()
        .map(|(label, config)| {
            let report = discover_facts(model.as_ref(), &data.train, &config);
            let total = report.facts.len().max(1);
            let head = report
                .facts
                .iter()
                .filter(|f| {
                    degrees[f.triple.subject.index()] > median
                        && degrees[f.triple.object.index()] > median
                })
                .count();
            LongTailRow {
                config: label,
                facts: report.facts.len(),
                head_fraction: head as f64 / total as f64,
                tail_touch_fraction: 1.0 - head as f64 / total as f64,
                mrr: report.mrr(),
            }
        })
        .collect()
}

/// Renders the analysis and writes `longtail-<scale>.json`.
pub fn render(scale: Scale) -> String {
    let rows = rows(scale);
    write_json(&format!("longtail-{}", scale.name()), &rows);
    let mut out = format!(
        "§6 analysis — long-tail coverage of discovered facts \
         (fb15k237-like, TransE, {} scale)\n",
        scale.name()
    );
    let mut table = TextTable::new(["config", "facts", "head-only %", "touches tail %", "MRR"]);
    for r in &rows {
        table.row([
            r.config.clone(),
            r.facts.to_string(),
            format!("{:.1}", r.head_fraction * 100.0),
            format!("{:.1}", r.tail_touch_fraction * 100.0),
            format!("{:.4}", r.mrr),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "expected: popularity-driven strategies concentrate on head entities; \
         ε-exploration buys tail coverage at some MRR cost (the paper's \
         exploration-vs-exploitation trade-off).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exploration_increases_tail_coverage() {
        let rows = rows(Scale::Mini);
        let ef = rows.iter().find(|r| r.config == "EF").unwrap();
        let explore = rows.iter().find(|r| r.config.contains("ε=0.5")).unwrap();
        assert!(
            explore.tail_touch_fraction >= ef.tail_touch_fraction,
            "ε-mixing must not reduce tail coverage: {} vs {}",
            explore.tail_touch_fraction,
            ef.tail_touch_fraction
        );
    }

    #[test]
    fn uniform_reaches_more_tail_than_frequency() {
        let rows = rows(Scale::Mini);
        let ur = rows.iter().find(|r| r.config == "UR").unwrap();
        let ef = rows.iter().find(|r| r.config == "EF").unwrap();
        assert!(
            ur.tail_touch_fraction >= ef.tail_touch_fraction,
            "UR {} vs EF {}",
            ur.tail_touch_fraction,
            ef.tail_touch_fraction
        );
    }
}
