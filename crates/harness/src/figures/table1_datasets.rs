//! **Table 1** — metadata of the datasets (training/validation/test triple
//! counts, entities, relations), extended with the structural measurements
//! (average clustering, triples per entity) the analysis sections quote.

use crate::{write_json, DatasetRef, Scale, TextTable};
use kgfd_graph_stats::GraphSummary;
use serde::Serialize;

/// One rendered row.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Dataset name.
    pub dataset: String,
    /// Training triples.
    pub training: usize,
    /// Validation triples.
    pub validation: usize,
    /// Test triples.
    pub test: usize,
    /// Entities.
    pub entities: usize,
    /// Relations.
    pub relations: usize,
    /// Average local clustering coefficient (Figure 3's red line).
    pub avg_clustering: f64,
    /// Average triples per entity (sparsity; §4.2.1).
    pub triples_per_entity: f64,
}

/// Computes the rows at the given scale.
pub fn rows(scale: Scale) -> Vec<Table1Row> {
    DatasetRef::ALL
        .iter()
        .map(|&d| {
            let data = d.load(scale);
            let meta = data.metadata();
            let summary = GraphSummary::compute(&data.train);
            Table1Row {
                dataset: meta.name,
                training: meta.training,
                validation: meta.validation,
                test: meta.test,
                entities: meta.entities,
                relations: meta.relations,
                avg_clustering: summary.avg_clustering,
                triples_per_entity: summary.avg_triples_per_entity,
            }
        })
        .collect()
}

/// Renders Table 1 and writes `table1-<scale>.json`.
pub fn render(scale: Scale) -> String {
    let rows = rows(scale);
    write_json(&format!("table1-{}", scale.name()), &rows);
    let mut table = TextTable::new([
        "Dataset",
        "Training",
        "Validation",
        "Test",
        "Entities",
        "Relations",
        "AvgClust",
        "Tri/Ent",
    ]);
    for r in &rows {
        table.row([
            r.dataset.clone(),
            r.training.to_string(),
            r.validation.to_string(),
            r.test.to_string(),
            r.entities.to_string(),
            r.relations.to_string(),
            format!("{:.4}", r.avg_clustering),
            format!("{:.1}", r.triples_per_entity),
        ]);
    }
    format!(
        "Table 1 — dataset metadata ({} scale)\n{}",
        scale.name(),
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_rows_have_table1_shape() {
        let rows = rows(Scale::Mini);
        assert_eq!(rows.len(), 4);
        let wn = rows.iter().find(|r| r.dataset.contains("wn18rr")).unwrap();
        assert_eq!(wn.relations, 11, "WN18RR keeps its 11 relations");
        let fb = rows.iter().find(|r| r.dataset.contains("fb15k")).unwrap();
        assert!(
            fb.triples_per_entity > 3.0 * wn.triples_per_entity,
            "FB15K-237 is much denser than WN18RR"
        );
    }

    #[test]
    fn render_contains_all_datasets() {
        let s = render(Scale::Mini);
        for d in ["fb15k237", "wn18rr", "yago310", "codexl"] {
            assert!(s.contains(d), "missing {d}");
        }
    }
}
