//! **Figure 6** — discovery efficiency (facts per hour) per strategy ×
//! model, grouped by dataset. The paper's shape: CLUSTERING TRIANGLES leads
//! on average; UNIFORM RANDOM and CLUSTERING COEFFICIENT trail; the large
//! YAGO3-10 shows the lowest efficiency despite decent density.

use crate::figures::grid_matrix;
use crate::{write_json, GridResults};

/// Renders the efficiency matrices and writes `fig6-<scale>.json`.
pub fn render(results: &GridResults) -> String {
    write_json(&format!("fig6-{}", results.scale.name()), &results.cells);
    let body = grid_matrix(results, "efficiency (facts/hour)", |c| {
        format!("{:.0}", c.facts_per_hour)
    });
    format!(
        "Figure 6 — discovery efficiency by strategy and model ({} scale)\n{}",
        results.scale.name(),
        body
    )
}
