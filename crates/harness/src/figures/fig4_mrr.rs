//! **Figure 4** — MRR of the discovered facts per strategy × model, grouped
//! by dataset. The paper's shape: ENTITY FREQUENCY and CLUSTERING TRIANGLES
//! lead; UNIFORM RANDOM and CLUSTERING COEFFICIENT trail.

use crate::figures::grid_matrix;
use crate::{write_json, GridResults};

/// Renders the MRR matrices and writes `fig4-<scale>.json`.
pub fn render(results: &GridResults) -> String {
    write_json(&format!("fig4-{}", results.scale.name()), &results.cells);
    let body = grid_matrix(results, "MRR of discovered facts", |c| {
        format!("{:.4}", c.mrr)
    });
    format!(
        "Figure 4 — fact quality (MRR) by strategy and model ({} scale, top_n={})\n{}",
        results.scale.name(),
        results.top_n,
        body
    )
}
