//! **Figure 7** — runtime of fact discovery on FB15K-237 with TransE as
//! `max_candidates` grows, one line per `top_n`. The paper's shape: the
//! `top_n` lines overlap (the filter costs nothing) while runtime rises
//! roughly linearly with `max_candidates`.

use crate::{write_json, SweepResults, TextTable};
use fact_discovery::StrategyKind;

/// Renders the runtime sweep and writes `fig7-<scale>.json`.
pub fn render(results: &SweepResults) -> String {
    write_json(&format!("fig7-{}", results.scale.name()), &results.cells);
    let mut out = format!(
        "Figure 7 — runtime vs max_candidates, lines per top_n (fb15k237-like, TransE, {} scale)\n",
        results.scale.name()
    );
    for strategy in [
        StrategyKind::UniformRandom,
        StrategyKind::ClusteringTriangles,
    ] {
        let cells = results.series(strategy);
        if cells.is_empty() {
            continue;
        }
        let mut mcs: Vec<usize> = cells.iter().map(|c| c.max_candidates).collect();
        mcs.dedup();
        let mut tops: Vec<usize> = cells.iter().map(|c| c.top_n).collect();
        tops.sort_unstable();
        tops.dedup();

        out.push_str(&format!("\n{strategy}: runtime (s)\n"));
        let mut headers = vec!["max_candidates".to_string()];
        headers.extend(tops.iter().map(|t| format!("top_n={t}")));
        let mut table = TextTable::new(headers);
        for &mc in &mcs {
            let mut row = vec![mc.to_string()];
            for &t in &tops {
                row.push(
                    results
                        .at(strategy, mc, t)
                        .map_or("-".into(), |c| format!("{:.2}", c.runtime_s)),
                );
            }
            table.row(row);
        }
        out.push_str(&table.render());
    }
    out
}
