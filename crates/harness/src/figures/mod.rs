//! One regenerator per table/figure of the paper's evaluation (the
//! per-experiment index of DESIGN.md §4). Each `render` function returns the
//! human-readable report and writes a machine-readable JSON series to
//! `target/kgfd-results/`.

pub mod fig10_candidates_efficiency;
pub mod fig2_runtime;
pub mod fig3_clustering_dist;
pub mod fig4_mrr;
pub mod fig5_node_profiles;
pub mod fig6_efficiency;
pub mod fig7_runtime_sweep;
pub mod fig8_quality_sweep;
pub mod fig9_topn_efficiency;
pub mod longtail;
pub mod squares_cost;
pub mod table1_datasets;

use crate::{GridCell, GridResults, TextTable};
use fact_discovery::StrategyKind;
use kgfd_embed::ModelKind;

/// Renders a per-dataset "strategy rows × model columns" matrix from grid
/// cells — the layout of the paper's grouped bar charts (Figures 2, 4, 6).
pub(crate) fn grid_matrix(
    results: &GridResults,
    metric_name: &str,
    metric: impl Fn(&GridCell) -> String,
) -> String {
    let mut out = String::new();
    for dataset in crate::DatasetRef::ALL {
        let cells = results.for_dataset(dataset);
        if cells.is_empty() {
            continue;
        }
        out.push_str(&format!("\n{dataset} — {metric_name}\n"));
        let mut headers = vec!["strategy".to_string()];
        headers.extend(ModelKind::PAPER_GRID.iter().map(|m| m.name().to_string()));
        let mut table = TextTable::new(headers);
        for strategy in StrategyKind::PAPER_GRID {
            let mut row = vec![strategy.abbrev().to_string()];
            for model in ModelKind::PAPER_GRID {
                let cell = cells
                    .iter()
                    .find(|c| c.strategy == strategy && c.model == model);
                row.push(cell.map_or("-".into(), |c| metric(c)));
            }
            table.row(row);
        }
        out.push_str(&table.render());
    }
    out
}

/// Pearson correlation coefficient of two equal-length series.
pub(crate) fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len() as f64;
    if a.is_empty() {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_detects_perfect_correlation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_constant_series_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }
}
