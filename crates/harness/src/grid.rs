//! Running the paper's experimental grid (§4.2): every dataset × model ×
//! strategy combination, measuring runtime, fact quality (MRR), and
//! discovery efficiency — the shared input of Figures 2, 4, and 6.

use crate::{trained_model_threaded, DatasetRef, Scale};
use fact_discovery::{discover_facts, DiscoveryConfig, StrategyKind};
use kgfd_embed::ModelKind;
use serde::{Deserialize, Serialize};

/// Measurements of one grid cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridCell {
    /// Dataset of this cell.
    pub dataset: DatasetRef,
    /// KGE model of this cell.
    pub model: ModelKind,
    /// Sampling strategy of this cell.
    pub strategy: StrategyKind,
    /// Total discovery runtime in seconds (Figure 2's y-axis).
    pub runtime_s: f64,
    /// Strategy-measure preparation time in seconds (the superlinear part).
    pub preparation_s: f64,
    /// Candidates generated across relations.
    pub candidates: usize,
    /// Facts discovered (rank ≤ top_n).
    pub facts: usize,
    /// MRR of the discovered facts (Figure 4's y-axis).
    pub mrr: f64,
    /// Facts per hour (Figure 6's y-axis).
    pub facts_per_hour: f64,
}

/// All cells of one grid run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GridResults {
    /// Scale the grid ran at.
    pub scale: Scale,
    /// `top_n` used (paper: 500).
    pub top_n: usize,
    /// `max_candidates` used (paper: 500).
    pub max_candidates: usize,
    /// One cell per configuration, dataset-major order.
    pub cells: Vec<GridCell>,
}

impl GridResults {
    /// Cells of one dataset, in (model, strategy) order.
    pub fn for_dataset(&self, dataset: DatasetRef) -> Vec<&GridCell> {
        self.cells.iter().filter(|c| c.dataset == dataset).collect()
    }

    /// Mean of `f` over cells matching `strategy` (across datasets/models).
    pub fn strategy_mean(&self, strategy: StrategyKind, f: impl Fn(&GridCell) -> f64) -> f64 {
        let cells: Vec<_> = self
            .cells
            .iter()
            .filter(|c| c.strategy == strategy)
            .collect();
        if cells.is_empty() {
            return 0.0;
        }
        cells.iter().map(|c| f(c)).sum::<f64>() / cells.len() as f64
    }
}

/// Grid-run options; paper defaults per §4.3.2.
#[derive(Debug, Clone)]
pub struct GridOptions {
    /// Quality threshold (paper: 500). Mini scale wants a smaller value
    /// because the mini graphs only have ~100–600 entities.
    pub top_n: usize,
    /// Candidate budget per relation (paper: 500).
    pub max_candidates: usize,
    /// Discovery seed.
    pub seed: u64,
    /// Ranking threads.
    pub threads: usize,
    /// Training threads for zoo models that miss the disk cache. The cache
    /// is thread-count independent, so this only affects wall-clock time.
    pub train_threads: usize,
    /// Datasets to include (defaults to all four).
    pub datasets: Vec<DatasetRef>,
    /// Models to include (defaults to the paper's five).
    pub models: Vec<ModelKind>,
    /// Strategies to include (defaults to the paper's five).
    pub strategies: Vec<StrategyKind>,
    /// Streaming chunk size for discovery (behaviourally invisible; tunes
    /// the engine's working-set bound).
    pub chunk_size: usize,
    /// Per-relation bounded fact heap (`None` = keep everything in
    /// `top_n`, the paper's behaviour).
    pub top_k: Option<usize>,
    /// When set, each grid cell writes its structured events (spans,
    /// metrics, manifest) to
    /// `<dir>/grid-<dataset>-<model>-<strategy>.jsonl`.
    pub metrics_dir: Option<std::path::PathBuf>,
}

impl GridOptions {
    /// Paper-default options for the given scale.
    pub fn for_scale(scale: Scale) -> Self {
        let (top_n, max_candidates) = match scale {
            Scale::Standard => (500, 500),
            // Mini graphs have ~100–600 entities; a top-500 filter would be
            // a no-op. Scale the knobs with the graph.
            Scale::Mini => (50, 100),
        };
        GridOptions {
            top_n,
            max_candidates,
            seed: 7,
            threads: std::thread::available_parallelism()
                .map(|p| p.get().min(8))
                .unwrap_or(1),
            train_threads: kgfd_embed::TrainConfig::default_threads(),
            datasets: DatasetRef::ALL.to_vec(),
            models: ModelKind::PAPER_GRID.to_vec(),
            strategies: StrategyKind::PAPER_GRID.to_vec(),
            chunk_size: DiscoveryConfig::default().chunk_size,
            top_k: None,
            metrics_dir: None,
        }
    }
}

/// Runs the grid at the given scale. Models come from the zoo (trained once,
/// disk-cached); each (dataset, model, strategy) cell is one discovery run.
pub fn run_grid(scale: Scale, options: &GridOptions) -> GridResults {
    // Central thread policy: zero is a caller bug (loud), over-wide
    // requests are clamped to the pool with a warning event.
    let threads =
        kgfd_pool::resolve_threads(options.threads).expect("grid options: threads must be >= 1");
    let train_threads = kgfd_pool::resolve_threads(options.train_threads)
        .expect("grid options: train_threads must be >= 1");
    let mut cells = Vec::new();
    for &dataset in &options.datasets {
        let data = dataset.load(scale);
        for &model_kind in &options.models {
            let model = trained_model_threaded(dataset, model_kind, scale, &data, train_threads);
            for &strategy in &options.strategies {
                let _cell = crate::cell_observer(
                    options.metrics_dir.as_deref(),
                    &format!(
                        "grid-{}-{}-{}",
                        dataset.name(),
                        model_kind.name(),
                        strategy.abbrev()
                    ),
                );
                kgfd_obs::set_phase(format!(
                    "grid:{}/{}/{}",
                    dataset.name(),
                    model_kind.name(),
                    strategy.abbrev()
                ));
                let cell_span = kgfd_obs::span_traced!(
                    "harness.grid.cell",
                    dataset = dataset.name(),
                    model = model_kind.name(),
                    strategy = strategy.abbrev()
                );
                let config = DiscoveryConfig {
                    strategy,
                    top_n: options.top_n,
                    max_candidates: options.max_candidates,
                    seed: options.seed,
                    threads,
                    chunk_size: options.chunk_size,
                    top_k: options.top_k,
                    ..DiscoveryConfig::default()
                };
                let report = discover_facts(model.as_ref(), &data.train, &config);
                drop(cell_span);
                kgfd_obs::progress(format!(
                    "[grid {}] {dataset} × {model_kind} × {strategy}: {} facts, {:.1}s",
                    scale.name(),
                    report.facts.len(),
                    report.total.as_secs_f64()
                ));
                // The manifest goes last so it closes the cell's JSONL file.
                let mut manifest = kgfd_obs::RunManifest::new("grid-cell");
                manifest.strategy = strategy.to_string();
                manifest.model = model_kind.to_string();
                manifest.seed = options.seed;
                manifest.dataset = kgfd_obs::DatasetShape {
                    entities: data.train.num_entities() as u64,
                    relations: data.train.num_relations() as u64,
                    triples: data.train.len() as u64,
                };
                manifest.wall_clock_s = report.total.as_secs_f64();
                manifest
                    .with_config("top_n", options.top_n)
                    .with_config("max_candidates", options.max_candidates)
                    .with_config("chunk_size", options.chunk_size)
                    .with_config("facts", report.facts.len())
                    .with_config(
                        "eval.rank.dedup_ratio",
                        kgfd_obs::gauge("eval.rank.dedup_ratio").get(),
                    )
                    .with_config(
                        "discover.stream.peak_buffer",
                        kgfd_obs::gauge("discover.stream.peak_buffer").get(),
                    )
                    .with_config(
                        "discover.cache.measures_hit",
                        kgfd_obs::counter("discover.cache.measures_hit").get(),
                    )
                    .emit();
                cells.push(GridCell {
                    dataset,
                    model: model_kind,
                    strategy,
                    runtime_s: report.total.as_secs_f64(),
                    preparation_s: report.preparation.as_secs_f64(),
                    candidates: report.candidates_generated(),
                    facts: report.facts.len(),
                    mrr: report.mrr(),
                    facts_per_hour: report.facts_per_hour(),
                });
            }
        }
    }
    GridResults {
        scale,
        top_n: options.top_n,
        max_candidates: options.max_candidates,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_grid_slice_runs_end_to_end() {
        let mut options = GridOptions::for_scale(Scale::Mini);
        options.datasets = vec![DatasetRef::Wn18rr];
        options.models = vec![ModelKind::DistMult];
        options.strategies = vec![StrategyKind::UniformRandom, StrategyKind::EntityFrequency];
        let results = run_grid(Scale::Mini, &options);
        assert_eq!(results.cells.len(), 2);
        for cell in &results.cells {
            assert!(cell.runtime_s > 0.0);
            assert!(cell.facts <= cell.candidates);
            assert!(cell.mrr <= 1.0);
        }
    }
}
