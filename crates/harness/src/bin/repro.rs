//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro [TARGET] [SCALE] [--quiet | --progress] [--metrics-dir DIR]
//!       [--threads N] [--trace-out FILE] [--flame-out FILE]
//!       [--serve-metrics ADDR]
//!   TARGET: all | table1 | fig2 | fig3 | fig4 | fig5 | fig6 | fig7 | fig8
//!           | fig9 | fig10 | squares | longtail | grid | sweep | experiments
//!           (default: all; `experiments` emits EXPERIMENTS.md content)
//!   SCALE:  mini | standard                             (default: mini)
//!   --quiet         suppress stderr entirely
//!   --progress      human-readable progress lines on stderr
//!   --metrics-dir   write one structured JSONL file per grid/sweep cell
//!   --threads       worker count for ranking and zoo training (results are
//!                   thread-count independent; defaults to KGFD_THREADS or
//!                   the CPU count, capped at 8)
//!   --trace-out     write the hierarchical span tree as Chrome trace JSON
//!   --flame-out     write the span tree as collapsed-stack flamegraph text
//!   --serve-metrics serve live /metrics, /healthz, /trace on ADDR while
//!                   the run is in flight
//! ```
//!
//! Text reports go to stdout; JSON series to `target/kgfd-results/`.

use kgfd_harness::{figures, run_grid, run_sweep, GridOptions, Scale, SweepOptions};
use std::sync::Arc;

fn main() {
    let mut positional: Vec<String> = Vec::new();
    let mut quiet = false;
    let mut progress = false;
    let mut metrics_dir: Option<std::path::PathBuf> = None;
    let mut threads: Option<usize> = None;
    let mut trace_out: Option<String> = None;
    let mut flame_out: Option<String> = None;
    let mut serve_metrics: Option<String> = None;
    let mut raw = std::env::args().skip(1);
    while let Some(arg) = raw.next() {
        match arg.as_str() {
            "--quiet" => quiet = true,
            "--progress" => progress = true,
            "--metrics-dir" => match raw.next() {
                Some(dir) => metrics_dir = Some(dir.into()),
                None => {
                    eprintln!("--metrics-dir needs a directory argument");
                    std::process::exit(2);
                }
            },
            "--trace-out" => match raw.next() {
                Some(path) => trace_out = Some(path),
                None => {
                    eprintln!("--trace-out needs a file argument");
                    std::process::exit(2);
                }
            },
            "--flame-out" => match raw.next() {
                Some(path) => flame_out = Some(path),
                None => {
                    eprintln!("--flame-out needs a file argument");
                    std::process::exit(2);
                }
            },
            "--serve-metrics" => match raw.next() {
                Some(addr) => serve_metrics = Some(addr),
                None => {
                    eprintln!("--serve-metrics needs an address argument");
                    std::process::exit(2);
                }
            },
            "--threads" => match raw
                .next()
                .and_then(|n| n.parse::<usize>().ok())
                .map(kgfd_pool::resolve_threads)
            {
                Some(Ok(n)) => threads = Some(n),
                _ => {
                    eprintln!("--threads needs a positive integer argument");
                    std::process::exit(2);
                }
            },
            _ => positional.push(arg),
        }
    }
    let _observer = kgfd_obs::scoped(if quiet {
        Arc::new(kgfd_obs::NullObserver) as Arc<dyn kgfd_obs::Observer>
    } else if progress {
        Arc::new(kgfd_obs::StderrProgress::new())
    } else {
        Arc::new(kgfd_obs::StderrProgress::warnings_only())
    });

    if trace_out.is_some() || flame_out.is_some() || serve_metrics.is_some() {
        kgfd_obs::enable_tracing();
    }
    let server = serve_metrics.map(|addr| {
        kgfd_obs::set_phase("repro:start");
        match kgfd_obs::MetricsServer::start(&addr) {
            Ok(server) => {
                if !quiet {
                    eprintln!("serving metrics on http://{}", server.local_addr());
                }
                server
            }
            Err(e) => {
                eprintln!("cannot serve metrics on {addr}: {e}");
                std::process::exit(2);
            }
        }
    });
    let root_span = kgfd_obs::Span::start_traced("repro.run");

    let target = positional.first().map(String::as_str).unwrap_or("all");
    let scale = match positional.get(1).map(String::as_str) {
        Some("standard") => Scale::Standard,
        Some("mini") | None => Scale::Mini,
        Some(other) => {
            eprintln!("unknown scale {other:?}; use mini or standard");
            std::process::exit(2);
        }
    };

    let needs_grid = matches!(
        target,
        "all" | "grid" | "fig2" | "fig4" | "fig6" | "experiments"
    );
    let needs_sweep = matches!(
        target,
        "all" | "sweep" | "fig7" | "fig8" | "fig9" | "fig10" | "experiments"
    );

    let grid = needs_grid.then(|| {
        let mut options = GridOptions::for_scale(scale);
        options.metrics_dir = metrics_dir.clone();
        if let Some(n) = threads {
            options.threads = n;
            options.train_threads = n;
        }
        run_grid(scale, &options)
    });
    let sweep = needs_sweep.then(|| {
        let mut options = SweepOptions::for_scale(scale);
        options.metrics_dir = metrics_dir.clone();
        if let Some(n) = threads {
            options.threads = n;
            options.train_threads = n;
        }
        run_sweep(scale, &options)
    });

    let mut sections: Vec<String> = Vec::new();
    let want = |name: &str| target == "all" || target == name;
    if want("table1") {
        sections.push(figures::table1_datasets::render(scale));
    }
    if let Some(grid) = &grid {
        if want("fig2") || target == "grid" {
            sections.push(figures::fig2_runtime::render(grid));
        }
        if want("fig4") || target == "grid" {
            sections.push(figures::fig4_mrr::render(grid));
        }
        if want("fig6") || target == "grid" {
            sections.push(figures::fig6_efficiency::render(grid));
        }
    }
    if want("fig3") {
        sections.push(figures::fig3_clustering_dist::render(scale));
    }
    if want("fig5") {
        sections.push(figures::fig5_node_profiles::render(scale));
    }
    if let Some(sweep) = &sweep {
        if want("fig7") || target == "sweep" {
            sections.push(figures::fig7_runtime_sweep::render(sweep));
        }
        if want("fig8") || target == "sweep" {
            sections.push(figures::fig8_quality_sweep::render(sweep));
        }
        if want("fig9") || target == "sweep" {
            sections.push(figures::fig9_topn_efficiency::render(sweep));
        }
        if want("fig10") || target == "sweep" {
            sections.push(figures::fig10_candidates_efficiency::render(sweep));
        }
    }
    if want("squares") {
        sections.push(figures::squares_cost::render(scale));
    }
    if want("longtail") {
        sections.push(figures::longtail::render(scale));
    }
    if target == "experiments" || target == "all" {
        if let (Some(grid), Some(sweep)) = (&grid, &sweep) {
            sections.push(kgfd_harness::render_experiments_md(scale, grid, sweep));
        }
    }

    if sections.is_empty() {
        eprintln!("unknown target {target:?}");
        std::process::exit(2);
    }
    for s in sections {
        println!("{s}");
        println!("{}", "=".repeat(80));
    }

    drop(root_span);
    if let Some(server) = server {
        server.shutdown();
    }
    if trace_out.is_some() || flame_out.is_some() {
        let tree = kgfd_obs::TraceTree::build(kgfd_obs::collector().drain());
        if let Some(path) = &trace_out {
            if let Err(e) = std::fs::write(path, kgfd_obs::chrome_trace(&tree)) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
        if let Some(path) = &flame_out {
            if let Err(e) = std::fs::write(path, kgfd_obs::flamegraph_collapsed(&tree)) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
