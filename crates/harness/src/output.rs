//! Result rendering: aligned text tables for the terminal and JSON series
//! for plotting / EXPERIMENTS.md bookkeeping.

use serde::Serialize;
use std::path::PathBuf;

/// Directory JSON results are written to (under `target/`).
pub fn results_dir() -> PathBuf {
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target"));
    target.join("kgfd-results")
}

/// Serializes `value` to `target/kgfd-results/<name>.json`. Failures are
/// reported but non-fatal — the text table is the primary output.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        kgfd_obs::warn(format!("cannot create {}: {e}", dir.display()));
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_vec_pretty(value) {
        Ok(bytes) => {
            if let Err(e) = std::fs::write(&path, bytes) {
                kgfd_obs::warn(format!("cannot write {}: {e}", path.display()));
            }
        }
        Err(e) => kgfd_obs::warn(format!("cannot serialize {name}: {e}")),
    }
}

/// Scopes a per-cell JSONL sink at `<dir>/<name>.jsonl` (when `dir` is
/// set): until the returned guard drops, events go both to the current
/// observer and to the cell's file. Failures are reported as warnings and
/// the cell runs with the unchanged observer.
pub fn cell_observer(
    dir: Option<&std::path::Path>,
    name: &str,
) -> Option<kgfd_obs::ScopedObserver> {
    let dir = dir?;
    if let Err(e) = std::fs::create_dir_all(dir) {
        kgfd_obs::warn(format!("cannot create {}: {e}", dir.display()));
        return None;
    }
    let path = dir.join(format!("{name}.jsonl"));
    match kgfd_obs::JsonlSink::create(&path) {
        Ok(sink) => Some(kgfd_obs::scoped(std::sync::Arc::new(
            kgfd_obs::Fanout::new(vec![kgfd_obs::observer(), std::sync::Arc::new(sink)]),
        ))),
        Err(e) => {
            kgfd_obs::warn(format!("cannot create {}: {e}", path.display()));
            None
        }
    }
}

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; cells beyond the header count are kept as-is.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<w$}"));
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["long-name-here", "1"]);
        t.row(["x", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("long-name-here"));
        // Columns align: "value" column starts at the same offset everywhere.
        let offset = lines[0].find("value").unwrap();
        assert_eq!(&lines[3][offset..offset + 5], "12345");
    }

    #[test]
    fn json_write_creates_file() {
        write_json("test-output", &vec![1, 2, 3]);
        let path = results_dir().join("test-output.json");
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains('1'));
    }

    #[test]
    fn empty_table_renders_headers_only() {
        let t = TextTable::new(["a"]);
        assert!(t.is_empty());
        assert!(t.render().starts_with('a'));
    }
}
