//! The hyperparameter sweeps of §4.3: `max_candidates` × `top_n` grids on
//! FB15K-237 with TransE, for UNIFORM RANDOM and CLUSTERING TRIANGLES —
//! the shared input of Figures 7, 8, 9, and 10.

use crate::{trained_model_threaded, DatasetRef, Scale};
use fact_discovery::{discover_facts, DiscoveryConfig, StrategyKind};
use kgfd_embed::ModelKind;
use serde::{Deserialize, Serialize};

/// The paper's grid-search values (§4.3.1).
pub const MAX_CANDIDATES_VALUES: [usize; 7] = [50, 100, 200, 300, 400, 500, 700];
/// The paper's `top_n` grid-search values (§4.3.1).
pub const TOP_N_VALUES: [usize; 6] = [100, 200, 300, 400, 500, 700];

/// One sweep measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepCell {
    /// Strategy of this run (UNIFORM RANDOM or CLUSTERING TRIANGLES).
    pub strategy: StrategyKind,
    /// `max_candidates` of this run.
    pub max_candidates: usize,
    /// `top_n` of this run.
    pub top_n: usize,
    /// Total runtime in seconds.
    pub runtime_s: f64,
    /// Facts discovered.
    pub facts: usize,
    /// MRR of discovered facts.
    pub mrr: f64,
    /// Facts per hour.
    pub facts_per_hour: f64,
}

/// All sweep cells plus the context they ran in.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResults {
    /// Scale the sweep ran at.
    pub scale: Scale,
    /// All measurements.
    pub cells: Vec<SweepCell>,
}

impl SweepResults {
    /// Cells matching a strategy, sorted by (max_candidates, top_n).
    pub fn series(&self, strategy: StrategyKind) -> Vec<&SweepCell> {
        let mut v: Vec<&SweepCell> = self
            .cells
            .iter()
            .filter(|c| c.strategy == strategy)
            .collect();
        v.sort_by_key(|c| (c.max_candidates, c.top_n));
        v
    }

    /// The cell for an exact parameter combination.
    pub fn at(
        &self,
        strategy: StrategyKind,
        max_candidates: usize,
        top_n: usize,
    ) -> Option<&SweepCell> {
        self.cells.iter().find(|c| {
            c.strategy == strategy && c.max_candidates == max_candidates && c.top_n == top_n
        })
    }
}

/// Sweep options (values scale down with [`Scale::Mini`]).
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// `max_candidates` values to sweep.
    pub max_candidates: Vec<usize>,
    /// `top_n` values to sweep.
    pub top_n: Vec<usize>,
    /// Strategies to sweep (paper: UNIFORM RANDOM + CLUSTERING TRIANGLES).
    pub strategies: Vec<StrategyKind>,
    /// Discovery seed.
    pub seed: u64,
    /// Ranking threads.
    pub threads: usize,
    /// Training threads for the zoo model when it misses the disk cache.
    pub train_threads: usize,
    /// Streaming chunk size for discovery (behaviourally invisible; tunes
    /// the engine's working-set bound).
    pub chunk_size: usize,
    /// Per-relation bounded fact heap (`None` = keep everything in
    /// `top_n`, the paper's behaviour).
    pub top_k: Option<usize>,
    /// When set, each grid cell writes its structured events (spans,
    /// metrics, manifest) to `<dir>/sweep-<strategy>-mc<MC>-top<N>.jsonl`.
    pub metrics_dir: Option<std::path::PathBuf>,
}

impl SweepOptions {
    /// Paper-default sweep values, scaled for mini runs.
    pub fn for_scale(scale: Scale) -> Self {
        let (max_candidates, top_n) = match scale {
            Scale::Standard => (MAX_CANDIDATES_VALUES.to_vec(), TOP_N_VALUES.to_vec()),
            Scale::Mini => (vec![10, 20, 40, 60, 100], vec![10, 20, 40, 60]),
        };
        SweepOptions {
            max_candidates,
            top_n,
            strategies: vec![
                StrategyKind::UniformRandom,
                StrategyKind::ClusteringTriangles,
            ],
            seed: 11,
            threads: std::thread::available_parallelism()
                .map(|p| p.get().min(8))
                .unwrap_or(1),
            train_threads: kgfd_embed::TrainConfig::default_threads(),
            chunk_size: DiscoveryConfig::default().chunk_size,
            top_k: None,
            metrics_dir: None,
        }
    }
}

/// Runs the §4.3 sweep on FB15K-237-like with TransE.
pub fn run_sweep(scale: Scale, options: &SweepOptions) -> SweepResults {
    // Central thread policy, shared with the CLI and grid (see kgfd-pool).
    let threads =
        kgfd_pool::resolve_threads(options.threads).expect("sweep options: threads must be >= 1");
    let train_threads = kgfd_pool::resolve_threads(options.train_threads)
        .expect("sweep options: train_threads must be >= 1");
    let dataset = DatasetRef::Fb15k237;
    let data = dataset.load(scale);
    let model = trained_model_threaded(dataset, ModelKind::TransE, scale, &data, train_threads);

    let mut cells = Vec::new();
    for &strategy in &options.strategies {
        for &max_candidates in &options.max_candidates {
            for &top_n in &options.top_n {
                let _cell = crate::cell_observer(
                    options.metrics_dir.as_deref(),
                    &format!("sweep-{}-mc{max_candidates}-top{top_n}", strategy.abbrev()),
                );
                kgfd_obs::set_phase(format!(
                    "sweep:{}/mc{max_candidates}/top{top_n}",
                    strategy.abbrev()
                ));
                let cell_span = kgfd_obs::span_traced!(
                    "harness.sweep.cell",
                    strategy = strategy.abbrev(),
                    max_candidates = max_candidates,
                    top_n = top_n
                );
                let config = DiscoveryConfig {
                    strategy,
                    top_n,
                    max_candidates,
                    seed: options.seed,
                    threads,
                    chunk_size: options.chunk_size,
                    top_k: options.top_k,
                    ..DiscoveryConfig::default()
                };
                let report = discover_facts(model.as_ref(), &data.train, &config);
                drop(cell_span);
                let mut manifest = kgfd_obs::RunManifest::new("sweep-cell");
                manifest.strategy = strategy.to_string();
                manifest.model = ModelKind::TransE.to_string();
                manifest.seed = options.seed;
                manifest.dataset = kgfd_obs::DatasetShape {
                    entities: data.train.num_entities() as u64,
                    relations: data.train.num_relations() as u64,
                    triples: data.train.len() as u64,
                };
                manifest.wall_clock_s = report.total.as_secs_f64();
                manifest
                    .with_config("max_candidates", max_candidates)
                    .with_config("top_n", top_n)
                    .with_config("chunk_size", options.chunk_size)
                    .with_config("facts", report.facts.len())
                    .with_config(
                        "eval.rank.dedup_ratio",
                        kgfd_obs::gauge("eval.rank.dedup_ratio").get(),
                    )
                    .with_config(
                        "discover.stream.peak_buffer",
                        kgfd_obs::gauge("discover.stream.peak_buffer").get(),
                    )
                    .with_config(
                        "discover.cache.measures_hit",
                        kgfd_obs::counter("discover.cache.measures_hit").get(),
                    )
                    .emit();
                cells.push(SweepCell {
                    strategy,
                    max_candidates,
                    top_n,
                    runtime_s: report.total.as_secs_f64(),
                    facts: report.facts.len(),
                    mrr: report.mrr(),
                    facts_per_hour: report.facts_per_hour(),
                });
            }
        }
        kgfd_obs::progress(format!("[sweep {}] finished {strategy}", scale.name()));
    }
    SweepResults { scale, cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_covers_the_grid() {
        let options = SweepOptions {
            max_candidates: vec![10, 20],
            top_n: vec![5, 10],
            strategies: vec![StrategyKind::UniformRandom],
            seed: 1,
            threads: 2,
            train_threads: 1,
            ..SweepOptions::for_scale(Scale::Mini)
        };
        let results = run_sweep(Scale::Mini, &options);
        assert_eq!(results.cells.len(), 4);
        assert!(results.at(StrategyKind::UniformRandom, 10, 5).is_some());
        assert_eq!(results.series(StrategyKind::UniformRandom).len(), 4);
    }

    #[test]
    fn candidates_scale_with_max_candidates() {
        let options = SweepOptions {
            max_candidates: vec![10, 50],
            top_n: vec![1_000_000], // keep everything
            strategies: vec![StrategyKind::ClusteringTriangles],
            seed: 2,
            threads: 2,
            train_threads: 1,
            ..SweepOptions::for_scale(Scale::Mini)
        };
        let results = run_sweep(Scale::Mini, &options);
        let small = results
            .at(StrategyKind::ClusteringTriangles, 10, 1_000_000)
            .unwrap();
        let large = results
            .at(StrategyKind::ClusteringTriangles, 50, 1_000_000)
            .unwrap();
        assert!(
            large.facts > small.facts,
            "{} vs {}",
            large.facts,
            small.facts
        );
    }
}
