//! Experiment-grid vocabulary: datasets × models × strategies, at two scales.

use fact_discovery::StrategyKind;
use kgfd_datasets::{
    codexl_like, fb15k237_like, generate, mini, wn18rr_like, yago310_like, DatasetProfile,
};
use kgfd_embed::ModelKind;
use kgfd_kg::Dataset;
use serde::{Deserialize, Serialize};

/// The four benchmark datasets of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetRef {
    /// FB15K-237-like (dense, many relations).
    Fb15k237,
    /// WN18RR-like (sparse, 11 relations).
    Wn18rr,
    /// YAGO3-10-like (largest).
    Yago310,
    /// CoDEx-L-like (medium).
    CodexL,
}

impl DatasetRef {
    /// All four datasets, in Table 1 order.
    pub const ALL: [DatasetRef; 4] = [
        DatasetRef::Fb15k237,
        DatasetRef::Wn18rr,
        DatasetRef::Yago310,
        DatasetRef::CodexL,
    ];

    /// Short stable name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetRef::Fb15k237 => "fb15k237-like",
            DatasetRef::Wn18rr => "wn18rr-like",
            DatasetRef::Yago310 => "yago310-like",
            DatasetRef::CodexL => "codexl-like",
        }
    }

    /// The generator profile at the given scale.
    pub fn profile(self, scale: Scale) -> DatasetProfile {
        let base = match self {
            DatasetRef::Fb15k237 => fb15k237_like(),
            DatasetRef::Wn18rr => wn18rr_like(),
            DatasetRef::Yago310 => yago310_like(),
            DatasetRef::CodexL => codexl_like(),
        };
        match scale {
            Scale::Standard => base,
            Scale::Mini => mini(&base),
        }
    }

    /// Generates the dataset (deterministic per scale).
    pub fn load(self, scale: Scale) -> Dataset {
        generate(&self.profile(scale)).expect("builtin profiles are valid")
    }
}

impl std::fmt::Display for DatasetRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Experiment scale: `Standard` reproduces the paper's shape at the scaled
/// profile sizes (DESIGN.md §1); `Mini` is a further 10× reduction for CI
/// and quick benchmarking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// Scaled-paper size (the default for EXPERIMENTS.md numbers).
    Standard,
    /// 10× smaller, seconds-fast.
    Mini,
}

impl Scale {
    /// Stable name for cache keys and output files.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Standard => "standard",
            Scale::Mini => "mini",
        }
    }
}

/// One cell of the paper's experimental grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GridPoint {
    /// Which dataset.
    pub dataset: DatasetRef,
    /// Which KGE model.
    pub model: ModelKind,
    /// Which sampling strategy.
    pub strategy: StrategyKind,
}

/// The full grid of the paper's §4 (4 datasets × 5 models × 5 strategies).
pub fn paper_grid() -> Vec<GridPoint> {
    let mut points = Vec::new();
    for dataset in DatasetRef::ALL {
        for model in ModelKind::PAPER_GRID {
            for strategy in StrategyKind::PAPER_GRID {
                points.push(GridPoint {
                    dataset,
                    model,
                    strategy,
                });
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_has_100_configurations() {
        // §4.3.1: "four datasets, five embeddings, and five strategies,
        // resulting in a total of 100 experimental configurations".
        assert_eq!(paper_grid().len(), 100);
    }

    #[test]
    fn mini_datasets_load_quickly() {
        let d = DatasetRef::Fb15k237.load(Scale::Mini);
        assert_eq!(d.train.num_entities(), 145);
    }

    #[test]
    fn profiles_differ_between_scales() {
        let std = DatasetRef::Wn18rr.profile(Scale::Standard);
        let mini = DatasetRef::Wn18rr.profile(Scale::Mini);
        assert!(std.entities > mini.entities * 5);
    }
}
