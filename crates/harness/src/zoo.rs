//! The model zoo: trained models per (dataset, model-kind, scale), with a
//! disk cache so the figure regenerators and benches don't retrain.
//!
//! Mirrors the paper's "Model Training" step (§3.2): one tuned model per
//! dataset × embedding pair, trained once and reused by every discovery
//! experiment. Hyperparameters follow the per-pair table in
//! [`train_config`]; datasets regenerate deterministically, so cached
//! parameter files remain valid across runs.

use crate::{DatasetRef, Scale};
use kgfd_embed::{
    checkpoint_paths, read_model_file, resume_latest, train, write_model_file, CheckpointPolicy,
    KgeModel, LossKind, ModelKind, OptimizerKind, ResumeReport, TrainConfig, TrainSession,
};
use kgfd_kg::{Dataset, KgError};
use std::path::{Path, PathBuf};

/// Training hyperparameters for one dataset × model pair.
///
/// All models train with Adam (the paper's optimizer) and BCE loss except
/// TransE, which keeps its native margin loss and entity normalization.
/// Epoch counts shrink with dataset size to keep the full grid tractable on
/// CPU; ConvE gets fewer epochs (it sees each triple twice via reciprocals).
pub fn train_config(dataset: DatasetRef, model: ModelKind, scale: Scale) -> TrainConfig {
    let epochs_base = match dataset {
        DatasetRef::Fb15k237 => 25,
        DatasetRef::Wn18rr => 40,
        DatasetRef::Yago310 => 12,
        DatasetRef::CodexL => 20,
    };
    let epochs = match scale {
        Scale::Standard => epochs_base,
        Scale::Mini => epochs_base * 2, // tiny data, cheap epochs
    };
    let (epochs, negatives) = match model {
        ModelKind::ConvE => ((epochs / 2).max(3), 2),
        ModelKind::Rescal => (epochs, 3),
        _ => (epochs, 4),
    };
    let (loss, normalize_entities) = match model {
        ModelKind::TransE => (LossKind::MarginRanking { margin: 1.0 }, true),
        _ => (LossKind::BinaryCrossEntropy, false),
    };
    TrainConfig {
        dim: 32,
        epochs,
        batch_size: 256,
        negatives,
        loss,
        optimizer: OptimizerKind::Adam { lr: 0.01 },
        filter_negatives: true,
        normalize_entities,
        adversarial_temperature: None,
        seed: 0xE0_57 ^ (dataset as u64) << 8 ^ (model.name().len() as u64),
        threads: TrainConfig::default_threads(),
    }
}

/// Directory of the on-disk model cache (under `target/`).
pub fn cache_dir() -> PathBuf {
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // Walk up from the crate dir to the workspace target.
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target")
        });
    target.join("kgfd-models")
}

fn cache_path(dataset: DatasetRef, model: ModelKind, scale: Scale) -> PathBuf {
    // `v3`: cache entries now use the checksummed v2 model format written
    // atomically; the name bump keeps v1-format entries (whose TransE
    // distance flag was untrustworthy) from masquerading as current.
    // (`v2` was the sharded-trainer bump.)
    cache_dir().join(format!(
        "{}-{}-{}-v3.kgfd",
        dataset.name(),
        model.name(),
        scale.name()
    ))
}

/// Outcome of probing one on-disk cache entry.
enum CacheProbe {
    /// Entry loaded and matches the dataset shape.
    Hit(Box<dyn KgeModel>),
    /// No cache entry exists.
    Miss,
    /// Entry was corrupt, version-skewed, unmigratable, or shape-mismatched;
    /// it has been evicted (deleted) and the caller must retrain.
    Evicted,
}

/// Deletes a bad cache entry and makes the recovery observable: a
/// `zoo.cache.corrupt` metric event (with path + reason fields), a warning
/// message, and an entry in the process recovery log that surfaces in the
/// next emitted JSONL run manifest.
fn evict(path: &Path, reason: &str) -> CacheProbe {
    kgfd_obs::metric(
        "zoo.cache.corrupt",
        1.0,
        vec![
            kgfd_obs::Field::new("path", path.display().to_string()),
            kgfd_obs::Field::new("reason", reason),
        ],
    );
    kgfd_obs::warn(format!(
        "zoo: evicting bad cache entry {} ({reason}); retraining",
        path.display()
    ));
    kgfd_obs::record_recovery(format!(
        "zoo.cache.corrupt: {}: {reason} (evicted, retrained)",
        path.display()
    ));
    let _ = std::fs::remove_file(path);
    CacheProbe::Evicted
}

/// Loads and integrity-checks one cache entry. Every failure mode —
/// checksum mismatch, truncation, version skew, unmigratable v1 content,
/// or a shape that doesn't match `data` — evicts the entry instead of
/// panicking or returning a silently-wrong model.
fn probe_cache(path: &Path, data: &Dataset) -> CacheProbe {
    match read_model_file(path) {
        Ok(loaded) => {
            if loaded.num_entities() == data.train.num_entities()
                && loaded.num_relations() == data.train.num_relations()
            {
                CacheProbe::Hit(loaded)
            } else {
                evict(
                    path,
                    &format!(
                        "shape mismatch: cached {}×{}, dataset {}×{}",
                        loaded.num_entities(),
                        loaded.num_relations(),
                        data.train.num_entities(),
                        data.train.num_relations()
                    ),
                )
            }
        }
        Err(KgError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => CacheProbe::Miss,
        Err(e) => evict(path, &e.to_string()),
    }
}

/// Returns a trained model for the pair, loading from the disk cache when
/// possible and training + caching otherwise. `data` must be the dataset
/// produced by `dataset.load(scale)`. Trains with
/// [`TrainConfig::default_threads`] workers; the cached parameters are
/// thread-count independent.
pub fn trained_model(
    dataset: DatasetRef,
    model: ModelKind,
    scale: Scale,
    data: &Dataset,
) -> Box<dyn KgeModel> {
    trained_model_threaded(dataset, model, scale, data, TrainConfig::default_threads())
}

/// [`trained_model`] with an explicit training worker count. The disk cache
/// is shared with every other thread count — training is deterministic
/// regardless of `threads`, so cached parameters stay valid.
///
/// A cache-write failure is downgraded to a warning here (training already
/// succeeded and is reproducible); use [`try_trained_model_threaded`] when
/// the caller needs the cache to be durable.
pub fn trained_model_threaded(
    dataset: DatasetRef,
    model: ModelKind,
    scale: Scale,
    data: &Dataset,
    threads: usize,
) -> Box<dyn KgeModel> {
    let (trained, cache_err) = obtain(dataset, model, scale, data, threads);
    if let Some(e) = cache_err {
        kgfd_obs::warn(format!(
            "zoo: could not cache {}-{}-{}: {e}",
            dataset.name(),
            model.name(),
            scale.name()
        ));
    }
    trained
}

/// [`trained_model_threaded`] with the cache write error-checked: returns
/// `Err` when the trained parameters could not be persisted (the model is
/// lost to future runs), instead of silently degrading to retrain-per-run.
pub fn try_trained_model_threaded(
    dataset: DatasetRef,
    model: ModelKind,
    scale: Scale,
    data: &Dataset,
    threads: usize,
) -> Result<Box<dyn KgeModel>, KgError> {
    let (trained, cache_err) = obtain(dataset, model, scale, data, threads);
    match cache_err {
        Some(e) => Err(e),
        None => Ok(trained),
    }
}

/// Cache probe → recovery → train → atomic cache write. Returns the model
/// plus the cache-write error, if any — callers choose whether persistence
/// failures are fatal.
fn obtain(
    dataset: DatasetRef,
    model: ModelKind,
    scale: Scale,
    data: &Dataset,
    threads: usize,
) -> (Box<dyn KgeModel>, Option<KgError>) {
    let path = cache_path(dataset, model, scale);
    match probe_cache(&path, data) {
        CacheProbe::Hit(loaded) => return (loaded, None),
        CacheProbe::Miss | CacheProbe::Evicted => {}
    }
    let mut config = train_config(dataset, model, scale);
    config.threads = threads.max(1);
    let trained = match train_resumable(model, data, &config, &path) {
        Ok(trained) => trained,
        Err(e) => {
            // Checkpointing is an optimization; a failure there (e.g. the
            // cache directory is read-only) must not cost the caller the
            // model. Fall back to a plain in-memory run — bit-identical.
            kgfd_obs::warn(format!(
                "zoo: checkpointed training failed ({e}); retraining without checkpoints"
            ));
            train(model, &data.train, &config).0
        }
    };
    // Atomic temp-file + rename write: concurrent trainers of the same pair
    // each produce identical parameters, so whichever rename lands last
    // leaves a valid, complete entry.
    let cache_err = write_model_file(&path, trained.as_ref()).err();
    (trained, cache_err)
}

/// Trains through a checkpointed [`TrainSession`], resuming any
/// half-finished run a killed process left beside the cache entry. Training
/// is deterministic, so a resumed run is bit-identical to a fresh one; on
/// success the spent checkpoints are removed.
fn train_resumable(
    model: ModelKind,
    data: &Dataset,
    config: &TrainConfig,
    cache_path: &Path,
) -> Result<Box<dyn KgeModel>, KgError> {
    let (mut session, _report) = match resume_latest(model, &data.train, config, cache_path) {
        Ok(resumed) => resumed,
        Err(KgError::CheckpointMismatch { .. }) => {
            // A leftover from an older zoo config (the hyperparameter table
            // changed between versions). It cannot seed this run — discard
            // it and start fresh, keeping the recovery observable.
            kgfd_obs::record_recovery(format!(
                "zoo.ckpt.mismatch: {}: stale checkpoint from a different \
                 training config (discarded, trained fresh)",
                cache_path.display()
            ));
            for (_, p) in checkpoint_paths(cache_path) {
                let _ = std::fs::remove_file(p);
            }
            (
                TrainSession::new(model, &data.train, config)?,
                ResumeReport::default(),
            )
        }
        Err(e) => return Err(e),
    };
    // Checkpoint a handful of times per run — enough that a kill loses at
    // most a quarter of the work, rare enough that writes stay negligible.
    let every = (config.epochs / 4).max(1);
    let policy = CheckpointPolicy::new(cache_path.to_path_buf(), every);
    session.run(Some(&policy), None)?;
    let (trained, _) = session.into_model();
    for (_, p) in checkpoint_paths(cache_path) {
        let _ = std::fs::remove_file(p);
    }
    Ok(trained)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_cover_every_grid_pair() {
        for dataset in DatasetRef::ALL {
            for model in ModelKind::PAPER_GRID {
                let c = train_config(dataset, model, Scale::Mini);
                assert!(c.epochs >= 3);
                assert!(c.dim >= 16);
            }
        }
    }

    #[test]
    fn transe_keeps_margin_loss_and_normalization() {
        let c = train_config(DatasetRef::Fb15k237, ModelKind::TransE, Scale::Standard);
        assert!(matches!(c.loss, LossKind::MarginRanking { .. }));
        assert!(c.normalize_entities);
        let c2 = train_config(DatasetRef::Fb15k237, ModelKind::DistMult, Scale::Standard);
        assert!(matches!(c2.loss, LossKind::BinaryCrossEntropy));
    }

    #[test]
    fn corrupt_cache_entry_is_evicted_retrained_and_rewritten() {
        let dataset = DatasetRef::Yago310;
        let data = dataset.load(Scale::Mini);
        let path = cache_path(dataset, ModelKind::ComplEx, Scale::Mini);
        let _ = std::fs::remove_file(&path);
        let a = trained_model(dataset, ModelKind::ComplEx, Scale::Mini, &data);
        // Flip a payload byte: the checksum must catch it on the next probe.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let b = trained_model(dataset, ModelKind::ComplEx, Scale::Mini, &data);
        let t = data.train.triples()[0];
        // Deterministic training: the retrained model matches the original.
        assert_eq!(a.score(t).to_bits(), b.score(t).to_bits());
        // The bad entry was replaced with a valid, loadable one.
        let reloaded = read_model_file(&path).expect("cache repaired");
        assert_eq!(reloaded.score(t).to_bits(), a.score(t).to_bits());
        // The recovery is visible to the next emitted run manifest.
        let recoveries = kgfd_obs::drain_recoveries();
        assert!(
            recoveries
                .iter()
                .any(|r| r.contains("zoo.cache.corrupt") && r.contains("complex")),
            "recovery log missing eviction: {recoveries:?}"
        );
    }

    #[test]
    fn shape_mismatched_cache_entry_is_evicted() {
        let dataset = DatasetRef::CodexL;
        let data = dataset.load(Scale::Mini);
        let path = cache_path(dataset, ModelKind::DistMult, Scale::Mini);
        // Plant a valid model file of the wrong shape.
        let wrong = kgfd_embed::new_model(ModelKind::DistMult, 3, 1, 8, 0);
        kgfd_embed::write_model_file(&path, wrong.as_ref()).unwrap();
        let m = trained_model(dataset, ModelKind::DistMult, Scale::Mini, &data);
        assert_eq!(m.num_entities(), data.train.num_entities());
        let reloaded = read_model_file(&path).expect("cache repaired");
        assert_eq!(reloaded.num_entities(), data.train.num_entities());
        let _ = kgfd_obs::drain_recoveries();
    }

    /// A trainer killed mid-run leaves a checkpoint beside the cache entry;
    /// the next `trained_model` call must pick it up, finish the remaining
    /// epochs bit-identically to an uninterrupted run, and sweep the spent
    /// checkpoints away.
    #[test]
    fn zoo_resumes_a_half_finished_training_run() {
        let dataset = DatasetRef::Yago310;
        let data = dataset.load(Scale::Mini);
        let kind = ModelKind::DistMult;
        let path = cache_path(dataset, kind, Scale::Mini);
        let _ = std::fs::remove_file(&path);
        for (_, p) in checkpoint_paths(&path) {
            let _ = std::fs::remove_file(p);
        }
        let mut config = train_config(dataset, kind, Scale::Mini);
        config.threads = 1;
        // Simulate the kill: run half the epochs, checkpoint, abandon.
        let mut session = TrainSession::new(kind, &data.train, &config).unwrap();
        for _ in 0..config.epochs / 2 {
            session.run_epoch();
        }
        let policy = CheckpointPolicy::new(path.clone(), 1);
        session.save_checkpoint(&policy).unwrap();
        drop(session);

        let resumed = trained_model_threaded(dataset, kind, Scale::Mini, &data, 1);
        let (plain, _) = train(kind, &data.train, &config);
        for t in 0..plain.params().num_tables() {
            assert_eq!(
                plain.params().table(t).data(),
                resumed.params().table(t).data(),
                "table {t}: resumed training must match an uninterrupted run bitwise"
            );
        }
        assert!(
            checkpoint_paths(&path).is_empty(),
            "spent checkpoints must be cleaned up after a completed run"
        );
        let _ = kgfd_obs::drain_recoveries();
    }

    #[test]
    fn zoo_roundtrips_through_disk_cache() {
        let dataset = DatasetRef::Wn18rr;
        let data = dataset.load(Scale::Mini);
        let path = cache_path(dataset, ModelKind::DistMult, Scale::Mini);
        let _ = std::fs::remove_file(&path);
        let a = trained_model(dataset, ModelKind::DistMult, Scale::Mini, &data);
        assert!(path.exists(), "first call populates the cache");
        let b = trained_model(dataset, ModelKind::DistMult, Scale::Mini, &data);
        let t = data.train.triples()[0];
        assert!((a.score(t) - b.score(t)).abs() < 1e-6, "cache hit matches");
    }
}
