//! The model zoo: trained models per (dataset, model-kind, scale), with a
//! disk cache so the figure regenerators and benches don't retrain.
//!
//! Mirrors the paper's "Model Training" step (§3.2): one tuned model per
//! dataset × embedding pair, trained once and reused by every discovery
//! experiment. Hyperparameters follow the per-pair table in
//! [`train_config`]; datasets regenerate deterministically, so cached
//! parameter files remain valid across runs.

use crate::{DatasetRef, Scale};
use kgfd_embed::{
    load_model, save_model, train, KgeModel, LossKind, ModelKind, OptimizerKind, TrainConfig,
};
use kgfd_kg::Dataset;
use std::path::PathBuf;

/// Training hyperparameters for one dataset × model pair.
///
/// All models train with Adam (the paper's optimizer) and BCE loss except
/// TransE, which keeps its native margin loss and entity normalization.
/// Epoch counts shrink with dataset size to keep the full grid tractable on
/// CPU; ConvE gets fewer epochs (it sees each triple twice via reciprocals).
pub fn train_config(dataset: DatasetRef, model: ModelKind, scale: Scale) -> TrainConfig {
    let epochs_base = match dataset {
        DatasetRef::Fb15k237 => 25,
        DatasetRef::Wn18rr => 40,
        DatasetRef::Yago310 => 12,
        DatasetRef::CodexL => 20,
    };
    let epochs = match scale {
        Scale::Standard => epochs_base,
        Scale::Mini => epochs_base * 2, // tiny data, cheap epochs
    };
    let (epochs, negatives) = match model {
        ModelKind::ConvE => ((epochs / 2).max(3), 2),
        ModelKind::Rescal => (epochs, 3),
        _ => (epochs, 4),
    };
    let (loss, normalize_entities) = match model {
        ModelKind::TransE => (LossKind::MarginRanking { margin: 1.0 }, true),
        _ => (LossKind::BinaryCrossEntropy, false),
    };
    TrainConfig {
        dim: 32,
        epochs,
        batch_size: 256,
        negatives,
        loss,
        optimizer: OptimizerKind::Adam { lr: 0.01 },
        filter_negatives: true,
        normalize_entities,
        adversarial_temperature: None,
        seed: 0xE0_57 ^ (dataset as u64) << 8 ^ (model.name().len() as u64),
        threads: TrainConfig::default_threads(),
    }
}

/// Directory of the on-disk model cache (under `target/`).
pub fn cache_dir() -> PathBuf {
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // Walk up from the crate dir to the workspace target.
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target")
        });
    target.join("kgfd-models")
}

fn cache_path(dataset: DatasetRef, model: ModelKind, scale: Scale) -> PathBuf {
    // `v2`: the sharded trainer draws negatives from per-shard RNG streams,
    // so trained parameters differ from the v1 (sequential-stream) trainer.
    // A new cache name keeps old entries from masquerading as current.
    cache_dir().join(format!(
        "{}-{}-{}-v2.kgfd",
        dataset.name(),
        model.name(),
        scale.name()
    ))
}

/// Returns a trained model for the pair, loading from the disk cache when
/// possible and training + caching otherwise. `data` must be the dataset
/// produced by `dataset.load(scale)`. Trains with
/// [`TrainConfig::default_threads`] workers; the cached parameters are
/// thread-count independent.
pub fn trained_model(
    dataset: DatasetRef,
    model: ModelKind,
    scale: Scale,
    data: &Dataset,
) -> Box<dyn KgeModel> {
    trained_model_threaded(dataset, model, scale, data, TrainConfig::default_threads())
}

/// [`trained_model`] with an explicit training worker count. The disk cache
/// is shared with every other thread count — training is deterministic
/// regardless of `threads`, so cached parameters stay valid.
pub fn trained_model_threaded(
    dataset: DatasetRef,
    model: ModelKind,
    scale: Scale,
    data: &Dataset,
    threads: usize,
) -> Box<dyn KgeModel> {
    let path = cache_path(dataset, model, scale);
    if let Ok(bytes) = std::fs::read(&path) {
        if let Ok(loaded) = load_model(&bytes) {
            if loaded.num_entities() == data.train.num_entities()
                && loaded.num_relations() == data.train.num_relations()
            {
                return loaded;
            }
        }
        // Stale or corrupt cache entry: fall through to retrain.
    }
    let mut config = train_config(dataset, model, scale);
    config.threads = threads.max(1);
    let (trained, _) = train(model, &data.train, &config);
    if std::fs::create_dir_all(cache_dir()).is_ok() {
        // Cache failures are non-fatal: training is always reproducible.
        let _ = std::fs::write(&path, save_model(trained.as_ref()));
    }
    trained
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_cover_every_grid_pair() {
        for dataset in DatasetRef::ALL {
            for model in ModelKind::PAPER_GRID {
                let c = train_config(dataset, model, Scale::Mini);
                assert!(c.epochs >= 3);
                assert!(c.dim >= 16);
            }
        }
    }

    #[test]
    fn transe_keeps_margin_loss_and_normalization() {
        let c = train_config(DatasetRef::Fb15k237, ModelKind::TransE, Scale::Standard);
        assert!(matches!(c.loss, LossKind::MarginRanking { .. }));
        assert!(c.normalize_entities);
        let c2 = train_config(DatasetRef::Fb15k237, ModelKind::DistMult, Scale::Standard);
        assert!(matches!(c2.loss, LossKind::BinaryCrossEntropy));
    }

    #[test]
    fn zoo_roundtrips_through_disk_cache() {
        let dataset = DatasetRef::Wn18rr;
        let data = dataset.load(Scale::Mini);
        let path = cache_path(dataset, ModelKind::DistMult, Scale::Mini);
        let _ = std::fs::remove_file(&path);
        let a = trained_model(dataset, ModelKind::DistMult, Scale::Mini, &data);
        assert!(path.exists(), "first call populates the cache");
        let b = trained_model(dataset, ModelKind::DistMult, Scale::Mini, &data);
        let t = data.train.triples()[0];
        assert!((a.score(t) - b.score(t)).abs() < 1e-6, "cache hit matches");
    }
}
