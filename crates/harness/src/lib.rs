//! # kgfd-harness — the paper's experimental workflow, reproducible
//!
//! Implements the workflow of the paper's Figure 1 — dataset selection →
//! KGE training (with a disk-cached [model zoo](trained_model)) → fact
//! discovery → metrics — and one regenerator per table/figure of the
//! evaluation section (see [`figures`] and DESIGN.md §4).
//!
//! Two entry points produce all shared measurements:
//! * [`run_grid`] — the 4 × 5 × 5 grid behind Figures 2, 4, and 6;
//! * [`run_sweep`] — the `max_candidates` × `top_n` sweeps behind
//!   Figures 7–10.
//!
//! The `repro` binary drives everything:
//! `cargo run --release -p kgfd-harness --bin repro -- all mini`.

#![warn(missing_docs)]

mod experiment;
mod experiments_md;
pub mod figures;
mod grid;
mod output;
mod sweep;
mod zoo;

pub use experiment::{paper_grid, DatasetRef, GridPoint, Scale};
pub use experiments_md::render as render_experiments_md;
pub use grid::{run_grid, GridCell, GridOptions, GridResults};
pub use output::{cell_observer, results_dir, write_json, TextTable};
pub use sweep::{
    run_sweep, SweepCell, SweepOptions, SweepResults, MAX_CANDIDATES_VALUES, TOP_N_VALUES,
};
pub use zoo::{
    cache_dir, train_config, trained_model, trained_model_threaded, try_trained_model_threaded,
};
