//! The harness's JSON result series must round-trip: plotting tooling and
//! EXPERIMENTS.md bookkeeping consume these files across versions.

use kgfd_harness::{
    run_grid, run_sweep, DatasetRef, GridOptions, GridResults, Scale, SweepOptions, SweepResults,
};

fn slim_grid() -> GridResults {
    let mut options = GridOptions::for_scale(Scale::Mini);
    options.datasets = vec![DatasetRef::Wn18rr];
    options.models = vec![kgfd_embed::ModelKind::TransE];
    options.strategies = vec![
        fact_discovery::StrategyKind::UniformRandom,
        fact_discovery::StrategyKind::GraphDegree,
    ];
    run_grid(Scale::Mini, &options)
}

#[test]
fn grid_results_roundtrip_through_json() {
    let grid = slim_grid();
    let json = serde_json::to_string(&grid).unwrap();
    let back: GridResults = serde_json::from_str(&json).unwrap();
    assert_eq!(back.cells.len(), grid.cells.len());
    for (a, b) in grid.cells.iter().zip(&back.cells) {
        assert_eq!(a.dataset, b.dataset);
        assert_eq!(a.strategy, b.strategy);
        assert_eq!(a.facts, b.facts);
        assert!((a.mrr - b.mrr).abs() < 1e-12);
    }
}

#[test]
fn sweep_results_roundtrip_through_json() {
    let options = SweepOptions {
        max_candidates: vec![10, 20],
        top_n: vec![5],
        strategies: vec![fact_discovery::StrategyKind::UniformRandom],
        seed: 1,
        threads: 2,
        train_threads: 1,
        ..SweepOptions::for_scale(Scale::Mini)
    };
    let sweep = run_sweep(Scale::Mini, &options);
    let json = serde_json::to_string(&sweep).unwrap();
    let back: SweepResults = serde_json::from_str(&json).unwrap();
    assert_eq!(back.cells.len(), sweep.cells.len());
    assert!(back
        .at(fact_discovery::StrategyKind::UniformRandom, 10, 5)
        .is_some());
}

#[test]
fn grid_accessors_are_consistent() {
    let grid = slim_grid();
    let wn = grid.for_dataset(DatasetRef::Wn18rr);
    assert_eq!(wn.len(), grid.cells.len(), "single-dataset grid");
    assert!(grid.for_dataset(DatasetRef::Yago310).is_empty());
    let mean = grid.strategy_mean(fact_discovery::StrategyKind::UniformRandom, |c| {
        c.facts as f64
    });
    assert!(mean >= 0.0);
}
