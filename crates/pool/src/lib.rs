//! `kgfd-pool` — the process-wide deterministic worker pool.
//!
//! Every hot path in this workspace fans work out to a fixed number of
//! workers and reduces the results in a fixed order. Before this crate each
//! fan-out paid OS-thread spawn/join costs on *every call* (the vendored
//! `crossbeam::thread::scope` is `std::thread::scope` underneath): once per
//! mini-batch in training, once per ranking pass, once per discovery run.
//! The pool here is spawned **once** for the whole process and hands out
//! persistent workers instead.
//!
//! # Determinism contract
//!
//! The pool preserves the workspace-wide bit-identical-at-any-thread-count
//! guarantee by construction:
//!
//! 1. **Fixed job assignment, no stealing.** A [`scope`]'s `k`-th spawned
//!    job always goes to worker `k mod pool_size`, and every worker drains
//!    its own FIFO queue. Which worker runs a job can never depend on
//!    timing — and even if it could, job *results* depend only on the job's
//!    closure, never on the executing thread.
//! 2. **Ordered reduction at the call site.** Jobs return values through
//!    [`JobHandle`]s; callers join handles in spawn order (or write to
//!    disjoint output slots), exactly as the scoped-spawn code did.
//! 3. **Spawn-per-call equivalence.** [`ExecMode::SpawnPerCall`] runs the
//!    identical jobs on freshly spawned threads — the pre-pool execution
//!    strategy. The differential suites run both modes and assert
//!    bit-identical embeddings, ranks, and discovered facts.
//!
//! # Nested use
//!
//! A job that opens a nested [`scope`] (e.g. ranking inside a discovery
//! worker) must not wait on queue slots behind itself — that could
//! deadlock. [`PoolScope::spawn`] therefore detects that it is already
//! running on a pool worker and executes the job **inline**, immediately,
//! on the current thread. Results are unchanged (a job's output does not
//! depend on where it runs); only scheduling differs.
//!
//! # Observability
//!
//! Persistent workers record `pool.jobs` (counter), `pool.queue_wait_us`
//! (histogram: enqueue → pick-up latency), `pool.jobs.inline` (nested
//! fall-backs), and per-phase busy time that is folded into
//! `pool.utilization.<phase>` gauges (busy worker-time divided by
//! `pool_size ×` the phase's wall-clock span). The end-of-run
//! [`kgfd_obs::RunManifest`] surfaces these as its `pool` summary.

#![warn(missing_docs)]

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// How [`scope`] executes its jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Dispatch to the persistent process-wide pool (the default).
    Persistent,
    /// Spawn one fresh OS thread per job — the pre-pool execution strategy,
    /// kept as the differential-test oracle and benchmark baseline.
    SpawnPerCall,
}

static EXEC_MODE: AtomicU8 = AtomicU8::new(0);

/// The current execution mode.
pub fn exec_mode() -> ExecMode {
    match EXEC_MODE.load(Ordering::Relaxed) {
        0 => ExecMode::Persistent,
        _ => ExecMode::SpawnPerCall,
    }
}

/// Sets the execution mode. Results are bit-identical in both modes; this
/// only switches *where* jobs run. Prefer [`with_exec_mode`] in tests.
pub fn set_exec_mode(mode: ExecMode) {
    let v = match mode {
        ExecMode::Persistent => 0,
        ExecMode::SpawnPerCall => 1,
    };
    EXEC_MODE.store(v, Ordering::Relaxed);
}

/// Runs `f` under the given execution mode, restoring the previous mode
/// afterwards (also on panic). Mode flips are serialized process-wide so
/// concurrent differential tests cannot interleave their toggles.
pub fn with_exec_mode<R>(mode: ExecMode, f: impl FnOnce() -> R) -> R {
    static FLIP: Mutex<()> = Mutex::new(());
    let _serialize = FLIP.lock().unwrap_or_else(|e| e.into_inner());
    struct Restore(ExecMode);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_exec_mode(self.0);
        }
    }
    let _restore = Restore(exec_mode());
    set_exec_mode(mode);
    f()
}

/// Errors surfaced by the pool's fallible APIs.
#[derive(Debug)]
pub enum PoolError {
    /// A worker panicked while running a job; the payload rendered as text.
    WorkerPanic(String),
    /// A thread count of 0 was requested ([`resolve_threads`]).
    ZeroThreads,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::WorkerPanic(msg) => write!(f, "pool worker panicked: {msg}"),
            PoolError::ZeroThreads => f.write_str("thread count must be at least 1"),
        }
    }
}

impl std::error::Error for PoolError {}

thread_local! {
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// `true` when the current thread is one of the pool's persistent workers —
/// the condition under which nested [`PoolScope::spawn`]s run inline.
pub fn on_pool_worker() -> bool {
    IN_POOL_WORKER.with(|f| f.get())
}

/// Number of persistent workers: `KGFD_POOL_SIZE` when set to a positive
/// integer, otherwise the larger of the machine's available parallelism and
/// `KGFD_THREADS` (so CI legs that pin a thread count above the core count
/// still get one worker per requested thread). Fixed for the process
/// lifetime; always at least 1.
pub fn pool_size() -> usize {
    static SIZE: OnceLock<usize> = OnceLock::new();
    *SIZE.get_or_init(|| {
        let parse = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|raw| raw.trim().parse::<usize>().ok())
                .filter(|&n| n >= 1)
        };
        if let Some(n) = parse("KGFD_POOL_SIZE") {
            return n;
        }
        let hw = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        hw.max(parse("KGFD_THREADS").unwrap_or(1))
    })
}

/// The one thread-count policy for the whole workspace: rejects `0` with a
/// typed error and clamps requests beyond [`pool_size`] to the pool's width
/// (recording a warning event and bumping `pool.threads_clamped`). Used by
/// the CLI, the harness grid/sweep, and `repro`; results are identical at
/// any accepted value — clamping only changes scheduling.
pub fn resolve_threads(requested: usize) -> Result<usize, PoolError> {
    if requested == 0 {
        return Err(PoolError::ZeroThreads);
    }
    let size = pool_size();
    if requested > size {
        kgfd_obs::warn(format!(
            "requested {requested} threads but the pool has {size} workers; clamping to {size}"
        ));
        kgfd_obs::counter("pool.threads_clamped").inc();
        Ok(size)
    } else {
        Ok(requested)
    }
}

// ---------------------------------------------------------------------------
// Result slots
// ---------------------------------------------------------------------------

enum SlotFill<T> {
    Pending,
    Done(T),
    Panicked(Box<dyn Any + Send>),
    Taken,
}

struct Slot<T> {
    state: Mutex<SlotFill<T>>,
    cv: Condvar,
}

impl<T> Slot<T> {
    fn new() -> Self {
        Slot {
            state: Mutex::new(SlotFill::Pending),
            cv: Condvar::new(),
        }
    }

    fn fill(&self, result: Result<T, Box<dyn Any + Send>>) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        *state = match result {
            Ok(v) => SlotFill::Done(v),
            Err(p) => SlotFill::Panicked(p),
        };
        self.cv.notify_all();
    }

    fn take(&self) -> Result<T, Box<dyn Any + Send>> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match std::mem::replace(&mut *state, SlotFill::Taken) {
                SlotFill::Pending => {
                    *state = SlotFill::Pending;
                    state = self.cv.wait(state).unwrap_or_else(|e| e.into_inner());
                }
                SlotFill::Done(v) => return Ok(v),
                SlotFill::Panicked(p) => return Err(p),
                SlotFill::Taken => unreachable!("job result taken twice"),
            }
        }
    }
}

/// Object-safe completion view of a [`Slot`] for the scope's pending list.
trait Completion {
    /// Blocks until the job has finished (result or panic, taken or not).
    fn wait_done(&self);
    /// Removes and returns the panic payload, if the job panicked and no
    /// [`JobHandle`] consumed it.
    fn take_panic(&self) -> Option<Box<dyn Any + Send>>;
}

impl<T> Completion for Slot<T> {
    fn wait_done(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while matches!(*state, SlotFill::Pending) {
            state = self.cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if matches!(*state, SlotFill::Panicked(_)) {
            match std::mem::replace(&mut *state, SlotFill::Taken) {
                SlotFill::Panicked(p) => Some(p),
                _ => unreachable!(),
            }
        } else {
            None
        }
    }
}

/// Renders a panic payload as text for [`PoolError::WorkerPanic`].
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked (non-string payload)".to_string()
    }
}

// ---------------------------------------------------------------------------
// The persistent pool
// ---------------------------------------------------------------------------

struct Job {
    run: Box<dyn FnOnce() + Send>,
    enqueued: Instant,
}

struct Pool {
    senders: Vec<Mutex<mpsc::Sender<Job>>>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let size = pool_size();
        let mut senders = Vec::with_capacity(size);
        for w in 0..size {
            let (tx, rx) = mpsc::channel::<Job>();
            std::thread::Builder::new()
                .name(format!("kgfd-pool-{w}"))
                .spawn(move || worker_loop(rx))
                .expect("failed to spawn pool worker");
            senders.push(Mutex::new(tx));
        }
        Pool { senders }
    })
}

/// Marks the process start for phase-utilization bookkeeping.
fn clock_us() -> u64 {
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_micros() as u64
}

#[derive(Default)]
struct PhaseAgg {
    busy_us: u64,
    first_us: u64,
    last_us: u64,
    seen: bool,
}

/// Folds one finished job into its phase's utilization gauge:
/// `pool.utilization.<phase>` = busy worker-µs / (pool_size × phase wall-µs).
fn record_phase_busy(start_us: u64, end_us: u64) {
    static PHASES: OnceLock<Mutex<HashMap<String, PhaseAgg>>> = OnceLock::new();
    let phase = kgfd_obs::current_phase().unwrap_or_else(|| "unphased".to_string());
    let mut phases = PHASES
        .get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    let agg = phases.entry(phase.clone()).or_default();
    if !agg.seen {
        agg.first_us = start_us;
        agg.seen = true;
    }
    agg.first_us = agg.first_us.min(start_us);
    agg.last_us = agg.last_us.max(end_us);
    agg.busy_us += end_us.saturating_sub(start_us);
    let wall = agg.last_us.saturating_sub(agg.first_us).max(1);
    let utilization = agg.busy_us as f64 / (pool_size() as f64 * wall as f64);
    kgfd_obs::gauge(&format!("pool.utilization.{phase}")).set(utilization.min(1.0));
}

fn worker_loop(rx: mpsc::Receiver<Job>) {
    IN_POOL_WORKER.with(|f| f.set(true));
    let jobs = kgfd_obs::counter("pool.jobs");
    let queue_wait = kgfd_obs::histogram("pool.queue_wait_us");
    while let Ok(job) = rx.recv() {
        queue_wait.record(job.enqueued.elapsed().as_secs_f64() * 1e6);
        jobs.inc();
        let start_us = clock_us();
        // The closure owns its catch_unwind; a panicking job can never take
        // the worker down, so the pool survives for the process lifetime.
        (job.run)();
        record_phase_busy(start_us, clock_us());
    }
}

// ---------------------------------------------------------------------------
// Scoped dispatch
// ---------------------------------------------------------------------------

/// Handle to one spawned job's eventual result.
pub struct JobHandle<T> {
    slot: Arc<Slot<T>>,
}

impl<T> JobHandle<T> {
    /// Waits for the job and returns its result, resuming the job's panic
    /// on the calling thread if it panicked — the same observable behaviour
    /// as joining a scoped thread.
    pub fn join(self) -> T {
        match self.slot.take() {
            Ok(v) => v,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Waits for the job, converting a worker panic into a typed
    /// [`PoolError::WorkerPanic`] instead of resuming it.
    pub fn try_join(self) -> Result<T, PoolError> {
        self.slot
            .take()
            .map_err(|p| PoolError::WorkerPanic(panic_message(p.as_ref())))
    }
}

/// A dispatch scope over the persistent pool. Created by [`scope`]; all
/// jobs spawned through it complete before [`scope`] returns.
pub struct PoolScope<'env> {
    pending: RefCell<Vec<Arc<dyn Completion + Send + Sync + 'env>>>,
    next: Cell<usize>,
    /// Invariant over `'env`, mirroring `std::thread::Scope`.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> PoolScope<'env> {
    /// Spawns `f` as one job. In [`ExecMode::Persistent`] the `k`-th spawn
    /// of this scope goes to worker `k mod pool_size` (fixed assignment, no
    /// stealing); in [`ExecMode::SpawnPerCall`] a fresh OS thread is
    /// spawned, replicating the pre-pool cost model. When already running
    /// on a pool worker the job executes inline on the current thread (see
    /// the module docs on nesting).
    pub fn spawn<T, F>(&self, f: F) -> JobHandle<T>
    where
        T: Send + 'env,
        F: FnOnce() -> T + Send + 'env,
    {
        let slot = Arc::new(Slot::new());
        if on_pool_worker() {
            kgfd_obs::counter("pool.jobs.inline").inc();
            slot.fill(catch_unwind(AssertUnwindSafe(f)));
            return JobHandle { slot };
        }

        let filler = {
            let slot = Arc::clone(&slot);
            move || slot.fill(catch_unwind(AssertUnwindSafe(f)))
        };
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(filler);
        // SAFETY: the scope waits for every spawned job to complete before
        // returning (both on the normal path and, via a drop guard, when
        // the scope body unwinds), so all `'env` borrows captured by the
        // closure strictly outlive its execution. Only the lifetime is
        // erased; the vtable and layout are unchanged.
        let job: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(job) };
        self.pending
            .borrow_mut()
            .push(Arc::clone(&slot) as Arc<dyn Completion + Send + Sync + 'env>);

        match exec_mode() {
            ExecMode::Persistent => {
                let pool = pool();
                let worker = self.next.get() % pool.senders.len();
                self.next.set(self.next.get() + 1);
                let send = pool.senders[worker]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .send(Job {
                        run: job,
                        enqueued: Instant::now(),
                    });
                // Workers live for the process lifetime; a closed channel
                // is unreachable short of worker-thread spawn failure.
                send.expect("pool worker queue closed");
            }
            ExecMode::SpawnPerCall => {
                std::thread::Builder::new()
                    .name("kgfd-spawn-per-call".to_string())
                    .spawn(job)
                    .expect("failed to spawn per-call thread");
            }
        }
        JobHandle { slot }
    }

    /// Blocks until every spawned job has finished, discarding panics
    /// (used while unwinding, where a second panic would abort).
    fn wait_all_quiet(&self) {
        for c in self.pending.borrow_mut().drain(..) {
            c.wait_done();
            drop(c.take_panic());
        }
    }

    /// Blocks until every spawned job has finished, then resumes the first
    /// unclaimed panic, if any.
    fn finish(&self) {
        let mut first_panic: Option<Box<dyn Any + Send>> = None;
        for c in self.pending.borrow_mut().drain(..) {
            c.wait_done();
            if let Some(p) = c.take_panic() {
                first_panic.get_or_insert(p);
            }
        }
        if let Some(p) = first_panic {
            resume_unwind(p);
        }
    }
}

/// Runs `f` with a [`PoolScope`] through which borrowing jobs can be
/// dispatched to the persistent pool. Every spawned job completes before
/// this returns; a panic in an unjoined job is resumed here (matching
/// `crossbeam::thread::scope(...).expect(...)` semantics).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: FnOnce(&PoolScope<'env>) -> R,
{
    let scope = PoolScope {
        pending: RefCell::new(Vec::new()),
        next: Cell::new(0),
        _env: PhantomData,
    };
    struct Guard<'a, 'env>(&'a PoolScope<'env>);
    impl Drop for Guard<'_, '_> {
        fn drop(&mut self) {
            self.0.wait_all_quiet();
        }
    }
    let guard = Guard(&scope);
    let result = f(&scope);
    std::mem::forget(guard);
    scope.finish();
    result
}

/// Convenience fan-out: runs `f(0..jobs)` across the pool, returning the
/// results in job-index order. Each job is a fixed index — contiguous range
/// splitting is the caller's business. With `jobs <= 1` (or on a pool
/// worker) everything runs inline on the current thread.
pub fn run<T, F>(jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs <= 1 || on_pool_worker() {
        if on_pool_worker() {
            kgfd_obs::counter("pool.jobs.inline").add(jobs as u64);
        }
        return (0..jobs).map(f).collect();
    }
    let f = &f;
    scope(|s| {
        let handles: Vec<_> = (0..jobs).map(|i| s.spawn(move || f(i))).collect();
        handles.into_iter().map(JobHandle::join).collect()
    })
}

/// [`run`] with worker panics surfaced as [`PoolError::WorkerPanic`]
/// instead of resumed.
pub fn try_run<T, F>(jobs: usize, f: F) -> Result<Vec<T>, PoolError>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs <= 1 || on_pool_worker() {
        if on_pool_worker() {
            kgfd_obs::counter("pool.jobs.inline").add(jobs as u64);
        }
        let mut out = Vec::with_capacity(jobs);
        for i in 0..jobs {
            out.push(
                catch_unwind(AssertUnwindSafe(|| f(i)))
                    .map_err(|p| PoolError::WorkerPanic(panic_message(p.as_ref())))?,
            );
        }
        return Ok(out);
    }
    let f = &f;
    scope(|s| {
        let handles: Vec<_> = (0..jobs).map(|i| s.spawn(move || f(i))).collect();
        handles.into_iter().map(JobHandle::try_join).collect()
    })
}

/// Pool scheduling stats for the end-of-run manifest: jobs executed so far
/// and queue-wait quantiles. (`None` quantiles = no jobs yet.)
pub fn queue_wait_summary() -> (u64, Option<f64>, Option<f64>) {
    let h = kgfd_obs::histogram("pool.queue_wait_us");
    (
        kgfd_obs::counter("pool.jobs").get(),
        h.quantile(0.5),
        h.quantile(0.95),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_preserves_job_index_order() {
        let out = run(8, |i| i * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn scope_joins_borrowing_jobs() {
        let data = [1u64, 2, 3, 4, 5, 6];
        let total: u64 = scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|part| s.spawn(move || part.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(JobHandle::join).sum()
        });
        assert_eq!(total, 21);
    }

    #[test]
    fn scope_writes_into_disjoint_mut_chunks() {
        let mut out = vec![0u32; 10];
        scope(|s| {
            for (base, chunk) in out.chunks_mut(3).enumerate() {
                s.spawn(move || {
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        *slot = (base * 3 + i) as u32;
                    }
                });
            }
        });
        assert_eq!(out, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn try_join_types_a_worker_panic() {
        let err = scope(|s| s.spawn(|| panic!("boom {}", 42)).try_join()).unwrap_err();
        match err {
            PoolError::WorkerPanic(msg) => assert!(msg.contains("boom 42"), "{msg}"),
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }

    #[test]
    fn unjoined_panic_resumes_at_scope_exit() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                s.spawn(|| panic!("unjoined"));
            })
        }));
        let payload = result.unwrap_err();
        assert_eq!(panic_message(payload.as_ref()), "unjoined");
    }

    #[test]
    fn spawn_per_call_mode_matches_persistent_results() {
        let persistent = with_exec_mode(ExecMode::Persistent, || run(5, |i| i as u64 * 3));
        let spawned = with_exec_mode(ExecMode::SpawnPerCall, || run(5, |i| i as u64 * 3));
        assert_eq!(persistent, spawned);
    }

    #[test]
    fn nested_scopes_fall_back_to_inline_execution() {
        // A job that itself fans out: the inner spawns must run inline on
        // the worker (no queueing behind the outer job) and still produce
        // ordered results.
        let out = run(4, |i| {
            let inner = run(3, move |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        assert_eq!(out, vec![3, 33, 63, 93]);
    }

    #[test]
    fn resolve_threads_rejects_zero_and_clamps() {
        assert!(matches!(resolve_threads(0), Err(PoolError::ZeroThreads)));
        assert_eq!(resolve_threads(1).unwrap(), 1);
        let size = pool_size();
        assert_eq!(resolve_threads(size).unwrap(), size);
        assert_eq!(resolve_threads(size + 100).unwrap(), size);
    }

    #[test]
    fn pool_records_job_metrics() {
        let before = kgfd_obs::counter("pool.jobs").get();
        with_exec_mode(ExecMode::Persistent, || {
            drop(run(4, |i| i));
        });
        // Either the jobs ran on workers (counter moved) or this thread was
        // itself a worker (inline; nothing enqueued). Never both zero *and*
        // off-worker with multi-job input on a multi-worker pool.
        if !on_pool_worker() && pool_size() > 1 {
            assert!(kgfd_obs::counter("pool.jobs").get() > before);
        }
    }
}
