//! Differential properties of the batched scoring kernels: for *every*
//! model kind, `score_objects_batch` / `score_subjects_batch` must be
//! **bitwise** equal to looping the single-query kernels — the contract the
//! batched ranking engine (`kgfd_eval::BatchRanker`) relies on to keep ranks
//! identical to the scalar path. Query lists deliberately include
//! duplicates and ragged lengths (not multiples of the tile width).

use kgfd_embed::{new_model, ModelKind};
use kgfd_kg::{EntityId, RelationId};
use proptest::prelude::*;

const N: usize = 9;
const K: usize = 4;
const DIM: usize = 12; // even (ComplEx/RotatE/SimplE) and 3×4-reshapeable (ConvE)

fn arb_kind() -> impl Strategy<Value = ModelKind> {
    proptest::sample::select(ModelKind::ALL.to_vec())
}

/// 0–40 queries: crosses the tile boundary (tile width 8) several times and
/// exercises the empty and ragged-tail cases.
fn arb_queries() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..N as u32, 0..K as u32), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn object_batch_is_bitwise_equal_to_looped_kernel(
        kind in arb_kind(), seed in 0u64..300, queries in arb_queries()
    ) {
        let model = new_model(kind, N, K, DIM, seed);
        let qs: Vec<(EntityId, RelationId)> = queries
            .iter()
            .map(|&(s, r)| (EntityId(s), RelationId(r)))
            .collect();

        let mut batched = vec![0.0f32; qs.len() * N];
        model.score_objects_batch(&qs, &mut batched);

        let mut looped = vec![0.0f32; qs.len() * N];
        for (q, chunk) in qs.iter().zip(looped.chunks_mut(N)) {
            model.score_objects(q.0, q.1, chunk);
        }

        for (i, (a, b)) in batched.iter().zip(&looped).enumerate() {
            prop_assert_eq!(
                a.to_bits(), b.to_bits(),
                "{}: object slot {} diverged: batched {} vs looped {}",
                kind, i, a, b
            );
        }
    }

    #[test]
    fn subject_batch_is_bitwise_equal_to_looped_kernel(
        kind in arb_kind(), seed in 0u64..300, queries in arb_queries()
    ) {
        let model = new_model(kind, N, K, DIM, seed);
        let qs: Vec<(RelationId, EntityId)> = queries
            .iter()
            .map(|&(o, r)| (RelationId(r), EntityId(o)))
            .collect();

        let mut batched = vec![0.0f32; qs.len() * N];
        model.score_subjects_batch(&qs, &mut batched);

        let mut looped = vec![0.0f32; qs.len() * N];
        for (q, chunk) in qs.iter().zip(looped.chunks_mut(N)) {
            model.score_subjects(q.0, q.1, chunk);
        }

        for (i, (a, b)) in batched.iter().zip(&looped).enumerate() {
            prop_assert_eq!(
                a.to_bits(), b.to_bits(),
                "{}: subject slot {} diverged: batched {} vs looped {}",
                kind, i, a, b
            );
        }
    }

    #[test]
    fn duplicate_queries_fill_identical_rows(
        kind in arb_kind(), seed in 0u64..300,
        s in 0..N as u32, r in 0..K as u32, copies in 2usize..6
    ) {
        // A batch of the same query repeated must produce byte-identical
        // rows — the property that makes query deduplication sound.
        let model = new_model(kind, N, K, DIM, seed);
        let qs = vec![(EntityId(s), RelationId(r)); copies];
        let mut out = vec![0.0f32; copies * N];
        model.score_objects_batch(&qs, &mut out);
        let first: Vec<u32> = out[..N].iter().map(|v| v.to_bits()).collect();
        for row in out.chunks(N).skip(1) {
            let bits: Vec<u32> = row.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(&bits, &first, "{}: duplicated query rows diverged", kind);
        }
    }
}
