//! Property-based tests of the embedding substrate: for *every* model kind,
//! the batched kernels must agree with pointwise scoring, backward must
//! touch the right rows, and persistence must round-trip — under arbitrary
//! seeds and shapes.

use kgfd_embed::{
    load_model, negative_stream, new_model, save_model, CorruptSide, Gradients, ModelKind,
    NegativeSampler, ENTITY_TABLE,
};
use kgfd_kg::{EntityId, RelationId, Triple, TripleStore};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 7;
const K: usize = 3;
const DIM: usize = 12; // even (ComplEx) and 3×4-reshapeable (ConvE)

fn arb_kind() -> impl Strategy<Value = ModelKind> {
    proptest::sample::select(ModelKind::ALL.to_vec())
}

fn arb_triple() -> impl Strategy<Value = Triple> {
    (0..N as u32, 0..K as u32, 0..N as u32).prop_map(|(s, r, o)| Triple::new(s, r, o))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scores_are_finite(kind in arb_kind(), seed in 0u64..500, t in arb_triple()) {
        let model = new_model(kind, N, K, DIM, seed);
        prop_assert!(model.score(t).is_finite());
    }

    #[test]
    fn batched_object_kernel_matches_score(kind in arb_kind(), seed in 0u64..200,
                                           s in 0..N as u32, r in 0..K as u32) {
        let model = new_model(kind, N, K, DIM, seed);
        let mut out = vec![0.0f32; N];
        model.score_objects(EntityId(s), RelationId(r), &mut out);
        for (e, &batched) in out.iter().enumerate() {
            let direct = model.score(Triple::new(s, r, e as u32));
            prop_assert!((batched - direct).abs() < 1e-4,
                "{kind}: object kernel {batched} vs score {direct}");
        }
    }

    #[test]
    fn batched_subject_kernel_is_consistent(kind in arb_kind(), seed in 0u64..200,
                                            r in 0..K as u32, o in 0..N as u32) {
        // For ConvE the subject kernel intentionally uses the reciprocal
        // path, so it is checked against itself across calls (determinism)
        // and against score() for the other kinds.
        let model = new_model(kind, N, K, DIM, seed);
        let mut a = vec![0.0f32; N];
        let mut b = vec![0.0f32; N];
        model.score_subjects(RelationId(r), EntityId(o), &mut a);
        model.score_subjects(RelationId(r), EntityId(o), &mut b);
        prop_assert_eq!(&a, &b);
        if kind != ModelKind::ConvE {
            for (e, &batched) in a.iter().enumerate() {
                let direct = model.score(Triple::new(e as u32, r, o));
                prop_assert!((batched - direct).abs() < 1e-4,
                    "{kind}: subject kernel {batched} vs score {direct}");
            }
        }
    }

    #[test]
    fn backward_touches_the_triples_rows(kind in arb_kind(), seed in 0u64..200, t in arb_triple()) {
        let model = new_model(kind, N, K, DIM, seed);
        let mut grads = Gradients::new();
        model.backward(t, 1.0, &mut grads);
        prop_assert!(grads.get(ENTITY_TABLE, t.subject.index()).is_some());
        prop_assert!(grads.get(ENTITY_TABLE, t.object.index()).is_some());
        // No entity row outside {s, o} may be touched.
        for (table, row, _) in grads.iter() {
            if table == ENTITY_TABLE {
                prop_assert!(row == t.subject.index() || row == t.object.index());
            }
        }
    }

    #[test]
    fn backward_scales_linearly_in_upstream(kind in arb_kind(), seed in 0u64..100, t in arb_triple()) {
        let model = new_model(kind, N, K, DIM, seed);
        let mut g1 = Gradients::new();
        let mut g2 = Gradients::new();
        model.backward(t, 1.0, &mut g1);
        model.backward(t, 2.5, &mut g2);
        for (table, row, grad) in g1.iter() {
            let scaled = g2.get(table, row).expect("same rows touched");
            for (a, b) in grad.iter().zip(scaled) {
                prop_assert!((a * 2.5 - b).abs() < 1e-4 * (1.0 + b.abs()));
            }
        }
    }

    #[test]
    fn persistence_roundtrips_every_kind(kind in arb_kind(), seed in 0u64..200, t in arb_triple()) {
        let model = new_model(kind, N, K, DIM, seed);
        let loaded = load_model(&save_model(model.as_ref())).unwrap();
        prop_assert_eq!(loaded.kind(), kind);
        prop_assert_eq!(loaded.num_entities(), N);
        let a = model.score(t);
        let b = loaded.score(t);
        prop_assert!((a - b).abs() < 1e-7);
    }

    /// Persistence must be lossless to the bit, for every model kind and —
    /// the regression behind the v2 format — both TransE distances saved
    /// through the *generic* `save_model` path. (The retired v1
    /// `save_transe` shim hand-patched the distance flag; L2 models saved
    /// generically came back as L1.)
    #[test]
    fn roundtrip_scores_are_bit_identical_for_every_config(
        kind in arb_kind(),
        l2 in 0u8..2,
        seed in 0u64..200,
        t in arb_triple(),
    ) {
        use kgfd_embed::models::{Distance, TransE};
        let model: Box<dyn kgfd_embed::KgeModel> = if kind == ModelKind::TransE {
            let d = if l2 == 1 { Distance::L2 } else { Distance::L1 };
            Box::new(TransE::new(N, K, DIM, d, seed))
        } else {
            new_model(kind, N, K, DIM, seed)
        };
        let loaded = load_model(&save_model(model.as_ref())).unwrap();
        prop_assert_eq!(loaded.config(), model.config(), "config must survive");
        prop_assert_eq!(loaded.params(), model.params(), "parameters must survive");
        prop_assert_eq!(
            loaded.score(t).to_bits(),
            model.score(t).to_bits(),
            "score of {:?} drifted across save/load", t
        );
    }

    #[test]
    fn same_seed_same_model(kind in arb_kind(), seed in 0u64..200) {
        let a = new_model(kind, N, K, DIM, seed);
        let b = new_model(kind, N, K, DIM, seed);
        prop_assert_eq!(a.params(), b.params());
    }
}

// Properties of the negative sampler and the parallel trainer's RNG streams.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// With a generous retry budget, filtered sampling never returns a
    /// known-true triple in practice. The triple count is capped at `N - 2`
    /// so every corruption side always has at least two free entities; the
    /// residual failure probability is ((N-2)/N)^1000 ≈ 10^-146.
    #[test]
    fn filtered_negatives_never_collide_with_known_triples(
        triples in proptest::collection::vec(arb_triple(), 1..N - 1),
        seed in 0u64..500,
        side_pick in 0u8..3,
    ) {
        let store = TripleStore::new(N, K, triples.clone()).unwrap();
        let sampler = NegativeSampler::with_max_retries(N, 1000);
        let side = match side_pick {
            0 => CorruptSide::Subject,
            1 => CorruptSide::Object,
            _ => CorruptSide::Both,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        for &t in &triples {
            let neg = sampler.corrupt(t, side, Some(&store), &mut rng);
            prop_assert!(!store.contains(&neg),
                "filtered corruption of {t:?} returned known-true {neg:?}");
        }
    }

    /// Corruption replaces exactly the requested side: the relation always
    /// survives, and the un-corrupted entity side is untouched.
    #[test]
    fn corruption_respects_the_side_choice(
        t in arb_triple(),
        seed in 0u64..500,
    ) {
        let sampler = NegativeSampler::new(N);
        let mut rng = StdRng::seed_from_u64(seed);
        let s = sampler.corrupt(t, CorruptSide::Subject, None, &mut rng);
        prop_assert_eq!(s.relation, t.relation);
        prop_assert_eq!(s.object, t.object);
        let o = sampler.corrupt(t, CorruptSide::Object, None, &mut rng);
        prop_assert_eq!(o.relation, t.relation);
        prop_assert_eq!(o.subject, t.subject);
        let b = sampler.corrupt(t, CorruptSide::Both, None, &mut rng);
        prop_assert_eq!(b.relation, t.relation);
        prop_assert!(b.subject == t.subject || b.object == t.object,
            "Both mode must keep one side intact");
    }

    /// Distinct shard coordinates yield pairwise non-overlapping stream
    /// prefixes: no u64 drawn by one stream appears in the other's first
    /// draws. (Two independent 64-bit streams of length 16 collide with
    /// probability ≈ 2^-56 — a hit here means broken stream derivation.)
    #[test]
    fn shard_streams_have_non_overlapping_prefixes(
        seed in 0u64..200,
        epoch in 0u64..8,
        a in 0u64..64,
        delta in 1u64..64,
    ) {
        let b = a + delta; // always a distinct shard index
        let draw = |shard: u64| -> Vec<u64> {
            let mut rng = negative_stream(seed, epoch, shard);
            (0..16).map(|_| rng.next_u64()).collect()
        };
        let xs = draw(a);
        let ys = draw(b);
        for (i, x) in xs.iter().enumerate() {
            for (j, y) in ys.iter().enumerate() {
                prop_assert!(x != y,
                    "streams {a} and {b} share value {x:#x} at prefix positions {i}/{j}");
            }
        }
        // And the same coordinates reproduce the same prefix.
        prop_assert_eq!(draw(a), xs);
    }
}
