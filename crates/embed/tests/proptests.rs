//! Property-based tests of the embedding substrate: for *every* model kind,
//! the batched kernels must agree with pointwise scoring, backward must
//! touch the right rows, and persistence must round-trip — under arbitrary
//! seeds and shapes.

use kgfd_embed::{load_model, new_model, save_model, Gradients, ModelKind, ENTITY_TABLE};
use kgfd_kg::{EntityId, RelationId, Triple};
use proptest::prelude::*;

const N: usize = 7;
const K: usize = 3;
const DIM: usize = 12; // even (ComplEx) and 3×4-reshapeable (ConvE)

fn arb_kind() -> impl Strategy<Value = ModelKind> {
    proptest::sample::select(ModelKind::ALL.to_vec())
}

fn arb_triple() -> impl Strategy<Value = Triple> {
    (0..N as u32, 0..K as u32, 0..N as u32).prop_map(|(s, r, o)| Triple::new(s, r, o))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scores_are_finite(kind in arb_kind(), seed in 0u64..500, t in arb_triple()) {
        let model = new_model(kind, N, K, DIM, seed);
        prop_assert!(model.score(t).is_finite());
    }

    #[test]
    fn batched_object_kernel_matches_score(kind in arb_kind(), seed in 0u64..200,
                                           s in 0..N as u32, r in 0..K as u32) {
        let model = new_model(kind, N, K, DIM, seed);
        let mut out = vec![0.0f32; N];
        model.score_objects(EntityId(s), RelationId(r), &mut out);
        for (e, &batched) in out.iter().enumerate() {
            let direct = model.score(Triple::new(s, r, e as u32));
            prop_assert!((batched - direct).abs() < 1e-4,
                "{kind}: object kernel {batched} vs score {direct}");
        }
    }

    #[test]
    fn batched_subject_kernel_is_consistent(kind in arb_kind(), seed in 0u64..200,
                                            r in 0..K as u32, o in 0..N as u32) {
        // For ConvE the subject kernel intentionally uses the reciprocal
        // path, so it is checked against itself across calls (determinism)
        // and against score() for the other kinds.
        let model = new_model(kind, N, K, DIM, seed);
        let mut a = vec![0.0f32; N];
        let mut b = vec![0.0f32; N];
        model.score_subjects(RelationId(r), EntityId(o), &mut a);
        model.score_subjects(RelationId(r), EntityId(o), &mut b);
        prop_assert_eq!(&a, &b);
        if kind != ModelKind::ConvE {
            for (e, &batched) in a.iter().enumerate() {
                let direct = model.score(Triple::new(e as u32, r, o));
                prop_assert!((batched - direct).abs() < 1e-4,
                    "{kind}: subject kernel {batched} vs score {direct}");
            }
        }
    }

    #[test]
    fn backward_touches_the_triples_rows(kind in arb_kind(), seed in 0u64..200, t in arb_triple()) {
        let model = new_model(kind, N, K, DIM, seed);
        let mut grads = Gradients::new();
        model.backward(t, 1.0, &mut grads);
        prop_assert!(grads.get(ENTITY_TABLE, t.subject.index()).is_some());
        prop_assert!(grads.get(ENTITY_TABLE, t.object.index()).is_some());
        // No entity row outside {s, o} may be touched.
        for (table, row, _) in grads.iter() {
            if table == ENTITY_TABLE {
                prop_assert!(row == t.subject.index() || row == t.object.index());
            }
        }
    }

    #[test]
    fn backward_scales_linearly_in_upstream(kind in arb_kind(), seed in 0u64..100, t in arb_triple()) {
        let model = new_model(kind, N, K, DIM, seed);
        let mut g1 = Gradients::new();
        let mut g2 = Gradients::new();
        model.backward(t, 1.0, &mut g1);
        model.backward(t, 2.5, &mut g2);
        for (table, row, grad) in g1.iter() {
            let scaled = g2.get(table, row).expect("same rows touched");
            for (a, b) in grad.iter().zip(scaled) {
                prop_assert!((a * 2.5 - b).abs() < 1e-4 * (1.0 + b.abs()));
            }
        }
    }

    #[test]
    fn persistence_roundtrips_every_kind(kind in arb_kind(), seed in 0u64..200, t in arb_triple()) {
        let model = new_model(kind, N, K, DIM, seed);
        let loaded = load_model(&save_model(model.as_ref())).unwrap();
        prop_assert_eq!(loaded.kind(), kind);
        prop_assert_eq!(loaded.num_entities(), N);
        let a = model.score(t);
        let b = loaded.score(t);
        prop_assert!((a - b).abs() < 1e-7);
    }

    #[test]
    fn same_seed_same_model(kind in arb_kind(), seed in 0u64..200) {
        let a = new_model(kind, N, K, DIM, seed);
        let b = new_model(kind, N, K, DIM, seed);
        prop_assert_eq!(a.params(), b.params());
    }
}
