//! Parameter storage shared by all models and optimizers.
//!
//! A model's parameters are a list of row-major [`ParamTable`]s. By
//! convention table 0 holds entity embeddings and table 1 relation
//! embeddings; models with shared weights (RESCAL matrices, ConvE filters)
//! add more tables. Gradients are accumulated sparsely per `(table, row)` so
//! an optimizer only touches the rows a batch actually used — the standard
//! "sparse Adam" arrangement for embedding models.

use std::collections::HashMap;

/// A dense row-major matrix of `f32` parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamTable {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl ParamTable {
    /// Allocates a zeroed table.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        ParamTable {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Wraps existing data; `data.len()` must be `rows * cols`.
    pub fn from_data(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "table shape mismatch");
        ParamTable { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (row width).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The full backing buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable full backing buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

/// All parameter tables of one model.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Parameters {
    tables: Vec<ParamTable>,
}

/// Index of the entity-embedding table (by convention).
pub const ENTITY_TABLE: usize = 0;
/// Index of the relation-embedding table (by convention).
pub const RELATION_TABLE: usize = 1;

impl Parameters {
    /// Creates an empty parameter set; push tables in conventional order.
    pub fn new(tables: Vec<ParamTable>) -> Self {
        Parameters { tables }
    }

    /// The table list.
    pub fn tables(&self) -> &[ParamTable] {
        &self.tables
    }

    /// Table `i`.
    #[inline]
    pub fn table(&self, i: usize) -> &ParamTable {
        &self.tables[i]
    }

    /// Mutable table `i`.
    #[inline]
    pub fn table_mut(&mut self, i: usize) -> &mut ParamTable {
        &mut self.tables[i]
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Total scalar parameter count.
    pub fn num_parameters(&self) -> usize {
        self.tables.iter().map(|t| t.data.len()).sum()
    }
}

/// Sparse gradient accumulator keyed by `(table, row)`.
#[derive(Debug, Default)]
pub struct Gradients {
    grads: HashMap<(usize, usize), Vec<f32>>,
}

impl Gradients {
    /// An empty accumulator.
    pub fn new() -> Self {
        Gradients::default()
    }

    /// Accumulates `alpha * grad` into the gradient of `(table, row)`.
    pub fn add(&mut self, table: usize, row: usize, grad: &[f32], alpha: f32) {
        let slot = self
            .grads
            .entry((table, row))
            .or_insert_with(|| vec![0.0; grad.len()]);
        debug_assert_eq!(slot.len(), grad.len());
        crate::math::add_scaled(slot, grad, alpha);
    }

    /// Mutable access to the gradient of `(table, row)`, creating a zeroed
    /// buffer of width `width` on first touch. Lets backward passes write
    /// in place instead of allocating temporaries.
    pub fn slot(&mut self, table: usize, row: usize, width: usize) -> &mut [f32] {
        self.grads
            .entry((table, row))
            .or_insert_with(|| vec![0.0; width])
    }

    /// The gradient of `(table, row)` if touched.
    pub fn get(&self, table: usize, row: usize) -> Option<&[f32]> {
        self.grads.get(&(table, row)).map(Vec::as_slice)
    }

    /// Iterates over all touched `(table, row)` gradients.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &[f32])> {
        self.grads.iter().map(|(&(t, r), g)| (t, r, g.as_slice()))
    }

    /// Number of touched rows.
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// `true` if nothing was accumulated.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    /// Clears all accumulated gradients, keeping allocations.
    pub fn clear(&mut self) {
        self.grads.clear();
    }

    /// Accumulates every gradient of `other` into `self`.
    ///
    /// Bit-exact: a row absent from `self` is copied (`0 + x = x` and
    /// `x * 1.0 = x` hold exactly in IEEE-754), and rows are independent, so
    /// calling this once per shard buffer in ascending shard order
    /// reproduces the float-addition order of a sequential pass.
    pub fn merge_from(&mut self, other: &Gradients) {
        for (table, row, grad) in other.iter() {
            self.add(table, row, grad, 1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rows_are_disjoint_views() {
        let mut t = ParamTable::zeros(3, 2);
        t.row_mut(1).copy_from_slice(&[1.0, 2.0]);
        assert_eq!(t.row(0), &[0.0, 0.0]);
        assert_eq!(t.row(1), &[1.0, 2.0]);
        assert_eq!(t.row(2), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_data_validates_shape() {
        ParamTable::from_data(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn parameters_count_scalars() {
        let p = Parameters::new(vec![ParamTable::zeros(4, 3), ParamTable::zeros(2, 5)]);
        assert_eq!(p.num_parameters(), 22);
        assert_eq!(p.num_tables(), 2);
    }

    #[test]
    fn gradients_accumulate() {
        let mut g = Gradients::new();
        g.add(0, 7, &[1.0, 2.0], 1.0);
        g.add(0, 7, &[1.0, 1.0], 2.0);
        assert_eq!(g.get(0, 7), Some(&[3.0, 4.0][..]));
        assert_eq!(g.len(), 1);
        g.clear();
        assert!(g.is_empty());
    }

    #[test]
    fn slot_creates_zeroed_buffer() {
        let mut g = Gradients::new();
        g.slot(1, 3, 4)[2] = 5.0;
        assert_eq!(g.get(1, 3), Some(&[0.0, 0.0, 5.0, 0.0][..]));
    }
}
