//! Negative sampling: corrupting one side of a positive triple with a random
//! entity, optionally filtered against known-true triples.

use kgfd_kg::{EntityId, Side, Triple, TripleStore};
use rand::rngs::StdRng;
use rand::Rng;

/// Which side(s) of a triple to corrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptSide {
    /// Always replace the subject.
    Subject,
    /// Always replace the object.
    Object,
    /// Flip a fair coin per sample (the Bordes et al. protocol).
    Both,
}

/// A seeded negative sampler over a fixed entity range.
pub struct NegativeSampler {
    num_entities: usize,
    /// Retry budget when filtering accidentally-true negatives.
    max_retries: usize,
}

impl NegativeSampler {
    /// Creates a sampler over entities `0..num_entities`.
    pub fn new(num_entities: usize) -> Self {
        NegativeSampler {
            num_entities,
            max_retries: 10,
        }
    }

    /// A sampler with an explicit retry budget for filtered sampling. The
    /// default budget (10) trades a rare accidentally-true negative for
    /// bounded work on dense graphs; tests that need collision-freedom in
    /// practice can raise it.
    pub fn with_max_retries(num_entities: usize, max_retries: usize) -> Self {
        NegativeSampler {
            num_entities,
            max_retries,
        }
    }

    /// Corrupts `t` on the configured side. If `filter` is given, re-samples
    /// (up to a bounded number of retries) when the corruption is a known
    /// true triple — the "filtered" negative sampling setting.
    pub fn corrupt(
        &self,
        t: Triple,
        side: CorruptSide,
        filter: Option<&TripleStore>,
        rng: &mut StdRng,
    ) -> Triple {
        let side = match side {
            CorruptSide::Subject => Side::Subject,
            CorruptSide::Object => Side::Object,
            CorruptSide::Both => {
                if rng.random::<bool>() {
                    Side::Subject
                } else {
                    Side::Object
                }
            }
        };
        let mut candidate = self.replace(t, side, rng);
        if let Some(store) = filter {
            let mut retries = 0;
            while store.contains(&candidate) && retries < self.max_retries {
                candidate = self.replace(t, side, rng);
                retries += 1;
            }
        }
        candidate
    }

    fn replace(&self, t: Triple, side: Side, rng: &mut StdRng) -> Triple {
        let e = EntityId(rng.random_range(0..self.num_entities as u32));
        match side {
            Side::Subject => t.with_subject(e),
            Side::Object => t.with_object(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn corrupt_changes_exactly_one_side() {
        let sampler = NegativeSampler::new(100);
        let mut rng = StdRng::seed_from_u64(1);
        let t = Triple::new(5u32, 2u32, 9u32);
        for _ in 0..50 {
            let c = sampler.corrupt(t, CorruptSide::Object, None, &mut rng);
            assert_eq!(c.subject, t.subject);
            assert_eq!(c.relation, t.relation);
            let c = sampler.corrupt(t, CorruptSide::Subject, None, &mut rng);
            assert_eq!(c.object, t.object);
            assert_eq!(c.relation, t.relation);
        }
    }

    #[test]
    fn both_mode_corrupts_each_side_sometimes() {
        let sampler = NegativeSampler::new(1000);
        let mut rng = StdRng::seed_from_u64(2);
        let t = Triple::new(5u32, 0u32, 9u32);
        let mut subj = 0;
        let mut obj = 0;
        for _ in 0..200 {
            let c = sampler.corrupt(t, CorruptSide::Both, None, &mut rng);
            if c.subject != t.subject {
                subj += 1;
            } else if c.object != t.object {
                obj += 1;
            }
        }
        assert!(subj > 40, "subject corrupted {subj} times");
        assert!(obj > 40, "object corrupted {obj} times");
    }

    #[test]
    fn filtering_avoids_known_true_triples() {
        // Dense tiny graph: (0, 0, o) true for o in {1, 2, 3}; entity space
        // {0..=4} leaves {0, 4} as valid corruptions.
        let store = TripleStore::new(
            5,
            1,
            vec![
                Triple::new(0u32, 0u32, 1u32),
                Triple::new(0u32, 0u32, 2u32),
                Triple::new(0u32, 0u32, 3u32),
            ],
        )
        .unwrap();
        let sampler = NegativeSampler::new(5);
        let mut rng = StdRng::seed_from_u64(3);
        let t = Triple::new(0u32, 0u32, 1u32);
        let mut hits = 0;
        for _ in 0..100 {
            let c = sampler.corrupt(t, CorruptSide::Object, Some(&store), &mut rng);
            if store.contains(&c) {
                hits += 1;
            }
        }
        // The retry budget makes accidental hits rare, not impossible.
        assert!(hits < 5, "filtered sampler produced {hits} true negatives");
    }
}
