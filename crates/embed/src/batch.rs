//! Tiled entity-table sweeps shared by the batched scoring kernels.
//!
//! Every dot-product-family model reduces a side query to a *query vector*
//! (or a translation point) that is then combined with each row of the
//! entity table. The single-query kernels therefore sweep the whole
//! `N × dim` table once per query. The helpers here sweep it once per
//! **tile of [`QUERY_TILE`] queries** instead, and walk the table in
//! blocks of [`ENTITY_BLOCK`] rows: within a block, the inner loops run
//! query-then-entity, so
//!
//! - a block of entity rows is reused by every query of the tile while it
//!   is still cache-resident, and
//! - each query writes its `out[q·N + block]` slots as one contiguous run
//!   instead of the old stride-`N` scatter (one write per entity per
//!   query), which lets the stores stream.
//!
//! **Bit-identical-scores contract:** for each `(query, entity)` pair the
//! reduction below is the exact expression of the corresponding
//! single-query kernel, in the same summation order over `dim`. Tiling and
//! entity blocking only reorder *independent* output slots, so batched
//! scores are bitwise equal to looped single-query scores — the
//! differential suites in `tests/batch_kernels.rs` and `kgfd-eval` hold
//! both paths to that.
//!
//! Output layout is query-major: `out[q * N + e]` is query `q`'s score for
//! entity `e`, with `N = entities.rows()`.

use crate::math::{dot, l1_distance, l2_distance};
use crate::ParamTable;

/// Queries per entity-table sweep. Sized so a tile of query vectors stays
/// resident in L1 alongside the streamed entity row at typical dims.
pub const QUERY_TILE: usize = 8;

/// Entity rows per block of the sweep. At dim ≈ 128 a block is
/// `64 × 128 × 4 B = 32 KiB` of entity rows — within L1 on current cores —
/// reused [`QUERY_TILE`] times before moving on, while each query's output
/// slice is written in contiguous 256-byte runs.
pub const ENTITY_BLOCK: usize = 64;

#[inline]
fn check_shapes(entities: &ParamTable, qvecs: &[f32], dim: usize, out: &[f32]) -> usize {
    debug_assert!(dim > 0);
    debug_assert_eq!(entities.cols(), dim);
    debug_assert_eq!(qvecs.len() % dim, 0);
    let q = qvecs.len() / dim;
    debug_assert_eq!(out.len(), q * entities.rows());
    q
}

/// `out[q·N + e] = dot(qvecs[q], entity_e)`, one table sweep per tile.
///
/// `scale` post-multiplies each dot (SimplE's `½`); `None` stores the dot
/// verbatim, exactly as the unscaled single-query kernels do.
pub fn dot_sweep(
    entities: &ParamTable,
    qvecs: &[f32],
    dim: usize,
    scale: Option<f32>,
    out: &mut [f32],
) {
    let q = check_shapes(entities, qvecs, dim, out);
    let n = entities.rows();
    let mut tile_start = 0;
    while tile_start < q {
        let tile_end = (tile_start + QUERY_TILE).min(q);
        let mut block_start = 0;
        while block_start < n {
            let block_end = (block_start + ENTITY_BLOCK).min(n);
            for qi in tile_start..tile_end {
                let qv = &qvecs[qi * dim..(qi + 1) * dim];
                let out_row = &mut out[qi * n + block_start..qi * n + block_end];
                for (slot, e) in (block_start..block_end).enumerate() {
                    let d = dot(qv, entities.row(e));
                    out_row[slot] = match scale {
                        None => d,
                        Some(s) => s * d,
                    };
                }
            }
            block_start = block_end;
        }
        tile_start = tile_end;
    }
}

/// `out[q·N + e] = −‖entity_e − points[q]‖₁` (TransE-L1 sweep).
pub fn neg_l1_sweep(entities: &ParamTable, points: &[f32], dim: usize, out: &mut [f32]) {
    let q = check_shapes(entities, points, dim, out);
    let n = entities.rows();
    let mut tile_start = 0;
    while tile_start < q {
        let tile_end = (tile_start + QUERY_TILE).min(q);
        let mut block_start = 0;
        while block_start < n {
            let block_end = (block_start + ENTITY_BLOCK).min(n);
            for qi in tile_start..tile_end {
                let point = &points[qi * dim..(qi + 1) * dim];
                let out_row = &mut out[qi * n + block_start..qi * n + block_end];
                for (slot, e) in (block_start..block_end).enumerate() {
                    out_row[slot] = -l1_distance(entities.row(e), point);
                }
            }
            block_start = block_end;
        }
        tile_start = tile_end;
    }
}

/// `out[q·N + e] = −‖entity_e − points[q]‖₂` (TransE-L2 sweep).
pub fn neg_l2_sweep(entities: &ParamTable, points: &[f32], dim: usize, out: &mut [f32]) {
    let q = check_shapes(entities, points, dim, out);
    let n = entities.rows();
    let mut tile_start = 0;
    while tile_start < q {
        let tile_end = (tile_start + QUERY_TILE).min(q);
        let mut block_start = 0;
        while block_start < n {
            let block_end = (block_start + ENTITY_BLOCK).min(n);
            for qi in tile_start..tile_end {
                let point = &points[qi * dim..(qi + 1) * dim];
                let out_row = &mut out[qi * n + block_start..qi * n + block_end];
                for (slot, e) in (block_start..block_end).enumerate() {
                    out_row[slot] = -l2_distance(entities.row(e), point);
                }
            }
            block_start = block_end;
        }
        tile_start = tile_end;
    }
}

/// `out[q·N + e] = −Σᵢ |pointsᵢ[q] − entityᵢ_e|` over complex components
/// stored `[re.. | im..]` (RotatE's sweep). The per-component expression
/// matches `RotatE::neg_complex_l1(point, row)` exactly.
pub fn neg_complex_l1_sweep(entities: &ParamTable, points: &[f32], dim: usize, out: &mut [f32]) {
    let q = check_shapes(entities, points, dim, out);
    let n = entities.rows();
    let m = dim / 2;
    let mut tile_start = 0;
    while tile_start < q {
        let tile_end = (tile_start + QUERY_TILE).min(q);
        let mut block_start = 0;
        while block_start < n {
            let block_end = (block_start + ENTITY_BLOCK).min(n);
            for qi in tile_start..tile_end {
                let point = &points[qi * dim..(qi + 1) * dim];
                let out_row = &mut out[qi * n + block_start..qi * n + block_end];
                for (slot, e) in (block_start..block_end).enumerate() {
                    let row = entities.row(e);
                    let mut acc = 0.0;
                    for i in 0..m {
                        let u = point[i] - row[i];
                        let v = point[m + i] - row[m + i];
                        acc += (u * u + v * v).sqrt();
                    }
                    out_row[slot] = -acc;
                }
            }
            block_start = block_end;
        }
        tile_start = tile_end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(rows: usize, cols: usize, seed: u64) -> ParamTable {
        let mut t = ParamTable::zeros(rows, cols);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        crate::init::xavier_uniform(&mut t, &mut rng);
        t
    }

    #[test]
    fn dot_sweep_matches_per_query_dots_bitwise() {
        let entities = table(13, 6, 1);
        let qvecs = table(11, 6, 2);
        let mut out = vec![0.0; 11 * 13];
        dot_sweep(&entities, qvecs.data(), 6, None, &mut out);
        for qi in 0..11 {
            for e in 0..13 {
                let expect = dot(qvecs.row(qi), entities.row(e));
                assert_eq!(out[qi * 13 + e].to_bits(), expect.to_bits());
            }
        }
    }

    #[test]
    fn scaled_dot_sweep_applies_scale_after_the_dot() {
        let entities = table(5, 4, 3);
        let qvecs = table(3, 4, 4);
        let mut out = vec![0.0; 3 * 5];
        dot_sweep(&entities, qvecs.data(), 4, Some(0.5), &mut out);
        for qi in 0..3 {
            for e in 0..5 {
                let expect = 0.5 * dot(qvecs.row(qi), entities.row(e));
                assert_eq!(out[qi * 5 + e].to_bits(), expect.to_bits());
            }
        }
    }

    #[test]
    fn distance_sweeps_match_per_query_distances_bitwise() {
        // More queries than one tile, so the tile loop is exercised.
        let entities = table(7, 4, 5);
        let points = table(QUERY_TILE + 3, 4, 6);
        let q = QUERY_TILE + 3;
        let mut l1 = vec![0.0; q * 7];
        let mut l2 = vec![0.0; q * 7];
        neg_l1_sweep(&entities, points.data(), 4, &mut l1);
        neg_l2_sweep(&entities, points.data(), 4, &mut l2);
        for qi in 0..q {
            for e in 0..7 {
                let e1 = -l1_distance(entities.row(e), points.row(qi));
                let e2 = -l2_distance(entities.row(e), points.row(qi));
                assert_eq!(l1[qi * 7 + e].to_bits(), e1.to_bits());
                assert_eq!(l2[qi * 7 + e].to_bits(), e2.to_bits());
            }
        }
    }

    #[test]
    fn entity_blocking_is_exercised_and_bitwise_stable() {
        // More entities than one block, plus a ragged tail, so the block
        // loop takes both the full-block and partial-block paths.
        let rows = ENTITY_BLOCK + ENTITY_BLOCK / 2 + 3;
        let entities = table(rows, 6, 9);
        let qvecs = table(QUERY_TILE + 1, 6, 10);
        let q = QUERY_TILE + 1;
        let mut out = vec![0.0; q * rows];
        dot_sweep(&entities, qvecs.data(), 6, None, &mut out);
        for qi in 0..q {
            for e in 0..rows {
                let expect = dot(qvecs.row(qi), entities.row(e));
                assert_eq!(out[qi * rows + e].to_bits(), expect.to_bits());
            }
        }
    }

    #[test]
    fn complex_sweep_matches_scalar_formula_bitwise() {
        let entities = table(6, 8, 7);
        let points = table(4, 8, 8);
        let mut out = vec![0.0; 4 * 6];
        neg_complex_l1_sweep(&entities, points.data(), 8, &mut out);
        for qi in 0..4 {
            for e in 0..6 {
                let (p, row) = (points.row(qi), entities.row(e));
                let mut acc = 0.0;
                for i in 0..4 {
                    let u = p[i] - row[i];
                    let v = p[4 + i] - row[4 + i];
                    acc += (u * u + v * v).sqrt();
                }
                assert_eq!(out[qi * 6 + e].to_bits(), (-acc).to_bits());
            }
        }
    }
}
