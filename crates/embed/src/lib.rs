//! # kgfd-embed — knowledge graph embedding substrate
//!
//! A from-scratch, CPU-only reimplementation of the KGE stack the paper
//! builds on (LibKGE + the models of §2.1): scoring models with hand-derived
//! gradients ([`models`]), negative-sampling training ([`train`]) with Adam /
//! Adagrad / SGD ([`OptimizerKind`]), margin and cross-entropy losses
//! ([`LossKind`]), and binary persistence ([`save_model`] / [`load_model`]).
//!
//! Every model implements [`KgeModel`], whose batched `score_objects` /
//! `score_subjects` kernels are the primitive the evaluation protocol and
//! the fact-discovery ranking step consume.
//!
//! ```
//! use kgfd_datasets::toy_biomedical;
//! use kgfd_embed::{train, ModelKind, TrainConfig};
//!
//! let data = toy_biomedical();
//! let config = TrainConfig { epochs: 5, ..TrainConfig::default() };
//! let (model, stats) = train(ModelKind::TransE, &data.train, &config);
//! assert_eq!(stats.epoch_losses.len(), 5);
//! assert!(model.score(data.train.triples()[0]).is_finite());
//! ```

#![warn(missing_docs)]

pub mod batch;
mod checkpoint;
mod loss;
pub mod math;
mod model;
pub mod models;
mod negative;
mod optim;
mod params;
mod persist;
mod trainer;

pub mod init;

pub use checkpoint::{
    checkpoint_paths, config_fingerprint, read_checkpoint_file, resume_latest, write_checkpoint,
    CheckpointPolicy, ResumeReport, TrainCheckpoint, CHECKPOINT_VERSION,
};
pub use loss::{LossKind, PairLoss};
pub use model::{KgeModel, ModelConfig, ModelKind};
pub use models::new_model;
pub use negative::{CorruptSide, NegativeSampler};
pub use optim::{Optimizer, OptimizerKind, OptimizerState};
pub use params::{Gradients, ParamTable, Parameters, ENTITY_TABLE, RELATION_TABLE};
pub use persist::{
    crc32, load_model, read_model_file, save_model, write_model_file, FORMAT_VERSION,
};
pub use trainer::{
    negative_stream, train, train_into, StopSignal, TrainConfig, TrainConfigError, TrainOutcome,
    TrainSession, TrainStats, SHARD_SIZE,
};
