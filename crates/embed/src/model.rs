//! The scoring-model abstraction: every KGE model of the paper behind one
//! object-safe trait.

use crate::{Gradients, Parameters};
use kgfd_kg::{EntityId, RelationId, Triple};
use serde::{Deserialize, Serialize};

/// The embedding models evaluated by the paper (§2.1 and §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Translation-based (Bordes et al. 2013): `f = −d(s + r, o)`.
    TransE,
    /// Diagonal bilinear (Yang et al. 2014): `f = sᵀ diag(r) o`.
    DistMult,
    /// Complex-valued bilinear (Trouillon et al. 2016): `f = Re(sᵀ diag(r) ō)`.
    ComplEx,
    /// Full bilinear (Nickel et al. 2011): `f = sᵀ R o`.
    Rescal,
    /// Holographic (Nickel et al. 2016): `f = rᵀ (s ⋆ o)` (circular correlation).
    HolE,
    /// Convolutional (Dettmers et al. 2018), the "ConvE-lite" variant of
    /// DESIGN.md: conv → ReLU → FC → ReLU → dot, trained with reciprocal
    /// relations as in LibKGE.
    ConvE,
    /// Rotation-based (Sun et al. 2019): `f = −‖s ∘ e^{iθ} − o‖`.
    /// Library extension, not part of the paper's grid.
    RotatE,
    /// Head/tail factor pairs (Kazemi & Poole 2018):
    /// `f = ½(⟨h_s, r, t_o⟩ + ⟨h_o, r⁻¹, t_s⟩)`. Library extension.
    SimplE,
    /// Tucker decomposition (Balažević et al. 2019): `f = W ×₁ r ×₂ s ×₃ o`
    /// with a shared core tensor. Library extension.
    TuckEr,
}

impl ModelKind {
    /// All model kinds: the paper's grid, then HolE (paper §2.1), then the
    /// library extensions.
    pub const ALL: [ModelKind; 9] = [
        ModelKind::ComplEx,
        ModelKind::ConvE,
        ModelKind::DistMult,
        ModelKind::Rescal,
        ModelKind::TransE,
        ModelKind::HolE,
        ModelKind::RotatE,
        ModelKind::SimplE,
        ModelKind::TuckEr,
    ];

    /// The five kinds used in the paper's experimental grid (§4: ComplEx,
    /// ConvE, DistMult, RESCAL, TransE; HolE is described in §2 but not run).
    pub const PAPER_GRID: [ModelKind; 5] = [
        ModelKind::ComplEx,
        ModelKind::ConvE,
        ModelKind::DistMult,
        ModelKind::Rescal,
        ModelKind::TransE,
    ];

    /// Short lowercase name (stable, used in reports and persistence).
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::TransE => "transe",
            ModelKind::DistMult => "distmult",
            ModelKind::ComplEx => "complex",
            ModelKind::Rescal => "rescal",
            ModelKind::HolE => "hole",
            ModelKind::ConvE => "conve",
            ModelKind::RotatE => "rotate",
            ModelKind::SimplE => "simple",
            ModelKind::TuckEr => "tucker",
        }
    }

    /// Parses a name produced by [`ModelKind::name`].
    pub fn from_name(name: &str) -> Option<ModelKind> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }

    /// Stable numeric tag for binary persistence.
    pub(crate) fn tag(self) -> u8 {
        match self {
            ModelKind::TransE => 0,
            ModelKind::DistMult => 1,
            ModelKind::ComplEx => 2,
            ModelKind::Rescal => 3,
            ModelKind::HolE => 4,
            ModelKind::ConvE => 5,
            ModelKind::RotatE => 6,
            ModelKind::SimplE => 7,
            ModelKind::TuckEr => 8,
        }
    }

    /// Inverse of [`ModelKind::tag`].
    pub(crate) fn from_tag(tag: u8) -> Option<ModelKind> {
        Self::ALL.into_iter().find(|k| k.tag() == tag)
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The complete constructor configuration of a model: everything needed to
/// rebuild an architecturally identical (untrained) instance of the same
/// scoring function. This is the config block the v2 persistence format
/// embeds verbatim, so a reloaded model can never differ in configuration
/// from the one that was saved.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Scoring function.
    pub kind: ModelKind,
    /// Entity count `N`.
    pub num_entities: usize,
    /// Logical relation count `K` (excluding reciprocal shadow relations).
    pub num_relations: usize,
    /// Entity-embedding width `l`.
    pub dim: usize,
    /// TransE's distance measure; `None` for every other kind.
    pub distance: Option<crate::models::Distance>,
}

impl ModelConfig {
    /// Constructs a freshly initialized model matching this configuration.
    pub fn build(&self, seed: u64) -> Box<dyn KgeModel> {
        match (self.kind, self.distance) {
            (ModelKind::TransE, Some(d)) => Box::new(crate::models::TransE::new(
                self.num_entities,
                self.num_relations,
                self.dim,
                d,
                seed,
            )),
            // `new_model` defaults TransE to L1; every other kind carries no
            // extra configuration.
            _ => crate::new_model(
                self.kind,
                self.num_entities,
                self.num_relations,
                self.dim,
                seed,
            ),
        }
    }
}

/// A trained (or trainable) knowledge-graph embedding model.
///
/// Scores are "higher = more plausible". The two batched kernels
/// ([`score_objects`](KgeModel::score_objects) /
/// [`score_subjects`](KgeModel::score_subjects)) fill a caller-provided
/// buffer with the score of every entity substituted into one side — the
/// primitive both the evaluation protocol and the discovery algorithm's
/// ranking step are built on.
pub trait KgeModel: Send + Sync {
    /// Which scoring function this is.
    fn kind(&self) -> ModelKind;

    /// Entity count `N`.
    fn num_entities(&self) -> usize;

    /// Logical relation count `K` (excluding reciprocal shadow relations).
    fn num_relations(&self) -> usize;

    /// Embedding width `l` of entity vectors.
    fn dim(&self) -> usize;

    /// The full constructor configuration. Persisted verbatim by the v2
    /// model format; [`ModelConfig::build`] reconstructs the architecture.
    /// Required (not defaulted) so a model with extra configuration — like
    /// TransE's distance — cannot silently persist an incomplete config.
    fn config(&self) -> ModelConfig;

    /// The underlying parameter tables.
    fn params(&self) -> &Parameters;

    /// Mutable parameter tables (used by the optimizer).
    fn params_mut(&mut self) -> &mut Parameters;

    /// Plausibility score of one triple.
    fn score(&self, t: Triple) -> f32;

    /// Fills `out[e] = score(s, r, e)` for every entity `e`.
    /// `out.len()` must be `num_entities()`.
    fn score_objects(&self, s: EntityId, r: RelationId, out: &mut [f32]);

    /// Fills `out[e] = score(e, r, o)` for every entity `e`.
    fn score_subjects(&self, r: RelationId, o: EntityId, out: &mut [f32]);

    /// Scores a batch of object-side queries in one call:
    /// `out[q * num_entities() + e] = score(queries[q].0, queries[q].1, e)`.
    /// `out.len()` must be `queries.len() * num_entities()`.
    ///
    /// The default loops [`score_objects`](KgeModel::score_objects); the
    /// dot-product-family models override it with kernels that sweep the
    /// entity table once per tile of queries (see [`crate::batch`]) while
    /// keeping every per-`(query, entity)` reduction in the single-query
    /// summation order, so batched scores are **bit-identical** to looped
    /// ones — ranks computed from either path are equal.
    fn score_objects_batch(&self, queries: &[(EntityId, RelationId)], out: &mut [f32]) {
        let n = self.num_entities();
        debug_assert_eq!(out.len(), queries.len() * n);
        for (&(s, r), row) in queries.iter().zip(out.chunks_mut(n)) {
            self.score_objects(s, r, row);
        }
    }

    /// Scores a batch of subject-side queries in one call:
    /// `out[q * num_entities() + e] = score(e, queries[q].0, queries[q].1)`.
    /// `out.len()` must be `queries.len() * num_entities()`. Same
    /// bit-identical contract as
    /// [`score_objects_batch`](KgeModel::score_objects_batch).
    fn score_subjects_batch(&self, queries: &[(RelationId, EntityId)], out: &mut [f32]) {
        let n = self.num_entities();
        debug_assert_eq!(out.len(), queries.len() * n);
        for (&(r, o), row) in queries.iter().zip(out.chunks_mut(n)) {
            self.score_subjects(r, o, row);
        }
    }

    /// Accumulates `upstream · ∂score(t)/∂θ` into `grads`.
    fn backward(&self, t: Triple, upstream: f32, grads: &mut Gradients);

    /// `true` if the model is trained with reciprocal relations (the trainer
    /// then augments each triple `(s, r, o)` with `(o, r + K, s)` and
    /// corrupts only objects, as LibKGE does for ConvE).
    fn reciprocal(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for k in ModelKind::ALL {
            assert_eq!(ModelKind::from_name(k.name()), Some(k));
            assert_eq!(ModelKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(ModelKind::from_name("nope"), None);
        assert_eq!(ModelKind::from_tag(200), None);
    }

    #[test]
    fn paper_grid_is_five_models() {
        assert_eq!(ModelKind::PAPER_GRID.len(), 5);
        assert!(!ModelKind::PAPER_GRID.contains(&ModelKind::HolE));
    }
}
