//! Optimizers with sparse (touched-rows-only) state updates.
//!
//! The paper trains every model with Adam (§2.1 "Training"); SGD and Adagrad
//! are provided for completeness and ablation. State tensors mirror the
//! parameter tables; only the rows present in a batch's [`Gradients`] are
//! updated, which is the standard "sparse Adam" arrangement for embeddings.

use crate::{Gradients, ParamTable, Parameters};
use kgfd_kg::KgError;
use serde::{Deserialize, Serialize};

/// A complete snapshot of an optimizer's mutable state — everything beyond
/// the [`OptimizerKind`] configuration that influences future updates. The
/// checkpoint format persists this verbatim so a resumed run applies
/// *exactly* the update a straight-through run would have applied (Adam's
/// bias-correction step counter `t` and both moment tables included).
#[derive(Debug, Clone, PartialEq)]
pub enum OptimizerState {
    /// SGD carries no state.
    Sgd,
    /// Adagrad's per-parameter squared-gradient accumulators.
    Adagrad {
        /// Accumulator tables, shaped like the model parameters.
        accum: Vec<ParamTable>,
    },
    /// Adam's step counter and moment estimates.
    Adam {
        /// Number of optimizer steps taken (drives bias correction).
        t: u64,
        /// First-moment tables, shaped like the model parameters.
        m: Vec<ParamTable>,
        /// Second-moment tables, shaped like the model parameters.
        v: Vec<ParamTable>,
    },
}

impl OptimizerState {
    /// `true` if this state snapshot matches the optimizer configuration
    /// (an Adam checkpoint cannot restore into an SGD run, etc.).
    pub fn matches(&self, kind: OptimizerKind) -> bool {
        matches!(
            (self, kind),
            (OptimizerState::Sgd, OptimizerKind::Sgd { .. })
                | (
                    OptimizerState::Adagrad { .. },
                    OptimizerKind::Adagrad { .. }
                )
                | (OptimizerState::Adam { .. }, OptimizerKind::Adam { .. })
        )
    }
}

fn shapes_mirror(tables: &[ParamTable], params: &Parameters) -> bool {
    tables.len() == params.num_tables()
        && tables
            .iter()
            .zip(params.tables())
            .all(|(s, p)| s.rows() == p.rows() && s.cols() == p.cols())
}

/// Optimizer configuration; build a stateful optimizer with
/// [`OptimizerKind::build`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Plain stochastic gradient descent.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// Adagrad (Duchi et al. 2011).
    Adagrad {
        /// Learning rate.
        lr: f32,
    },
    /// Adam (Kingma & Ba 2014) — the paper's optimizer.
    Adam {
        /// Learning rate.
        lr: f32,
    },
}

impl OptimizerKind {
    /// Instantiates optimizer state shaped like `params`.
    pub fn build(self, params: &Parameters) -> Box<dyn Optimizer> {
        match self {
            OptimizerKind::Sgd { lr } => Box::new(Sgd { lr }),
            OptimizerKind::Adagrad { lr } => Box::new(Adagrad {
                lr,
                eps: 1e-10,
                accum: mirror(params),
            }),
            OptimizerKind::Adam { lr } => Box::new(Adam {
                lr,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
                t: 0,
                m: mirror(params),
                v: mirror(params),
            }),
        }
    }

    /// Instantiates an optimizer whose mutable state is restored from a
    /// checkpointed snapshot instead of zero-initialized. The snapshot must
    /// belong to the same optimizer kind and mirror `params`' table shapes;
    /// both are validated here because a checkpoint that passed its checksum
    /// can still be paired with the wrong model by a confused caller.
    pub fn build_with_state(
        self,
        params: &Parameters,
        state: OptimizerState,
    ) -> Result<Box<dyn Optimizer>, KgError> {
        if !state.matches(self) {
            return Err(KgError::Corrupt(format!(
                "optimizer state snapshot does not match the configured optimizer {self:?}"
            )));
        }
        let check = |tables: &[ParamTable], what: &str| -> Result<(), KgError> {
            if shapes_mirror(tables, params) {
                Ok(())
            } else {
                Err(KgError::Corrupt(format!(
                    "optimizer {what} tables do not mirror the model parameter shapes"
                )))
            }
        };
        match (self, state) {
            (OptimizerKind::Sgd { lr }, OptimizerState::Sgd) => Ok(Box::new(Sgd { lr })),
            (OptimizerKind::Adagrad { lr }, OptimizerState::Adagrad { accum }) => {
                check(&accum, "accumulator")?;
                Ok(Box::new(Adagrad {
                    lr,
                    eps: 1e-10,
                    accum,
                }))
            }
            (OptimizerKind::Adam { lr }, OptimizerState::Adam { t, m, v }) => {
                check(&m, "first-moment")?;
                check(&v, "second-moment")?;
                Ok(Box::new(Adam {
                    lr,
                    beta1: 0.9,
                    beta2: 0.999,
                    eps: 1e-8,
                    t,
                    m,
                    v,
                }))
            }
            _ => unreachable!("matches() filtered mismatched pairs"),
        }
    }

    /// The configured learning rate.
    pub fn learning_rate(self) -> f32 {
        match self {
            OptimizerKind::Sgd { lr }
            | OptimizerKind::Adagrad { lr }
            | OptimizerKind::Adam { lr } => lr,
        }
    }
}

fn mirror(params: &Parameters) -> Vec<ParamTable> {
    params
        .tables()
        .iter()
        .map(|t| ParamTable::zeros(t.rows(), t.cols()))
        .collect()
}

/// A stateful first-order optimizer; gradients are of the *loss* (descent
/// direction is `−grad`).
pub trait Optimizer: Send {
    /// Applies one update for the accumulated batch gradients.
    fn step(&mut self, params: &mut Parameters, grads: &Gradients);

    /// Snapshots the optimizer's mutable state for checkpointing; feed it
    /// back through [`OptimizerKind::build_with_state`] to resume with the
    /// exact same future updates.
    fn export_state(&self) -> OptimizerState;
}

struct Sgd {
    lr: f32,
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut Parameters, grads: &Gradients) {
        for (table, row, g) in grads.iter() {
            let row = params.table_mut(table).row_mut(row);
            crate::math::add_scaled(row, g, -self.lr);
        }
    }

    fn export_state(&self) -> OptimizerState {
        OptimizerState::Sgd
    }
}

struct Adagrad {
    lr: f32,
    eps: f32,
    accum: Vec<ParamTable>,
}

impl Optimizer for Adagrad {
    fn step(&mut self, params: &mut Parameters, grads: &Gradients) {
        for (table, row, g) in grads.iter() {
            let acc = self.accum[table].row_mut(row);
            let p = params.table_mut(table).row_mut(row);
            for ((pi, ai), &gi) in p.iter_mut().zip(acc.iter_mut()).zip(g) {
                *ai += gi * gi;
                *pi -= self.lr * gi / (ai.sqrt() + self.eps);
            }
        }
    }

    fn export_state(&self) -> OptimizerState {
        OptimizerState::Adagrad {
            accum: self.accum.clone(),
        }
    }
}

struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<ParamTable>,
    v: Vec<ParamTable>,
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut Parameters, grads: &Gradients) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (table, row, g) in grads.iter() {
            let m = self.m[table].row_mut(row);
            let v = self.v[table].row_mut(row);
            let p = params.table_mut(table).row_mut(row);
            for (((pi, mi), vi), &gi) in p.iter_mut().zip(m.iter_mut()).zip(v.iter_mut()).zip(g) {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *pi -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn export_state(&self) -> OptimizerState {
        OptimizerState::Adam {
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_params() -> Parameters {
        // One table, one row: minimize f(x) = Σ xᵢ² from x = (4, −2).
        Parameters::new(vec![ParamTable::from_data(1, 2, vec![4.0, -2.0])])
    }

    fn run(kind: OptimizerKind, steps: usize) -> Vec<f32> {
        let mut params = quadratic_params();
        let mut opt = kind.build(&params);
        for _ in 0..steps {
            let mut g = Gradients::new();
            let x = params.table(0).row(0).to_vec();
            // ∇f = 2x
            g.add(0, 0, &[2.0 * x[0], 2.0 * x[1]], 1.0);
            opt.step(&mut params, &g);
        }
        params.table(0).row(0).to_vec()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = run(OptimizerKind::Sgd { lr: 0.1 }, 100);
        assert!(x.iter().all(|v| v.abs() < 1e-3), "{x:?}");
    }

    #[test]
    fn adagrad_converges_on_quadratic() {
        let x = run(OptimizerKind::Adagrad { lr: 0.5 }, 500);
        assert!(x.iter().all(|v| v.abs() < 1e-2), "{x:?}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = run(OptimizerKind::Adam { lr: 0.1 }, 500);
        assert!(x.iter().all(|v| v.abs() < 1e-2), "{x:?}");
    }

    #[test]
    fn untouched_rows_are_untouched() {
        let mut params =
            Parameters::new(vec![ParamTable::from_data(2, 2, vec![1.0, 1.0, 5.0, 5.0])]);
        let mut opt = OptimizerKind::Adam { lr: 0.1 }.build(&params);
        let mut g = Gradients::new();
        g.add(0, 0, &[1.0, 1.0], 1.0);
        opt.step(&mut params, &g);
        assert_eq!(params.table(0).row(1), &[5.0, 5.0]);
        assert_ne!(params.table(0).row(0), &[1.0, 1.0]);
    }

    #[test]
    fn learning_rate_accessor() {
        assert_eq!(OptimizerKind::Adam { lr: 0.02 }.learning_rate(), 0.02);
    }

    /// State export + restore must reproduce the exact future update
    /// sequence: run K steps, snapshot, run K more; versus restore-from-
    /// snapshot and run the same K more. Bitwise equal for every kind.
    #[test]
    fn state_roundtrip_resumes_bit_identically() {
        for kind in [
            OptimizerKind::Sgd { lr: 0.1 },
            OptimizerKind::Adagrad { lr: 0.5 },
            OptimizerKind::Adam { lr: 0.1 },
        ] {
            let mut params = quadratic_params();
            let mut opt = kind.build(&params);
            let grad_of = |params: &Parameters| {
                let mut g = Gradients::new();
                let x = params.table(0).row(0).to_vec();
                g.add(0, 0, &[2.0 * x[0], 2.0 * x[1]], 1.0);
                g
            };
            for _ in 0..7 {
                let g = grad_of(&params);
                opt.step(&mut params, &g);
            }
            let snapshot = opt.export_state();
            let params_snapshot = params.clone();

            for _ in 0..7 {
                let g = grad_of(&params);
                opt.step(&mut params, &g);
            }

            let mut resumed_params = params_snapshot;
            let mut resumed = kind.build_with_state(&resumed_params, snapshot).unwrap();
            for _ in 0..7 {
                let g = grad_of(&resumed_params);
                resumed.step(&mut resumed_params, &g);
            }
            assert_eq!(
                params.table(0).data(),
                resumed_params.table(0).data(),
                "{kind:?} must resume bit-identically"
            );
        }
    }

    #[test]
    fn mismatched_state_kind_is_rejected() {
        let params = quadratic_params();
        let err = OptimizerKind::Adam { lr: 0.1 }
            .build_with_state(&params, OptimizerState::Sgd)
            .err()
            .expect("kind mismatch accepted");
        assert!(matches!(err, KgError::Corrupt(_)), "{err}");
    }

    #[test]
    fn mismatched_state_shape_is_rejected() {
        let params = quadratic_params();
        let wrong = OptimizerState::Adagrad {
            accum: vec![ParamTable::zeros(3, 9)],
        };
        let err = OptimizerKind::Adagrad { lr: 0.1 }
            .build_with_state(&params, wrong)
            .err()
            .expect("shape mismatch accepted");
        assert!(err.to_string().contains("mirror"), "{err}");
    }
}
