//! Optimizers with sparse (touched-rows-only) state updates.
//!
//! The paper trains every model with Adam (§2.1 "Training"); SGD and Adagrad
//! are provided for completeness and ablation. State tensors mirror the
//! parameter tables; only the rows present in a batch's [`Gradients`] are
//! updated, which is the standard "sparse Adam" arrangement for embeddings.

use crate::{Gradients, ParamTable, Parameters};
use serde::{Deserialize, Serialize};

/// Optimizer configuration; build a stateful optimizer with
/// [`OptimizerKind::build`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Plain stochastic gradient descent.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// Adagrad (Duchi et al. 2011).
    Adagrad {
        /// Learning rate.
        lr: f32,
    },
    /// Adam (Kingma & Ba 2014) — the paper's optimizer.
    Adam {
        /// Learning rate.
        lr: f32,
    },
}

impl OptimizerKind {
    /// Instantiates optimizer state shaped like `params`.
    pub fn build(self, params: &Parameters) -> Box<dyn Optimizer> {
        match self {
            OptimizerKind::Sgd { lr } => Box::new(Sgd { lr }),
            OptimizerKind::Adagrad { lr } => Box::new(Adagrad {
                lr,
                eps: 1e-10,
                accum: mirror(params),
            }),
            OptimizerKind::Adam { lr } => Box::new(Adam {
                lr,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
                t: 0,
                m: mirror(params),
                v: mirror(params),
            }),
        }
    }

    /// The configured learning rate.
    pub fn learning_rate(self) -> f32 {
        match self {
            OptimizerKind::Sgd { lr }
            | OptimizerKind::Adagrad { lr }
            | OptimizerKind::Adam { lr } => lr,
        }
    }
}

fn mirror(params: &Parameters) -> Vec<ParamTable> {
    params
        .tables()
        .iter()
        .map(|t| ParamTable::zeros(t.rows(), t.cols()))
        .collect()
}

/// A stateful first-order optimizer; gradients are of the *loss* (descent
/// direction is `−grad`).
pub trait Optimizer: Send {
    /// Applies one update for the accumulated batch gradients.
    fn step(&mut self, params: &mut Parameters, grads: &Gradients);
}

struct Sgd {
    lr: f32,
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut Parameters, grads: &Gradients) {
        for (table, row, g) in grads.iter() {
            let row = params.table_mut(table).row_mut(row);
            crate::math::add_scaled(row, g, -self.lr);
        }
    }
}

struct Adagrad {
    lr: f32,
    eps: f32,
    accum: Vec<ParamTable>,
}

impl Optimizer for Adagrad {
    fn step(&mut self, params: &mut Parameters, grads: &Gradients) {
        for (table, row, g) in grads.iter() {
            let acc = self.accum[table].row_mut(row);
            let p = params.table_mut(table).row_mut(row);
            for ((pi, ai), &gi) in p.iter_mut().zip(acc.iter_mut()).zip(g) {
                *ai += gi * gi;
                *pi -= self.lr * gi / (ai.sqrt() + self.eps);
            }
        }
    }
}

struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<ParamTable>,
    v: Vec<ParamTable>,
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut Parameters, grads: &Gradients) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (table, row, g) in grads.iter() {
            let m = self.m[table].row_mut(row);
            let v = self.v[table].row_mut(row);
            let p = params.table_mut(table).row_mut(row);
            for (((pi, mi), vi), &gi) in p.iter_mut().zip(m.iter_mut()).zip(v.iter_mut()).zip(g) {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *pi -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_params() -> Parameters {
        // One table, one row: minimize f(x) = Σ xᵢ² from x = (4, −2).
        Parameters::new(vec![ParamTable::from_data(1, 2, vec![4.0, -2.0])])
    }

    fn run(kind: OptimizerKind, steps: usize) -> Vec<f32> {
        let mut params = quadratic_params();
        let mut opt = kind.build(&params);
        for _ in 0..steps {
            let mut g = Gradients::new();
            let x = params.table(0).row(0).to_vec();
            // ∇f = 2x
            g.add(0, 0, &[2.0 * x[0], 2.0 * x[1]], 1.0);
            opt.step(&mut params, &g);
        }
        params.table(0).row(0).to_vec()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = run(OptimizerKind::Sgd { lr: 0.1 }, 100);
        assert!(x.iter().all(|v| v.abs() < 1e-3), "{x:?}");
    }

    #[test]
    fn adagrad_converges_on_quadratic() {
        let x = run(OptimizerKind::Adagrad { lr: 0.5 }, 500);
        assert!(x.iter().all(|v| v.abs() < 1e-2), "{x:?}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = run(OptimizerKind::Adam { lr: 0.1 }, 500);
        assert!(x.iter().all(|v| v.abs() < 1e-2), "{x:?}");
    }

    #[test]
    fn untouched_rows_are_untouched() {
        let mut params =
            Parameters::new(vec![ParamTable::from_data(2, 2, vec![1.0, 1.0, 5.0, 5.0])]);
        let mut opt = OptimizerKind::Adam { lr: 0.1 }.build(&params);
        let mut g = Gradients::new();
        g.add(0, 0, &[1.0, 1.0], 1.0);
        opt.step(&mut params, &g);
        assert_eq!(params.table(0).row(1), &[5.0, 5.0]);
        assert_ne!(params.table(0).row(0), &[1.0, 1.0]);
    }

    #[test]
    fn learning_rate_accessor() {
        assert_eq!(OptimizerKind::Adam { lr: 0.02 }.learning_rate(), 0.02);
    }
}
