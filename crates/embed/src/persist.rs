//! Binary model persistence (save once, rerun discovery many times).
//!
//! Format (little-endian, via the `bytes` crate):
//!
//! ```text
//! magic "KGFD" | version u8 | kind u8 | flags u8 | N u64 | K u64 | dim u64
//! | num_tables u8 | { rows u64, cols u64 }* | f32 data per table
//! ```
//!
//! `flags` currently encodes TransE's distance (0 = L1, 1 = L2).

use crate::models::{Distance, TransE};
use crate::{new_model, KgeModel, ModelKind};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use kgfd_kg::{KgError, Result};

const MAGIC: &[u8; 4] = b"KGFD";
const VERSION: u8 = 1;

/// Serializes a model to bytes.
pub fn save_model(model: &dyn KgeModel) -> Bytes {
    let params = model.params();
    let mut buf = BytesMut::with_capacity(32 + params.num_parameters() * 4);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(model.kind().tag());
    buf.put_u8(model_flags(model));
    buf.put_u64_le(model.num_entities() as u64);
    buf.put_u64_le(model.num_relations() as u64);
    buf.put_u64_le(model.dim() as u64);
    buf.put_u8(params.num_tables() as u8);
    for table in params.tables() {
        buf.put_u64_le(table.rows() as u64);
        buf.put_u64_le(table.cols() as u64);
    }
    for table in params.tables() {
        for &v in table.data() {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

fn model_flags(model: &dyn KgeModel) -> u8 {
    // Only TransE carries extra configuration; encode its distance.
    if model.kind() == ModelKind::TransE {
        // The trait has no downcast; re-derive from score behaviour is
        // overkill — persist callers go through `save_model(&TransE)` where
        // the concrete type is erased, so we thread the distance via a
        // dedicated save path below. Default path assumes L1.
        0
    } else {
        0
    }
}

/// Serializes a TransE model preserving its distance configuration.
pub fn save_transe(model: &TransE) -> Bytes {
    let mut bytes = BytesMut::from(&save_model(model)[..]);
    bytes[6] = match model.distance() {
        Distance::L1 => 0,
        Distance::L2 => 1,
    };
    bytes.freeze()
}

/// Deserializes a model saved by [`save_model`] / [`save_transe`].
pub fn load_model(mut data: &[u8]) -> Result<Box<dyn KgeModel>> {
    let err = |msg: &str| KgError::Invariant(format!("model deserialization: {msg}"));
    if data.len() < 4 + 3 + 24 + 1 || &data[..4] != MAGIC {
        return Err(err("bad magic or truncated header"));
    }
    data.advance(4);
    let version = data.get_u8();
    if version != VERSION {
        return Err(err(&format!("unsupported version {version}")));
    }
    let kind = ModelKind::from_tag(data.get_u8()).ok_or_else(|| err("unknown model kind"))?;
    let flags = data.get_u8();
    let n = data.get_u64_le() as usize;
    let k = data.get_u64_le() as usize;
    let dim = data.get_u64_le() as usize;
    let num_tables = data.get_u8() as usize;

    let mut shapes = Vec::with_capacity(num_tables);
    for _ in 0..num_tables {
        if data.remaining() < 16 {
            return Err(err("truncated table header"));
        }
        shapes.push((data.get_u64_le() as usize, data.get_u64_le() as usize));
    }

    let mut model: Box<dyn KgeModel> = if kind == ModelKind::TransE && flags == 1 {
        Box::new(TransE::new(n, k, dim, Distance::L2, 0))
    } else {
        new_model(kind, n, k, dim, 0)
    };

    let params = model.params_mut();
    if params.num_tables() != num_tables {
        return Err(err("table count mismatch"));
    }
    for (i, &(rows, cols)) in shapes.iter().enumerate() {
        let table = params.table_mut(i);
        if table.rows() != rows || table.cols() != cols {
            return Err(err(&format!(
                "table {i} shape mismatch: file {rows}×{cols}, model {}×{}",
                table.rows(),
                table.cols()
            )));
        }
        if data.remaining() < rows * cols * 4 {
            return Err(err("truncated table data"));
        }
        for v in table.data_mut() {
            *v = data.get_f32_le();
        }
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgfd_kg::Triple;

    #[test]
    fn roundtrip_preserves_scores_for_all_kinds() {
        for kind in ModelKind::ALL {
            let model = new_model(kind, 6, 2, 12, 42);
            let bytes = save_model(model.as_ref());
            let loaded = load_model(&bytes).unwrap();
            assert_eq!(loaded.kind(), kind);
            for t in [Triple::new(0u32, 0u32, 1u32), Triple::new(3u32, 1u32, 5u32)] {
                let a = model.score(t);
                let b = loaded.score(t);
                assert!((a - b).abs() < 1e-7, "{kind}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn transe_distance_survives_roundtrip() {
        let model = TransE::new(4, 2, 8, Distance::L2, 1);
        let bytes = save_transe(&model);
        let loaded = load_model(&bytes).unwrap();
        let t = Triple::new(0u32, 1u32, 3u32);
        assert!((loaded.score(t) - model.score(t)).abs() < 1e-7);
    }

    #[test]
    fn garbage_input_is_rejected() {
        assert!(load_model(b"nope").is_err());
        assert!(load_model(&[]).is_err());
        let model = new_model(ModelKind::DistMult, 3, 1, 8, 0);
        let bytes = save_model(model.as_ref());
        assert!(load_model(&bytes[..bytes.len() / 2]).is_err(), "truncation");
        let mut corrupt = bytes.to_vec();
        corrupt[5] = 99; // unknown kind tag
        assert!(load_model(&corrupt).is_err());
    }
}
