//! Binary model persistence (save once, rerun discovery many times).
//!
//! ## Format v2 (current)
//!
//! ```text
//! magic "KGFD" | version u8 = 2
//! | kind u8 | flags u8 | N u64 | K u64 | dim u64          ← config block
//! | num_tables u8 | { rows u64, cols u64 }*               ← table directory
//! | f32 data per table                                    ← payload
//! | crc32 u32                                             ← integrity footer
//! ```
//!
//! All integers little-endian (via the `bytes` crate). The config block is
//! produced by [`KgeModel::config`] — `flags` bit 0 encodes TransE's
//! distance (0 = L1, 1 = L2); all other bits must be zero. The trailing
//! CRC-32 (IEEE, the zlib polynomial) covers every preceding byte, and the
//! reader rejects any file whose length differs from what its own header
//! implies — so truncation, bit flips, and appended garbage all surface as
//! [`KgError::Corrupt`] instead of a silently-wrong model.
//!
//! ## Format v1 (read-only compatibility)
//!
//! Same layout without the CRC footer. v1 had a defect: the generic
//! `save_model` hard-coded TransE's distance flag to L1, so a v1 TransE
//! file's flag is untrustworthy — loading one returns
//! [`KgError::Migration`] (retrain or re-save under v2). Non-TransE v1
//! files carry no extra configuration and load normally.

use crate::model::ModelConfig;
use crate::models::Distance;
use crate::{KgeModel, ModelKind};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use kgfd_kg::{KgError, Result};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const MAGIC: &[u8; 4] = b"KGFD";
/// Current (written) model format version.
pub const FORMAT_VERSION: u8 = 2;
/// Fixed-size portion of the v2 header: magic + version + config block +
/// table count, i.e. everything before the table directory.
const FIXED_HEADER_LEN: usize = 4 + 1 + 1 + 1 + 8 + 8 + 8 + 1;
/// Bytes per table-directory entry (rows + cols).
const TABLE_ENTRY_LEN: usize = 16;
/// Length of the CRC-32 footer.
const FOOTER_LEN: usize = 4;

const FLAG_TRANSE_L2: u8 = 0b0000_0001;
const KNOWN_FLAGS: u8 = FLAG_TRANSE_L2;

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the zlib/PNG
/// checksum. Exposed so fault-injection tests and external tooling can
/// validate or forge footers.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    };
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

fn flags_of(config: &ModelConfig) -> u8 {
    match config.distance {
        Some(Distance::L2) => FLAG_TRANSE_L2,
        _ => 0,
    }
}

/// Serializes a model to v2 bytes (config block, table directory, payload,
/// CRC-32 footer). The configuration comes from [`KgeModel::config`], so
/// every kind — including TransE with either distance — round-trips through
/// the one generic path.
pub fn save_model(model: &dyn KgeModel) -> Bytes {
    let config = model.config();
    let params = model.params();
    let mut buf = BytesMut::with_capacity(
        FIXED_HEADER_LEN + params.num_tables() * TABLE_ENTRY_LEN + params.num_parameters() * 4 + 4,
    );
    buf.put_slice(MAGIC);
    buf.put_u8(FORMAT_VERSION);
    buf.put_u8(config.kind.tag());
    buf.put_u8(flags_of(&config));
    buf.put_u64_le(config.num_entities as u64);
    buf.put_u64_le(config.num_relations as u64);
    buf.put_u64_le(config.dim as u64);
    buf.put_u8(params.num_tables() as u8);
    for table in params.tables() {
        buf.put_u64_le(table.rows() as u64);
        buf.put_u64_le(table.cols() as u64);
    }
    for table in params.tables() {
        for &v in table.data() {
            buf.put_f32_le(v);
        }
    }
    let checksum = crc32(&buf);
    buf.put_u32_le(checksum);
    buf.freeze()
}

fn corrupt(msg: impl Into<String>) -> KgError {
    KgError::Corrupt(format!("model file: {}", msg.into()))
}

/// Deserializes a model saved by [`save_model`] (v2, checksummed) or by the
/// legacy v1 writer (non-TransE only; v1 TransE files are rejected with
/// [`KgError::Migration`] because their distance flag is untrustworthy).
pub fn load_model(data: &[u8]) -> Result<Box<dyn KgeModel>> {
    if data.len() < 5 {
        return Err(corrupt(format!(
            "{} bytes is too short to hold even magic and version",
            data.len()
        )));
    }
    if &data[..4] != MAGIC {
        return Err(corrupt("bad magic (not a KGFD model file)"));
    }
    match data[4] {
        1 => load_v1(data),
        2 => load_v2(data),
        found => Err(KgError::UnsupportedVersion {
            found,
            max_supported: FORMAT_VERSION,
        }),
    }
}

/// Parses the config block + table directory shared by v1 and v2 (they
/// differ only in the presence of the CRC footer). `data` must start at the
/// config block (offset 5). Returns the config, flags byte, and table
/// shapes, plus the total header length consumed.
struct Header {
    config: ModelConfig,
    shapes: Vec<(usize, usize)>,
    /// Bytes from offset 0 through the end of the table directory.
    header_len: usize,
    /// Total f32 payload length in bytes.
    payload_len: usize,
}

fn parse_header(full: &[u8]) -> Result<Header> {
    if full.len() < FIXED_HEADER_LEN {
        return Err(corrupt(format!(
            "truncated header: {} bytes, need at least {FIXED_HEADER_LEN}",
            full.len()
        )));
    }
    let mut data = &full[5..];
    let kind_tag = data.get_u8();
    let kind = ModelKind::from_tag(kind_tag)
        .ok_or_else(|| corrupt(format!("unknown model kind tag {kind_tag}")))?;
    let flags = data.get_u8();
    if flags & !KNOWN_FLAGS != 0 {
        return Err(corrupt(format!("unknown flag bits {flags:#010b}")));
    }
    if flags & FLAG_TRANSE_L2 != 0 && kind != ModelKind::TransE {
        return Err(corrupt(format!(
            "distance flag set on non-TransE model ({kind})"
        )));
    }
    let n = data.get_u64_le() as usize;
    let k = data.get_u64_le() as usize;
    let dim = data.get_u64_le() as usize;
    let num_tables = data.get_u8() as usize;

    let header_len = FIXED_HEADER_LEN + num_tables * TABLE_ENTRY_LEN;
    if full.len() < header_len {
        return Err(corrupt(format!(
            "truncated table directory: {} bytes, header implies {header_len}",
            full.len()
        )));
    }
    let mut shapes = Vec::with_capacity(num_tables);
    let mut payload_len = 0usize;
    for _ in 0..num_tables {
        let rows = data.get_u64_le() as usize;
        let cols = data.get_u64_le() as usize;
        let cells = rows
            .checked_mul(cols)
            .and_then(|c| c.checked_mul(4))
            .ok_or_else(|| corrupt("table shape overflows"))?;
        payload_len = payload_len
            .checked_add(cells)
            .ok_or_else(|| corrupt("payload length overflows"))?;
        shapes.push((rows, cols));
    }
    let distance = if kind == ModelKind::TransE {
        Some(if flags & FLAG_TRANSE_L2 != 0 {
            Distance::L2
        } else {
            Distance::L1
        })
    } else {
        None
    };
    Ok(Header {
        config: ModelConfig {
            kind,
            num_entities: n,
            num_relations: k,
            dim,
            distance,
        },
        shapes,
        header_len,
        payload_len,
    })
}

/// Builds the model described by `header` and fills its tables from
/// `payload` (exactly the f32 data, already length-checked).
fn materialize(header: &Header, mut payload: &[u8]) -> Result<Box<dyn KgeModel>> {
    let mut model = header.config.build(0);
    let params = model.params_mut();
    if params.num_tables() != header.shapes.len() {
        return Err(corrupt(format!(
            "table count mismatch: file has {}, a {} model has {}",
            header.shapes.len(),
            header.config.kind,
            params.num_tables()
        )));
    }
    for (i, &(rows, cols)) in header.shapes.iter().enumerate() {
        let table = params.table_mut(i);
        if table.rows() != rows || table.cols() != cols {
            return Err(corrupt(format!(
                "table {i} shape mismatch: file {rows}×{cols}, model {}×{}",
                table.rows(),
                table.cols()
            )));
        }
        for v in table.data_mut() {
            *v = payload.get_f32_le();
        }
    }
    Ok(model)
}

fn load_v2(data: &[u8]) -> Result<Box<dyn KgeModel>> {
    let header = parse_header(data)?;
    let expected = header.header_len + header.payload_len + FOOTER_LEN;
    if data.len() < expected {
        return Err(corrupt(format!(
            "truncated: {} bytes, header implies {expected}",
            data.len()
        )));
    }
    if data.len() > expected {
        return Err(corrupt(format!(
            "{} trailing bytes after the checksum footer",
            data.len() - expected
        )));
    }
    let body = &data[..expected - FOOTER_LEN];
    let stored = u32::from_le_bytes(data[expected - FOOTER_LEN..].try_into().expect("4 bytes"));
    let actual = crc32(body);
    if stored != actual {
        return Err(corrupt(format!(
            "checksum mismatch: footer {stored:#010x}, computed {actual:#010x}"
        )));
    }
    materialize(&header, &body[header.header_len..])
}

fn load_v1(data: &[u8]) -> Result<Box<dyn KgeModel>> {
    let header = parse_header(data)?;
    if header.config.kind == ModelKind::TransE {
        // The v1 generic writer hard-coded the distance flag to L1, so the
        // flag in a v1 TransE file cannot be trusted — a model trained with
        // L2 would silently reload as L1 and score differently.
        return Err(KgError::Migration(
            "v1 TransE model files carry an untrustworthy distance flag; \
             retrain the model and save it under format v2"
                .into(),
        ));
    }
    let expected = header.header_len + header.payload_len;
    if data.len() < expected {
        return Err(corrupt(format!(
            "truncated: {} bytes, header implies {expected}",
            data.len()
        )));
    }
    if data.len() > expected {
        return Err(corrupt(format!(
            "{} trailing bytes after the parameter payload",
            data.len() - expected
        )));
    }
    materialize(&header, &data[header.header_len..])
}

/// Monotonic suffix so concurrent writers in one process never share a
/// temp file.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn tmp_sibling(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "model".into());
    path.with_file_name(format!(
        ".{name}.tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Atomically writes `bytes` to `path`: write a unique temp sibling, fsync,
/// then rename over the destination. Readers therefore observe either the
/// previous file or the complete new one — never a partial write — and
/// concurrent writers (threads or processes) cannot interleave. Parent
/// directories are created as needed. Shared by the model writer below and
/// the training-checkpoint writer.
pub(crate) fn write_bytes_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let tmp = tmp_sibling(path);
    let cleanup = |e: std::io::Error| {
        let _ = std::fs::remove_file(&tmp);
        KgError::Io(e)
    };
    let mut file = std::fs::File::create(&tmp).map_err(KgError::Io)?;
    file.write_all(bytes)
        .and_then(|()| file.sync_all())
        .map_err(cleanup)?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(cleanup)
}

/// Atomically writes `model` to `path` (see [`write_bytes_atomic`] for the
/// crash-safety guarantees).
pub fn write_model_file(path: impl AsRef<Path>, model: &dyn KgeModel) -> Result<()> {
    write_bytes_atomic(path.as_ref(), &save_model(model))
}

/// Reads and verifies a model file written by [`write_model_file`] /
/// [`save_model`]. Integrity failures come back as [`KgError::Corrupt`] /
/// [`KgError::Migration`] with the path prepended.
pub fn read_model_file(path: impl AsRef<Path>) -> Result<Box<dyn KgeModel>> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)
        .map_err(|e| std::io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
    load_model(&bytes).map_err(|e| match e {
        KgError::Corrupt(d) => KgError::Corrupt(format!("{}: {d}", path.display())),
        KgError::Migration(d) => KgError::Migration(format!("{}: {d}", path.display())),
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::TransE;
    use crate::new_model;
    use kgfd_kg::Triple;

    /// Writes v1 bytes (the legacy format) for compatibility tests.
    fn save_v1(model: &dyn KgeModel, flags: u8) -> Vec<u8> {
        let params = model.params();
        let mut buf = BytesMut::with_capacity(1024);
        buf.put_slice(MAGIC);
        buf.put_u8(1);
        buf.put_u8(model.kind().tag());
        buf.put_u8(flags);
        buf.put_u64_le(model.num_entities() as u64);
        buf.put_u64_le(model.num_relations() as u64);
        buf.put_u64_le(model.dim() as u64);
        buf.put_u8(params.num_tables() as u8);
        for table in params.tables() {
            buf.put_u64_le(table.rows() as u64);
            buf.put_u64_le(table.cols() as u64);
        }
        for table in params.tables() {
            for &v in table.data() {
                buf.put_f32_le(v);
            }
        }
        buf.to_vec()
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // The canonical CRC-32 check value (RFC 1952 / zlib).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_preserves_scores_for_all_kinds() {
        for kind in ModelKind::ALL {
            let model = new_model(kind, 6, 2, 12, 42);
            let bytes = save_model(model.as_ref());
            let loaded = load_model(&bytes).unwrap();
            assert_eq!(loaded.kind(), kind);
            assert_eq!(loaded.config(), model.config());
            for t in [Triple::new(0u32, 0u32, 1u32), Triple::new(3u32, 1u32, 5u32)] {
                let a = model.score(t);
                let b = loaded.score(t);
                assert_eq!(a.to_bits(), b.to_bits(), "{kind}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn transe_distance_survives_generic_roundtrip() {
        // The v1 bug: this exact path (generic `save_model` on an L2 TransE)
        // silently reloaded as L1.
        for distance in [Distance::L1, Distance::L2] {
            let model = TransE::new(4, 2, 8, distance, 1);
            let bytes = save_model(&model);
            let loaded = load_model(&bytes).unwrap();
            assert_eq!(loaded.config().distance, Some(distance));
            let t = Triple::new(0u32, 1u32, 3u32);
            assert_eq!(loaded.score(t).to_bits(), model.score(t).to_bits());
        }
    }

    #[test]
    fn garbage_and_truncation_are_rejected() {
        assert!(matches!(load_model(b"nope"), Err(KgError::Corrupt(_))));
        assert!(matches!(load_model(&[]), Err(KgError::Corrupt(_))));
        let model = new_model(ModelKind::DistMult, 3, 1, 8, 0);
        let bytes = save_model(model.as_ref());
        for len in 0..bytes.len() {
            assert!(
                matches!(load_model(&bytes[..len]), Err(KgError::Corrupt(_))),
                "prefix of {len} bytes must be rejected"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let model = new_model(ModelKind::ComplEx, 3, 1, 8, 0);
        let mut bytes = save_model(model.as_ref()).to_vec();
        bytes.push(0);
        let err = load_model(&bytes).err().expect("trailing garbage accepted");
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        let model = new_model(ModelKind::DistMult, 3, 1, 8, 7);
        let bytes = save_model(model.as_ref());
        for i in 0..bytes.len() {
            let mut corrupt = bytes.to_vec();
            corrupt[i] ^= 0x01;
            assert!(
                load_model(&corrupt).is_err(),
                "bit flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn unsupported_version_is_typed() {
        let model = new_model(ModelKind::DistMult, 3, 1, 8, 0);
        let mut bytes = save_model(model.as_ref()).to_vec();
        bytes[4] = 9;
        assert!(matches!(
            load_model(&bytes),
            Err(KgError::UnsupportedVersion {
                found: 9,
                max_supported: FORMAT_VERSION
            })
        ));
    }

    #[test]
    fn v1_non_transe_files_still_load() {
        let model = new_model(ModelKind::Rescal, 4, 2, 6, 5);
        let bytes = save_v1(model.as_ref(), 0);
        let loaded = load_model(&bytes).unwrap();
        let t = Triple::new(1u32, 0u32, 2u32);
        assert_eq!(loaded.score(t).to_bits(), model.score(t).to_bits());
    }

    #[test]
    fn v1_transe_files_require_migration() {
        for flags in [0u8, 1u8] {
            let model = TransE::new(4, 2, 8, Distance::L2, 1);
            let bytes = save_v1(&model, flags);
            assert!(
                matches!(load_model(&bytes), Err(KgError::Migration(_))),
                "v1 TransE (flags {flags}) must be rejected"
            );
        }
    }

    #[test]
    fn unknown_flag_bits_are_rejected() {
        let model = TransE::new(4, 2, 8, Distance::L2, 1);
        let mut bytes = save_model(&model).to_vec();
        bytes[6] |= 0b1000_0000;
        // Fix up the footer so only the flag check can reject it.
        let crc = crc32(&bytes[..bytes.len() - 4]);
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        let err = load_model(&bytes).err().expect("unknown flags accepted");
        assert!(err.to_string().contains("flag"), "{err}");
    }

    #[test]
    fn write_model_file_is_atomic_and_verifiable() {
        let dir = std::env::temp_dir().join(format!("kgfd-persist-{}", std::process::id()));
        let path = dir.join("nested").join("model.kgfd");
        let model = new_model(ModelKind::HolE, 5, 2, 8, 3);
        write_model_file(&path, model.as_ref()).unwrap();
        let loaded = read_model_file(&path).unwrap();
        let t = Triple::new(0u32, 0u32, 4u32);
        assert_eq!(loaded.score(t).to_bits(), model.score(t).to_bits());
        // No temp droppings left behind.
        let leftovers: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_model_file_prepends_path_context() {
        let dir = std::env::temp_dir().join(format!("kgfd-persist-ctx-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.kgfd");
        std::fs::write(&path, b"XXXX garbage").unwrap();
        let err = read_model_file(&path).err().expect("garbage accepted");
        assert!(err.to_string().contains("bad.kgfd"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
