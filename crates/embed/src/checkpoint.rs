//! Crash-safe training checkpoints (format "KGCK" v1).
//!
//! A checkpoint captures *everything* that determines the remainder of a
//! training run — model parameters, full optimizer state (Adam's step
//! counter and both moment tables, Adagrad's accumulators), the number of
//! completed epochs, the epoch-shuffle RNG stream position, the per-epoch
//! losses so far, and a fingerprint of the [`TrainConfig`] — so that
//! resuming is **bit-identical** to never having stopped. The differential
//! suite in `tests/checkpoint_resume.rs` enforces that contract for every
//! model family at 1 and 4 threads.
//!
//! ## Byte layout (all integers little-endian)
//!
//! ```text
//! magic "KGCK" | version u8 = 1
//! | fingerprint u64                                  ← TrainConfig + model kind
//! | epochs_done u64
//! | rng_state 4 × u64                                ← epoch-shuffle stream
//! | num_losses u64 | f64 per completed epoch
//! | model_len u64 | model bytes                      ← embedded "KGFD" v2 file
//! | optimizer tag u8 (0 = SGD, 1 = Adagrad, 2 = Adam)
//! |   Adagrad: table block (accumulators)
//! |   Adam:    t u64 | table block (m) | f32 data (v, same shapes as m)
//! | crc32 u32                                        ← integrity footer
//! ```
//!
//! A *table block* is `num_tables u8 | { rows u64, cols u64 }* | f32 data
//! per table` — the same shape-directory-then-payload arrangement as the
//! model format. The trailing CRC-32 covers every preceding byte and the
//! reader enforces the exact length its header implies, so truncation, bit
//! flips, and appended garbage all surface as [`KgError::Corrupt`].
//!
//! ## Files on disk
//!
//! Checkpoints live next to the training output as
//! `<output>.ckpt-<epochs_done, 8 digits>`, written atomically
//! (temp sibling + fsync + rename) and rotated to the newest
//! [`CheckpointPolicy::keep`] files. [`resume_latest`] walks them newest
//! first: a corrupt or version-skewed file is evicted (recovery recorded via
//! [`kgfd_obs::record_recovery`], mirrored into [`ResumeReport`]) and the
//! previous one is tried; a checkpoint whose fingerprint disagrees with the
//! requested configuration is refused outright with
//! [`KgError::CheckpointMismatch`] — resuming it would silently train a
//! different run.

use crate::persist::write_bytes_atomic;
use crate::{
    load_model, save_model, KgeModel, ModelKind, OptimizerState, ParamTable, StopSignal,
    TrainConfig, TrainOutcome, TrainSession,
};
use bytes::{BufMut, BytesMut};
use kgfd_kg::{KgError, Result, TripleStore};
use std::path::{Path, PathBuf};
use std::time::Instant;

const MAGIC: &[u8; 4] = b"KGCK";
/// Current (written) checkpoint format version.
pub const CHECKPOINT_VERSION: u8 = 1;
const FOOTER_LEN: usize = 4;

const OPT_TAG_SGD: u8 = 0;
const OPT_TAG_ADAGRAD: u8 = 1;
const OPT_TAG_ADAM: u8 = 2;

fn corrupt(msg: impl Into<String>) -> KgError {
    KgError::Corrupt(format!("checkpoint file: {}", msg.into()))
}

/// Fingerprint binding a checkpoint to its training configuration: FNV-1a
/// over the model kind and the JSON rendering of the [`TrainConfig`] with
/// `threads` canonicalized to 1. Threads are excluded deliberately — the
/// trainer's determinism contract makes results independent of the thread
/// count, so resuming a 1-thread run on 4 threads (or vice versa) is safe
/// and stays bit-identical; every other field changes the training
/// trajectory and therefore changes the fingerprint.
pub fn config_fingerprint(kind: ModelKind, config: &TrainConfig) -> u64 {
    let mut canonical = config.clone();
    canonical.threads = 1;
    let json = serde_json::to_string(&canonical).expect("TrainConfig serializes");
    let mut h = 0xCBF2_9CE4_8422_2325u64; // FNV-1a offset basis
    for b in kind
        .to_string()
        .as_bytes()
        .iter()
        .chain(&[0u8])
        .chain(json.as_bytes())
    {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3); // FNV-1a prime
    }
    h
}

/// A decoded checkpoint: the complete resumable state of a training run at
/// an epoch boundary. The model is kept as its serialized "KGFD" v2 bytes
/// (validated on [`TrainCheckpoint::load_model`]) so encode/decode are
/// exactly symmetric.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCheckpoint {
    /// [`config_fingerprint`] of the run that wrote this checkpoint.
    pub fingerprint: u64,
    /// Epochs completed when the checkpoint was taken.
    pub epochs_done: u64,
    /// Epoch-shuffle RNG stream position at the boundary.
    pub rng_state: [u64; 4],
    /// Mean pair loss of each completed epoch.
    pub epoch_losses: Vec<f64>,
    /// The model as a serialized v2 model file (checksummed independently).
    pub model_bytes: Vec<u8>,
    /// Full optimizer state (moments and step counter included).
    pub optimizer: OptimizerState,
}

impl TrainCheckpoint {
    /// Serializes to the "KGCK" v1 layout, CRC-32 footer included.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf =
            BytesMut::with_capacity(64 + self.epoch_losses.len() * 8 + self.model_bytes.len() + 64);
        buf.put_slice(MAGIC);
        buf.put_u8(CHECKPOINT_VERSION);
        buf.put_u64_le(self.fingerprint);
        buf.put_u64_le(self.epochs_done);
        for w in self.rng_state {
            buf.put_u64_le(w);
        }
        buf.put_u64_le(self.epoch_losses.len() as u64);
        for &l in &self.epoch_losses {
            buf.put_u64_le(l.to_bits());
        }
        buf.put_u64_le(self.model_bytes.len() as u64);
        buf.put_slice(&self.model_bytes);
        match &self.optimizer {
            OptimizerState::Sgd => buf.put_u8(OPT_TAG_SGD),
            OptimizerState::Adagrad { accum } => {
                buf.put_u8(OPT_TAG_ADAGRAD);
                put_table_block(&mut buf, accum);
            }
            OptimizerState::Adam { t, m, v } => {
                buf.put_u8(OPT_TAG_ADAM);
                buf.put_u64_le(*t);
                put_table_block(&mut buf, m);
                for table in v {
                    for &x in table.data() {
                        buf.put_f32_le(x);
                    }
                }
            }
        }
        let checksum = crate::crc32(&buf);
        buf.put_u32_le(checksum);
        buf.to_vec()
    }

    /// Parses and verifies a "KGCK" checkpoint. Any structural defect —
    /// short read, checksum mismatch, trailing bytes, impossible shapes —
    /// comes back as [`KgError::Corrupt`]; an unknown version byte as
    /// [`KgError::UnsupportedVersion`].
    pub fn decode(data: &[u8]) -> Result<Self> {
        if data.len() < MAGIC.len() + 1 {
            return Err(corrupt(format!(
                "{} bytes is too short to hold even magic and version",
                data.len()
            )));
        }
        if &data[..4] != MAGIC {
            return Err(corrupt("bad magic (not a KGCK checkpoint file)"));
        }
        if data[4] != CHECKPOINT_VERSION {
            return Err(KgError::UnsupportedVersion {
                found: data[4],
                max_supported: CHECKPOINT_VERSION,
            });
        }
        if data.len() < MAGIC.len() + 1 + FOOTER_LEN {
            return Err(corrupt("truncated before the checksum footer"));
        }
        let body = &data[..data.len() - FOOTER_LEN];
        let stored = u32::from_le_bytes(data[data.len() - FOOTER_LEN..].try_into().expect("4"));
        let actual = crate::crc32(body);
        if stored != actual {
            return Err(corrupt(format!(
                "checksum mismatch: footer {stored:#010x}, computed {actual:#010x}"
            )));
        }
        let mut r = Reader { data: &body[5..] };
        let fingerprint = r.u64()?;
        let epochs_done = r.u64()?;
        let rng_state = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        let num_losses = r.len_checked("epoch losses", 8)?;
        let mut epoch_losses = Vec::with_capacity(num_losses);
        for _ in 0..num_losses {
            epoch_losses.push(r.f64()?);
        }
        let model_len = r.len_checked("model payload", 1)?;
        let model_bytes = r.take(model_len)?.to_vec();
        let optimizer = match r.u8()? {
            OPT_TAG_SGD => OptimizerState::Sgd,
            OPT_TAG_ADAGRAD => OptimizerState::Adagrad {
                accum: r.table_block()?,
            },
            OPT_TAG_ADAM => {
                let t = r.u64()?;
                let m = r.table_block()?;
                let mut v = Vec::with_capacity(m.len());
                for table in &m {
                    v.push(r.table_data(table.rows(), table.cols())?);
                }
                OptimizerState::Adam { t, m, v }
            }
            tag => return Err(corrupt(format!("unknown optimizer tag {tag}"))),
        };
        if !r.data.is_empty() {
            return Err(corrupt(format!(
                "{} trailing bytes before the checksum footer",
                r.data.len()
            )));
        }
        Ok(TrainCheckpoint {
            fingerprint,
            epochs_done,
            rng_state,
            epoch_losses,
            model_bytes,
            optimizer,
        })
    }

    /// Deserializes the embedded model (its own "KGFD" v2 checks apply).
    pub fn load_model(&self) -> Result<Box<dyn KgeModel>> {
        load_model(&self.model_bytes)
    }
}

fn put_table_block(buf: &mut BytesMut, tables: &[ParamTable]) {
    buf.put_u8(tables.len() as u8);
    for t in tables {
        buf.put_u64_le(t.rows() as u64);
        buf.put_u64_le(t.cols() as u64);
    }
    for t in tables {
        for &x in t.data() {
            buf.put_f32_le(x);
        }
    }
}

/// Bounds-checked little-endian reader; every underflow is a typed
/// [`KgError::Corrupt`] instead of a panic.
struct Reader<'a> {
    data: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.data.len() < n {
            return Err(corrupt(format!(
                "truncated: needed {n} more bytes, {} remain",
                self.data.len()
            )));
        }
        let (head, rest) = self.data.split_at(n);
        self.data = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a u64 count and sanity-checks it against the bytes actually
    /// remaining (each element needs at least `min_elem_bytes`), so a
    /// corrupted length cannot trigger an absurd allocation.
    fn len_checked(&mut self, what: &str, min_elem_bytes: usize) -> Result<usize> {
        let n = self.u64()? as usize;
        if n.checked_mul(min_elem_bytes)
            .is_none_or(|b| b > self.data.len())
        {
            return Err(corrupt(format!(
                "{what} length {n} exceeds the bytes remaining"
            )));
        }
        Ok(n)
    }

    fn table_data(&mut self, rows: usize, cols: usize) -> Result<ParamTable> {
        let cells = rows
            .checked_mul(cols)
            .ok_or_else(|| corrupt("table shape overflows"))?;
        let raw = self.take(
            cells
                .checked_mul(4)
                .ok_or_else(|| corrupt("table byte length overflows"))?,
        )?;
        let data = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4")))
            .collect();
        Ok(ParamTable::from_data(rows, cols, data))
    }

    fn table_block(&mut self) -> Result<Vec<ParamTable>> {
        let n = self.u8()? as usize;
        let mut shapes = Vec::with_capacity(n);
        for _ in 0..n {
            shapes.push((self.u64()? as usize, self.u64()? as usize));
        }
        let mut tables = Vec::with_capacity(n);
        for (rows, cols) in shapes {
            tables.push(self.table_data(rows, cols)?);
        }
        Ok(tables)
    }
}

/// Atomically writes `ckpt` to `path` (temp sibling + fsync + rename — a
/// crash mid-write leaves the previous checkpoint untouched) and records
/// the write in the metrics registry (`embed.ckpt.writes`,
/// `embed.ckpt.bytes`, `embed.ckpt.write_us`).
pub fn write_checkpoint(path: impl AsRef<Path>, ckpt: &TrainCheckpoint) -> Result<()> {
    let start = Instant::now();
    let bytes = ckpt.encode();
    write_bytes_atomic(path.as_ref(), &bytes)?;
    kgfd_obs::counter("embed.ckpt.writes").add(1);
    kgfd_obs::histogram("embed.ckpt.bytes").record(bytes.len() as f64);
    kgfd_obs::histogram("embed.ckpt.write_us").record(start.elapsed().as_micros() as f64);
    Ok(())
}

/// Reads and verifies a checkpoint file; integrity failures come back with
/// the path prepended.
pub fn read_checkpoint_file(path: impl AsRef<Path>) -> Result<TrainCheckpoint> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)
        .map_err(|e| std::io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
    TrainCheckpoint::decode(&bytes).map_err(|e| match e {
        KgError::Corrupt(d) => KgError::Corrupt(format!("{}: {d}", path.display())),
        other => other,
    })
}

/// When and where a [`TrainSession`] writes checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Training output path; checkpoints are siblings named
    /// `<output>.ckpt-<epochs, 8 digits>`.
    pub output: PathBuf,
    /// Write a checkpoint every this many completed epochs (0 disables the
    /// periodic writes; a stop-triggered final checkpoint still happens).
    pub every: usize,
    /// Newest checkpoints retained after each write. At least 2 preserves
    /// the corruption-fallback story: if the newest file is damaged, the
    /// previous boundary is still on disk.
    pub keep: usize,
}

impl CheckpointPolicy {
    /// Checkpoint every `every` epochs next to `output`, keeping 2 files.
    pub fn new(output: impl Into<PathBuf>, every: usize) -> Self {
        CheckpointPolicy {
            output: output.into(),
            every,
            keep: 2,
        }
    }

    /// The checkpoint path for a given completed-epoch count.
    pub fn path_for(&self, epochs_done: usize) -> PathBuf {
        checkpoint_path(&self.output, epochs_done)
    }

    /// Deletes all but the newest [`CheckpointPolicy::keep`] checkpoints.
    fn rotate(&self) {
        let mut existing = checkpoint_paths(&self.output);
        let keep = self.keep.max(1);
        if existing.len() > keep {
            let cutoff = existing.len() - keep;
            for (_, path) in existing.drain(..cutoff) {
                let _ = std::fs::remove_file(path);
            }
        }
    }
}

fn checkpoint_path(output: &Path, epochs_done: usize) -> PathBuf {
    let name = output
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "model".into());
    output.with_file_name(format!("{name}.ckpt-{epochs_done:08}"))
}

/// Checkpoints currently on disk for `output`, as `(epochs_done, path)`
/// sorted by ascending epoch. Only well-formed `<name>.ckpt-<digits>`
/// siblings are listed; contents are *not* validated here — that happens
/// (with fallback) in [`resume_latest`].
pub fn checkpoint_paths(output: &Path) -> Vec<(usize, PathBuf)> {
    let Some(stem) = output.file_name().map(|n| n.to_string_lossy().into_owned()) else {
        return Vec::new();
    };
    let dir = match output.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let prefix = format!("{stem}.ckpt-");
    let mut found = Vec::new();
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return Vec::new();
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(suffix) = name.strip_prefix(&prefix) {
            if !suffix.is_empty() && suffix.bytes().all(|b| b.is_ascii_digit()) {
                if let Ok(epoch) = suffix.parse::<usize>() {
                    found.push((epoch, entry.path()));
                }
            }
        }
    }
    found.sort();
    found
}

/// What [`resume_latest`] did to get a usable session.
#[derive(Debug, Clone, Default)]
pub struct ResumeReport {
    /// The checkpoint the session was restored from, if any (`None` means
    /// training starts fresh — no checkpoint existed or all were evicted).
    pub resumed_from: Option<PathBuf>,
    /// Human-readable record of every corrupt/unreadable checkpoint that
    /// was evicted along the way; also appended to the process-wide
    /// recovery log, so it surfaces in the RunManifest `recoveries` field.
    pub recoveries: Vec<String>,
}

/// Restores the newest valid checkpoint for `output` into a
/// [`TrainSession`], falling back through older checkpoints when the newest
/// is truncated, corrupt, or version-skewed (each eviction recorded), and
/// starting fresh when none survive. A checkpoint whose fingerprint
/// disagrees with `(kind, config)` is **refused** with
/// [`KgError::CheckpointMismatch`] rather than skipped: it is structurally
/// healthy, so "fall back" would silently retrain from an older state of a
/// different run.
pub fn resume_latest<'a>(
    kind: ModelKind,
    store: &'a TripleStore,
    config: &TrainConfig,
    output: &Path,
) -> Result<(TrainSession<'a>, ResumeReport)> {
    let expected = config_fingerprint(kind, config);
    let mut report = ResumeReport::default();
    let mut candidates = checkpoint_paths(output);
    while let Some((_, path)) = candidates.pop() {
        let ckpt = match read_checkpoint_file(&path) {
            Ok(c) => c,
            Err(e @ KgError::Io(_)) => return Err(e),
            Err(e) => {
                evict(&mut report, &path, &e);
                continue;
            }
        };
        if ckpt.fingerprint != expected {
            return Err(KgError::CheckpointMismatch {
                expected,
                found: ckpt.fingerprint,
            });
        }
        let restored = ckpt.load_model().and_then(|model| {
            TrainSession::resume(
                model,
                store,
                config,
                ckpt.optimizer,
                ckpt.epochs_done as usize,
                ckpt.epoch_losses,
                ckpt.rng_state,
            )
        });
        match restored {
            Ok(session) => {
                kgfd_obs::counter("embed.ckpt.restores").add(1);
                kgfd_obs::info(format!(
                    "resuming from checkpoint {} at epoch {}",
                    path.display(),
                    session.epochs_done()
                ));
                report.resumed_from = Some(path);
                return Ok((session, report));
            }
            Err(e) => evict(&mut report, &path, &e),
        }
    }
    Ok((TrainSession::new(kind, store, config)?, report))
}

fn evict(report: &mut ResumeReport, path: &Path, err: &KgError) {
    let msg = format!(
        "checkpoint {}: {err}; evicted, falling back to the previous checkpoint",
        path.display()
    );
    kgfd_obs::warn(msg.clone());
    kgfd_obs::record_recovery(msg.clone());
    report.recoveries.push(msg);
    let _ = std::fs::remove_file(path);
}

impl<'a> TrainSession<'a> {
    /// Snapshots the session's complete resumable state.
    pub fn checkpoint(&self) -> TrainCheckpoint {
        TrainCheckpoint {
            fingerprint: config_fingerprint(self.model().kind(), self.config()),
            epochs_done: self.epochs_done() as u64,
            rng_state: self.rng_state(),
            epoch_losses: self.epoch_losses().to_vec(),
            model_bytes: save_model(self.model()).to_vec(),
            optimizer: self.optimizer_state(),
        }
    }

    /// Writes a checkpoint for the current epoch boundary under `policy`
    /// and rotates old files. Returns the path written.
    pub fn save_checkpoint(&self, policy: &CheckpointPolicy) -> Result<PathBuf> {
        let path = policy.path_for(self.epochs_done());
        write_checkpoint(&path, &self.checkpoint())?;
        policy.rotate();
        Ok(path)
    }

    /// Drives the session to completion (or to a cooperative stop),
    /// checkpointing every [`CheckpointPolicy::every`] epochs. When `stop`
    /// trips, a final checkpoint is written at the current boundary (if a
    /// policy is present) so the interrupted run resumes bit-identically.
    pub fn run(
        &mut self,
        policy: Option<&CheckpointPolicy>,
        stop: Option<&StopSignal>,
    ) -> Result<TrainOutcome> {
        while !self.is_complete() {
            if stop.is_some_and(|s| s.should_stop()) {
                let checkpoint = match policy {
                    Some(p) => Some(self.save_checkpoint(p)?),
                    None => None,
                };
                return Ok(TrainOutcome::Interrupted {
                    epochs_done: self.epochs_done(),
                    checkpoint,
                });
            }
            self.run_epoch();
            if let Some(p) = policy {
                if p.every > 0 && self.epochs_done().is_multiple_of(p.every) && !self.is_complete()
                {
                    self.save_checkpoint(p)?;
                }
            }
        }
        Ok(TrainOutcome::Completed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{train, OptimizerKind};
    use kgfd_datasets::toy_biomedical;

    fn tiny_config() -> TrainConfig {
        TrainConfig {
            dim: 8,
            epochs: 6,
            batch_size: 32,
            negatives: 2,
            seed: 13,
            threads: 1,
            ..TrainConfig::default()
        }
    }

    fn sample_checkpoint(optimizer: OptimizerState) -> TrainCheckpoint {
        let model = crate::new_model(ModelKind::DistMult, 5, 2, 8, 3);
        TrainCheckpoint {
            fingerprint: 0xDEAD_BEEF_0123_4567,
            epochs_done: 9,
            rng_state: [1, 2, 3, 4],
            epoch_losses: vec![0.5, 0.25, 0.125],
            model_bytes: save_model(model.as_ref()).to_vec(),
            optimizer,
        }
    }

    #[test]
    fn encode_decode_roundtrips_every_optimizer_state() {
        let m = vec![ParamTable::from_data(2, 3, vec![1.0; 6])];
        let v = vec![ParamTable::from_data(2, 3, vec![2.0; 6])];
        for state in [
            OptimizerState::Sgd,
            OptimizerState::Adagrad { accum: m.clone() },
            OptimizerState::Adam { t: 42, m, v },
        ] {
            let ckpt = sample_checkpoint(state);
            let decoded = TrainCheckpoint::decode(&ckpt.encode()).unwrap();
            assert_eq!(decoded, ckpt);
            decoded.load_model().unwrap();
        }
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        let ckpt = sample_checkpoint(OptimizerState::Sgd);
        let bytes = ckpt.encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(
                TrainCheckpoint::decode(&bad).is_err(),
                "bit flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_and_trailing_garbage_are_rejected() {
        let bytes = sample_checkpoint(OptimizerState::Sgd).encode();
        for len in 0..bytes.len() {
            assert!(
                matches!(
                    TrainCheckpoint::decode(&bytes[..len]),
                    Err(KgError::Corrupt(_))
                ),
                "prefix of {len} bytes must be rejected"
            );
        }
        let mut long = bytes.clone();
        long.push(0);
        assert!(TrainCheckpoint::decode(&long).is_err());
    }

    #[test]
    fn version_skew_is_typed() {
        let mut bytes = sample_checkpoint(OptimizerState::Sgd).encode();
        bytes[4] = 9;
        assert!(matches!(
            TrainCheckpoint::decode(&bytes),
            Err(KgError::UnsupportedVersion {
                found: 9,
                max_supported: CHECKPOINT_VERSION
            })
        ));
    }

    #[test]
    fn fingerprint_ignores_threads_but_nothing_else() {
        let base = tiny_config();
        let mut threaded = base.clone();
        threaded.threads = 4;
        assert_eq!(
            config_fingerprint(ModelKind::TransE, &base),
            config_fingerprint(ModelKind::TransE, &threaded),
            "threads never affect results, so they must not affect the fingerprint"
        );
        let mut other_seed = base.clone();
        other_seed.seed += 1;
        assert_ne!(
            config_fingerprint(ModelKind::TransE, &base),
            config_fingerprint(ModelKind::TransE, &other_seed)
        );
        assert_ne!(
            config_fingerprint(ModelKind::TransE, &base),
            config_fingerprint(ModelKind::DistMult, &base)
        );
        let mut other_opt = base.clone();
        other_opt.optimizer = OptimizerKind::Sgd { lr: 0.1 };
        assert_ne!(
            config_fingerprint(ModelKind::TransE, &base),
            config_fingerprint(ModelKind::TransE, &other_opt)
        );
    }

    #[test]
    fn session_completion_matches_plain_train_bitwise() {
        let data = toy_biomedical();
        let config = tiny_config();
        let (plain, plain_stats) = train(ModelKind::ComplEx, &data.train, &config);
        let mut session = TrainSession::new(ModelKind::ComplEx, &data.train, &config).unwrap();
        assert!(matches!(
            session.run(None, None),
            Ok(TrainOutcome::Completed)
        ));
        let (model, stats) = session.into_model();
        assert_eq!(stats.epoch_losses, plain_stats.epoch_losses);
        for t in 0..plain.params().num_tables() {
            assert_eq!(
                plain.params().table(t).data(),
                model.params().table(t).data()
            );
        }
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_mid_run() {
        let data = toy_biomedical();
        let config = tiny_config();
        let (straight, straight_stats) = train(ModelKind::TransE, &data.train, &config);

        let mut first = TrainSession::new(ModelKind::TransE, &data.train, &config).unwrap();
        for _ in 0..3 {
            first.run_epoch();
        }
        let ckpt = first.checkpoint();
        drop(first);
        let decoded = TrainCheckpoint::decode(&ckpt.encode()).unwrap();
        let mut resumed = TrainSession::resume(
            decoded.load_model().unwrap(),
            &data.train,
            &config,
            decoded.optimizer,
            decoded.epochs_done as usize,
            decoded.epoch_losses,
            decoded.rng_state,
        )
        .unwrap();
        while !resumed.is_complete() {
            resumed.run_epoch();
        }
        let (model, stats) = resumed.into_model();
        assert_eq!(stats.epoch_losses, straight_stats.epoch_losses);
        for t in 0..straight.params().num_tables() {
            assert_eq!(
                straight.params().table(t).data(),
                model.params().table(t).data(),
                "table {t} must be bitwise identical after kill/resume"
            );
        }
    }

    #[test]
    fn resume_latest_falls_back_over_a_corrupt_newest() {
        let dir = std::env::temp_dir().join(format!("kgfd-ckpt-fallback-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let output = dir.join("model.kgfd");
        let data = toy_biomedical();
        let config = tiny_config();
        let policy = CheckpointPolicy::new(&output, 2);

        let mut session = TrainSession::new(ModelKind::DistMult, &data.train, &config).unwrap();
        for _ in 0..2 {
            session.run_epoch();
        }
        session.save_checkpoint(&policy).unwrap();
        for _ in 0..2 {
            session.run_epoch();
        }
        let newest = session.save_checkpoint(&policy).unwrap();
        drop(session);

        // Truncate the newest checkpoint: resume must fall back to epoch 2.
        let bytes = std::fs::read(&newest).unwrap();
        std::fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();

        let (resumed, report) =
            resume_latest(ModelKind::DistMult, &data.train, &config, &output).unwrap();
        assert_eq!(resumed.epochs_done(), 2);
        assert_eq!(report.recoveries.len(), 1);
        assert!(report.recoveries[0].contains("ckpt-00000004"), "{report:?}");
        assert!(!newest.exists(), "corrupt checkpoint must be evicted");
        assert!(report
            .resumed_from
            .as_ref()
            .unwrap()
            .to_string_lossy()
            .contains("ckpt-00000002"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_latest_refuses_a_mismatched_fingerprint() {
        let dir = std::env::temp_dir().join(format!("kgfd-ckpt-mismatch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let output = dir.join("model.kgfd");
        let data = toy_biomedical();
        let config = tiny_config();
        let policy = CheckpointPolicy::new(&output, 2);
        let mut session = TrainSession::new(ModelKind::TransE, &data.train, &config).unwrap();
        session.run_epoch();
        session.save_checkpoint(&policy).unwrap();
        drop(session);

        let mut other = config.clone();
        other.seed += 1;
        let err = resume_latest(ModelKind::TransE, &data.train, &other, &output)
            .err()
            .expect("mismatched fingerprint accepted");
        assert!(matches!(err, KgError::CheckpointMismatch { .. }), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_latest_starts_fresh_without_checkpoints() {
        let dir = std::env::temp_dir().join(format!("kgfd-ckpt-fresh-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = toy_biomedical();
        let config = tiny_config();
        let (session, report) = resume_latest(
            ModelKind::TransE,
            &data.train,
            &config,
            &dir.join("model.kgfd"),
        )
        .unwrap();
        assert_eq!(session.epochs_done(), 0);
        assert!(report.resumed_from.is_none());
        assert!(report.recoveries.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_keeps_the_newest_two() {
        let dir = std::env::temp_dir().join(format!("kgfd-ckpt-rotate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let output = dir.join("model.kgfd");
        let data = toy_biomedical();
        let config = tiny_config();
        let policy = CheckpointPolicy::new(&output, 1);
        let mut session = TrainSession::new(ModelKind::TransE, &data.train, &config).unwrap();
        for _ in 0..4 {
            session.run_epoch();
            session.save_checkpoint(&policy).unwrap();
        }
        let remaining = checkpoint_paths(&output);
        assert_eq!(
            remaining.iter().map(|(e, _)| *e).collect::<Vec<_>>(),
            vec![3, 4],
            "only the newest two boundaries survive rotation"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stop_signal_interrupts_at_an_epoch_boundary_with_a_checkpoint() {
        let dir = std::env::temp_dir().join(format!("kgfd-ckpt-stop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let output = dir.join("model.kgfd");
        let data = toy_biomedical();
        let config = tiny_config();
        let policy = CheckpointPolicy::new(&output, 100);
        let stop = StopSignal::new();
        stop.request_stop();
        let mut session = TrainSession::new(ModelKind::TransE, &data.train, &config).unwrap();
        session.run_epoch();
        let outcome = session.run(Some(&policy), Some(&stop)).unwrap();
        match outcome {
            TrainOutcome::Interrupted {
                epochs_done,
                checkpoint,
            } => {
                assert_eq!(epochs_done, 1);
                let path = checkpoint.expect("a policy was set");
                assert!(path.exists());
                let ckpt = read_checkpoint_file(&path).unwrap();
                assert_eq!(ckpt.epochs_done, 1);
            }
            other => panic!("expected an interruption, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
