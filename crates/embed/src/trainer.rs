//! The mini-batch training loop.
//!
//! Deterministic given a seed: triple order, negative samples, and
//! initialization all derive from `TrainConfig::seed`, so two runs of the
//! same configuration produce bit-identical models — a property the
//! integration tests assert.

use crate::{
    new_model, CorruptSide, Gradients, KgeModel, LossKind, ModelKind, NegativeSampler,
    OptimizerKind, ENTITY_TABLE,
};
use kgfd_kg::{Triple, TripleStore};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Hyperparameters of one training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Entity-embedding width.
    pub dim: usize,
    /// Number of passes over the training triples.
    pub epochs: usize,
    /// Positives per optimizer step.
    pub batch_size: usize,
    /// Negative samples per positive.
    pub negatives: usize,
    /// Loss function.
    pub loss: LossKind,
    /// Optimizer (the paper uses Adam throughout).
    pub optimizer: OptimizerKind,
    /// Filter accidentally-true negatives against the training graph.
    pub filter_negatives: bool,
    /// Re-normalize entity embeddings to unit L2 after each step (the TransE
    /// original's constraint; harmless but unnecessary elsewhere).
    pub normalize_entities: bool,
    /// Self-adversarial negative weighting (Sun et al. 2019): weight each
    /// negative by `softmax(α · f(neg))` across its positive's negatives, so
    /// training focuses on the hardest corruptions. `None` = uniform.
    pub adversarial_temperature: Option<f32>,
    /// Seed controlling init, shuffling, and negative sampling.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            dim: 32,
            epochs: 30,
            batch_size: 128,
            negatives: 4,
            loss: LossKind::MarginRanking { margin: 1.0 },
            optimizer: OptimizerKind::Adam { lr: 0.01 },
            filter_negatives: true,
            normalize_entities: false,
            adversarial_temperature: None,
            seed: 0,
        }
    }
}

/// Per-epoch training diagnostics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainStats {
    /// Mean per-pair loss of each epoch.
    pub epoch_losses: Vec<f64>,
}

impl TrainStats {
    /// Loss of the final epoch (`NaN` if no epochs ran).
    pub fn final_loss(&self) -> f64 {
        self.epoch_losses.last().copied().unwrap_or(f64::NAN)
    }
}

/// Trains a fresh model of `kind` on `store`.
///
/// Models flagged [`KgeModel::reciprocal`] (ConvE) are trained on the
/// reciprocal-augmented triple set `(s, r, o) ∪ (o, r + K, s)` with
/// object-side corruption only, matching LibKGE's ConvE recipe; all others
/// use Bordes-style both-side corruption.
pub fn train(
    kind: ModelKind,
    store: &TripleStore,
    config: &TrainConfig,
) -> (Box<dyn KgeModel>, TrainStats) {
    let mut model = new_model(
        kind,
        store.num_entities(),
        store.num_relations(),
        config.dim,
        config.seed,
    );
    let stats = train_into(model.as_mut(), store, config);
    (model, stats)
}

/// Trains an existing model in place (continue-training / warm starts).
pub fn train_into(
    model: &mut dyn KgeModel,
    store: &TripleStore,
    config: &TrainConfig,
) -> TrainStats {
    let reciprocal = model.reciprocal();
    let num_relations = model.num_relations() as u32;
    let mut triples: Vec<Triple> = store.triples().to_vec();
    if reciprocal {
        let inverses: Vec<Triple> = triples
            .iter()
            .map(|t| t.inverted_as((t.relation.0 + num_relations).into()))
            .collect();
        triples.extend(inverses);
    }
    let corrupt_side = if reciprocal {
        CorruptSide::Object
    } else {
        CorruptSide::Both
    };
    let filter = if config.filter_negatives {
        Some(store)
    } else {
        None
    };

    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(1));
    let sampler = NegativeSampler::new(store.num_entities());
    let mut optimizer = config.optimizer.build(model.params());
    let mut grads = Gradients::new();
    let mut epoch_losses = Vec::with_capacity(config.epochs);

    for epoch in 0..config.epochs {
        let epoch_start = std::time::Instant::now();
        let mut sampling = std::time::Duration::ZERO;
        triples.shuffle(&mut rng);
        let mut loss_sum = 0.0f64;
        let mut pairs = 0u64;
        for batch in triples.chunks(config.batch_size.max(1)) {
            grads.clear();
            for &pos in batch {
                let f_pos = model.score(pos);
                // Negatives are drawn before scoring (rather than interleaved)
                // so the sampling cost is measurable on its own; the RNG
                // stream is identical either way.
                let sample_start = std::time::Instant::now();
                let neg_triples: Vec<Triple> = (0..config.negatives)
                    .map(|_| sampler.corrupt(pos, corrupt_side, filter, &mut rng))
                    .collect();
                sampling += sample_start.elapsed();
                let negs: Vec<(Triple, f32)> = neg_triples
                    .into_iter()
                    .map(|neg| (neg, model.score(neg)))
                    .collect();
                let weights = negative_weights(&negs, config.adversarial_temperature);
                for (&(neg, f_neg), &w) in negs.iter().zip(&weights) {
                    let pair = config.loss.pair(f_pos, f_neg);
                    loss_sum += (w * pair.value) as f64;
                    pairs += 1;
                    if pair.d_pos != 0.0 {
                        model.backward(pos, w * pair.d_pos, &mut grads);
                    }
                    if pair.d_neg != 0.0 {
                        model.backward(neg, w * pair.d_neg, &mut grads);
                    }
                }
            }
            if grads.is_empty() {
                continue;
            }
            let touched: Vec<usize> = if config.normalize_entities {
                grads
                    .iter()
                    .filter(|(table, _, _)| *table == ENTITY_TABLE)
                    .map(|(_, row, _)| row)
                    .collect()
            } else {
                Vec::new()
            };
            optimizer.step(model.params_mut(), &grads);
            if config.normalize_entities {
                let table = model.params_mut().table_mut(ENTITY_TABLE);
                for row in touched {
                    crate::math::normalize_l2(table.row_mut(row));
                }
            }
        }
        let mean_loss = if pairs == 0 {
            0.0
        } else {
            loss_sum / pairs as f64
        };
        epoch_losses.push(mean_loss);

        let wall = epoch_start.elapsed();
        kgfd_obs::histogram("embed.train.epoch_duration_us").record(wall.as_micros() as f64);
        let epoch_field = vec![kgfd_obs::Field::new("epoch", epoch)];
        kgfd_obs::metric("embed.train.epoch_loss", mean_loss, epoch_field.clone());
        if wall > std::time::Duration::ZERO {
            kgfd_obs::metric(
                "embed.train.examples_per_sec",
                triples.len() as f64 / wall.as_secs_f64(),
                epoch_field.clone(),
            );
        }
        kgfd_obs::metric(
            "embed.train.negative_sampling_us",
            sampling.as_micros() as f64,
            epoch_field,
        );
    }
    kgfd_obs::counter("embed.train.epochs").add(config.epochs as u64);
    TrainStats { epoch_losses }
}

/// Per-negative loss weights: uniform 1.0, or `k · softmax(α · f(neg))`
/// under self-adversarial sampling (scaled by `k` so the total gradient
/// magnitude stays comparable to the uniform setting).
fn negative_weights(negs: &[(Triple, f32)], temperature: Option<f32>) -> Vec<f32> {
    match temperature {
        None => vec![1.0; negs.len()],
        Some(alpha) => {
            let max = negs
                .iter()
                .map(|&(_, f)| alpha * f)
                .fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = negs.iter().map(|&(_, f)| (alpha * f - max).exp()).collect();
            let sum: f32 = exps.iter().sum();
            let k = negs.len() as f32;
            exps.into_iter().map(|e| k * e / sum).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgfd_datasets::toy_biomedical;

    fn quick_config() -> TrainConfig {
        TrainConfig {
            dim: 16,
            epochs: 15,
            batch_size: 32,
            negatives: 4,
            seed: 7,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn loss_decreases_on_toy_graph() {
        let data = toy_biomedical();
        let (_, stats) = train(ModelKind::TransE, &data.train, &quick_config());
        let first = stats.epoch_losses[0];
        let last = stats.final_loss();
        assert!(
            last < first * 0.8,
            "loss should drop: first={first}, last={last}"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let data = toy_biomedical();
        let (a, sa) = train(ModelKind::DistMult, &data.train, &quick_config());
        let (b, sb) = train(ModelKind::DistMult, &data.train, &quick_config());
        assert_eq!(sa.epoch_losses, sb.epoch_losses);
        assert_eq!(
            a.params().table(0).data(),
            b.params().table(0).data(),
            "same seed must give identical parameters"
        );
    }

    #[test]
    fn different_seeds_give_different_models() {
        let data = toy_biomedical();
        let mut other = quick_config();
        other.seed = 8;
        let (a, _) = train(ModelKind::DistMult, &data.train, &quick_config());
        let (b, _) = train(ModelKind::DistMult, &data.train, &other);
        assert_ne!(a.params().table(0).data(), b.params().table(0).data());
    }

    #[test]
    fn trained_model_prefers_true_triples() {
        let data = toy_biomedical();
        let mut config = quick_config();
        config.epochs = 40;
        let (model, _) = train(ModelKind::ComplEx, &data.train, &config);
        // Average score of training triples must exceed that of random
        // corruptions by a clear margin.
        let mut rng = StdRng::seed_from_u64(99);
        let sampler = NegativeSampler::new(data.train.num_entities());
        let mut pos_sum = 0.0;
        let mut neg_sum = 0.0;
        for &t in data.train.triples() {
            pos_sum += model.score(t);
            neg_sum +=
                model.score(sampler.corrupt(t, CorruptSide::Both, Some(&data.train), &mut rng));
        }
        assert!(
            pos_sum > neg_sum,
            "positives {pos_sum} should outscore negatives {neg_sum}"
        );
    }

    #[test]
    fn reciprocal_model_trains_inverse_rows() {
        let data = toy_biomedical();
        let mut config = quick_config();
        config.dim = 12;
        config.epochs = 2;
        let k = data.train.num_relations();
        let (model, _) = train(ModelKind::ConvE, &data.train, &config);
        // A fresh ConvE has identical init given the seed; after training the
        // reciprocal rows must have moved.
        let fresh = new_model(
            ModelKind::ConvE,
            data.train.num_entities(),
            k,
            12,
            config.seed,
        );
        let trained_recip = model.params().table(1).row(k); // first reciprocal row
        let fresh_recip = fresh.params().table(1).row(k);
        assert_ne!(trained_recip, fresh_recip);
    }

    #[test]
    fn normalization_keeps_entities_on_unit_sphere() {
        let data = toy_biomedical();
        let mut config = quick_config();
        config.normalize_entities = true;
        config.epochs = 3;
        let (model, _) = train(ModelKind::TransE, &data.train, &config);
        // Entities touched by training end up normalized.
        let table = model.params().table(ENTITY_TABLE);
        let mut normalized = 0;
        for e in 0..table.rows() {
            let n = crate::math::norm2_sq(table.row(e)).sqrt();
            if (n - 1.0).abs() < 1e-3 {
                normalized += 1;
            }
        }
        assert!(
            normalized > table.rows() / 2,
            "{normalized} rows normalized"
        );
    }

    #[test]
    fn adversarial_weights_emphasize_hard_negatives() {
        let negs = vec![
            (Triple::new(0u32, 0u32, 1u32), 5.0f32),
            (Triple::new(0u32, 0u32, 2u32), -5.0),
        ];
        let w = negative_weights(&negs, Some(1.0));
        assert!(w[0] > 1.9, "high-scoring negative dominates: {w:?}");
        assert!(w[1] < 0.1);
        assert!(
            (w.iter().sum::<f32>() - 2.0).abs() < 1e-5,
            "weights sum to k"
        );
        let uniform = negative_weights(&negs, None);
        assert_eq!(uniform, vec![1.0, 1.0]);
    }

    #[test]
    fn adversarial_training_still_learns() {
        let data = toy_biomedical();
        let mut config = quick_config();
        config.adversarial_temperature = Some(1.0);
        config.epochs = 25;
        let (_, stats) = train(ModelKind::RotatE, &data.train, &config);
        assert!(
            stats.final_loss() < stats.epoch_losses[0],
            "loss should decrease: {:?}",
            stats.epoch_losses
        );
    }

    use rand::rngs::StdRng;
    use rand::SeedableRng;
}
