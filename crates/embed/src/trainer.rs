//! The mini-batch training loop, data-parallel and deterministic.
//!
//! Deterministic given a seed: triple order, negative samples, and
//! initialization all derive from `TrainConfig::seed`, so two runs of the
//! same configuration produce bit-identical models — a property the
//! integration tests assert.
//!
//! # Determinism contract (thread-count invariance)
//!
//! Training is additionally invariant under [`TrainConfig::threads`]: for a
//! fixed seed, `threads = 1` and `threads = N` produce bit-identical
//! embeddings and epoch losses. Three rules make this hold exactly, not
//! approximately:
//!
//! 1. **Fixed sharding.** Every mini-batch is cut into logical shards of
//!    [`SHARD_SIZE`] consecutive positives. The shard structure depends only
//!    on `batch_size` and the data — never on the thread count. Threads are
//!    merely the pool that consumes shards.
//! 2. **Index-derived RNG streams.** Each shard's negative sampling draws
//!    from its own generator, derived by [`negative_stream`] from
//!    `(seed, epoch, shard index)`. Which OS thread processes a shard is
//!    therefore irrelevant to what it samples.
//! 3. **Fixed reduction order.** Each shard accumulates gradients and loss
//!    into its own buffer; buffers are reduced into the batch gradient in
//!    ascending shard order on one thread. Floating-point accumulation
//!    order is thus a pure function of the shard structure.
//!
//! The differential suite in `tests/determinism.rs` locks the contract in.

use crate::{
    new_model, CorruptSide, Gradients, KgeModel, LossKind, ModelKind, NegativeSampler, Optimizer,
    OptimizerKind, ENTITY_TABLE,
};
use kgfd_kg::{KgError, Triple, TripleStore};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Positives per logical shard. A fixed constant — the shard structure (and
/// with it the RNG stream assignment and gradient reduction order) must not
/// depend on [`TrainConfig::threads`], or determinism across thread counts
/// would break.
pub const SHARD_SIZE: usize = 16;

/// Hyperparameters of one training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Entity-embedding width.
    pub dim: usize,
    /// Number of passes over the training triples.
    pub epochs: usize,
    /// Positives per optimizer step. Must be at least 1
    /// (see [`TrainConfig::validate`]).
    pub batch_size: usize,
    /// Negative samples per positive.
    pub negatives: usize,
    /// Loss function.
    pub loss: LossKind,
    /// Optimizer (the paper uses Adam throughout).
    pub optimizer: OptimizerKind,
    /// Filter accidentally-true negatives against the training graph.
    pub filter_negatives: bool,
    /// Re-normalize entity embeddings to unit L2 after each step (the TransE
    /// original's constraint; harmless but unnecessary elsewhere).
    pub normalize_entities: bool,
    /// Self-adversarial negative weighting (Sun et al. 2019): weight each
    /// negative by `softmax(α · f(neg))` across its positive's negatives, so
    /// training focuses on the hardest corruptions. `None` = uniform.
    pub adversarial_temperature: Option<f32>,
    /// Seed controlling init, shuffling, and negative sampling.
    pub seed: u64,
    /// Worker threads each mini-batch is split across. Must be at least 1.
    /// Any value yields bit-identical results for a given seed (see the
    /// module docs); more threads only buy wall-clock speed.
    pub threads: usize,
}

/// A [`TrainConfig`] that cannot be trained with, caught by
/// [`TrainConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainConfigError {
    /// `batch_size` was 0 — there would be no optimizer steps to take.
    ZeroBatchSize,
    /// `threads` was 0 — no worker could process a shard.
    ZeroThreads,
    /// `dim` was 0 — every model would be an empty embedding.
    ZeroDim,
}

impl std::fmt::Display for TrainConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainConfigError::ZeroBatchSize => f.write_str("batch_size must be at least 1"),
            TrainConfigError::ZeroThreads => f.write_str("threads must be at least 1"),
            TrainConfigError::ZeroDim => f.write_str("dim must be at least 1"),
        }
    }
}

impl std::error::Error for TrainConfigError {}

impl TrainConfig {
    /// The default worker count: the `KGFD_THREADS` environment variable
    /// when set to a positive integer (the CI matrix pins it to exercise
    /// both the sequential and parallel paths), otherwise the machine's
    /// available parallelism capped at 8.
    pub fn default_threads() -> usize {
        if let Ok(raw) = std::env::var("KGFD_THREADS") {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|p| p.get().min(8))
            .unwrap_or(1)
    }

    /// Checks the configuration for values training cannot honour.
    ///
    /// `batch_size = 0` used to be silently clamped to 1 inside the loop;
    /// it is now rejected here so a misconfiguration surfaces as an error
    /// instead of training with a different effective hyperparameter.
    pub fn validate(&self) -> Result<(), TrainConfigError> {
        if self.batch_size == 0 {
            return Err(TrainConfigError::ZeroBatchSize);
        }
        if self.threads == 0 {
            return Err(TrainConfigError::ZeroThreads);
        }
        if self.dim == 0 {
            return Err(TrainConfigError::ZeroDim);
        }
        Ok(())
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            dim: 32,
            epochs: 30,
            batch_size: 128,
            negatives: 4,
            loss: LossKind::MarginRanking { margin: 1.0 },
            optimizer: OptimizerKind::Adam { lr: 0.01 },
            filter_negatives: true,
            normalize_entities: false,
            adversarial_temperature: None,
            seed: 0,
            threads: TrainConfig::default_threads(),
        }
    }
}

/// Per-epoch training diagnostics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainStats {
    /// Mean per-pair loss of each epoch.
    pub epoch_losses: Vec<f64>,
}

impl TrainStats {
    /// Loss of the final epoch (`NaN` if no epochs ran).
    pub fn final_loss(&self) -> f64 {
        self.epoch_losses.last().copied().unwrap_or(f64::NAN)
    }
}

/// The negative-sampling generator of one logical shard.
///
/// Derived purely from `(seed, epoch, shard)` — never from the thread count
/// or any runtime state — so the stream a shard draws is a static property
/// of the run configuration. Distinct coordinates land on statistically
/// independent streams (two rounds of SplitMix64 mixing feed the xoshiro
/// state expansion).
pub fn negative_stream(seed: u64, epoch: u64, shard: u64) -> StdRng {
    let mut x = seed ^ splitmix64(epoch.wrapping_add(0x517C_C1B7_2722_0A95));
    x = splitmix64(x).wrapping_add(shard.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    StdRng::seed_from_u64(splitmix64(x))
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Trains a fresh model of `kind` on `store`.
///
/// Models flagged [`KgeModel::reciprocal`] (ConvE) are trained on the
/// reciprocal-augmented triple set `(s, r, o) ∪ (o, r + K, s)` with
/// object-side corruption only, matching LibKGE's ConvE recipe; all others
/// use Bordes-style both-side corruption.
///
/// # Panics
///
/// Panics if `config` fails [`TrainConfig::validate`] (e.g. a zero
/// `batch_size`). Callers building configs from user input should validate
/// first and surface the error.
pub fn train(
    kind: ModelKind,
    store: &TripleStore,
    config: &TrainConfig,
) -> (Box<dyn KgeModel>, TrainStats) {
    let mut model = new_model(
        kind,
        store.num_entities(),
        store.num_relations(),
        config.dim,
        config.seed,
    );
    let stats = train_into(model.as_mut(), store, config);
    (model, stats)
}

/// Per-shard accumulation buffers; workers never share these, and the main
/// thread reduces them in ascending shard order.
struct ShardOutput {
    grads: Gradients,
    loss_sum: f64,
    pairs: u64,
    sampling: Duration,
}

impl ShardOutput {
    fn new() -> Self {
        ShardOutput {
            grads: Gradients::new(),
            loss_sum: 0.0,
            pairs: 0,
            sampling: Duration::ZERO,
        }
    }

    fn clear(&mut self) {
        self.grads.clear();
        self.loss_sum = 0.0;
        self.pairs = 0;
        self.sampling = Duration::ZERO;
    }
}

/// Scores and backpropagates one shard's positives against the frozen
/// per-batch model snapshot, accumulating into `out`.
#[allow(clippy::too_many_arguments)]
fn process_shard(
    model: &dyn KgeModel,
    shard: &[Triple],
    mut rng: StdRng,
    corrupt_side: CorruptSide,
    filter: Option<&TripleStore>,
    sampler: &NegativeSampler,
    config: &TrainConfig,
    out: &mut ShardOutput,
) {
    for &pos in shard {
        let f_pos = model.score(pos);
        // Negatives are drawn before scoring (rather than interleaved)
        // so the sampling cost is measurable on its own; the RNG
        // stream is identical either way.
        let sample_start = Instant::now();
        let neg_triples: Vec<Triple> = (0..config.negatives)
            .map(|_| sampler.corrupt(pos, corrupt_side, filter, &mut rng))
            .collect();
        out.sampling += sample_start.elapsed();
        let negs: Vec<(Triple, f32)> = neg_triples
            .into_iter()
            .map(|neg| (neg, model.score(neg)))
            .collect();
        let weights = negative_weights(&negs, config.adversarial_temperature);
        for (&(neg, f_neg), &w) in negs.iter().zip(&weights) {
            let pair = config.loss.pair(f_pos, f_neg);
            out.loss_sum += (w * pair.value) as f64;
            out.pairs += 1;
            if pair.d_pos != 0.0 {
                model.backward(pos, w * pair.d_pos, &mut out.grads);
            }
            if pair.d_neg != 0.0 {
                model.backward(neg, w * pair.d_neg, &mut out.grads);
            }
        }
    }
}

/// Trains an existing model in place (continue-training / warm starts).
///
/// # Panics
///
/// Panics if `config` fails [`TrainConfig::validate`]; see [`train`].
pub fn train_into(
    model: &mut dyn KgeModel,
    store: &TripleStore,
    config: &TrainConfig,
) -> TrainStats {
    if let Err(e) = config.validate() {
        panic!("invalid TrainConfig: {e}");
    }
    let mut core = TrainerCore::new(model, store, config);
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(1));
    let mut optimizer = config.optimizer.build(model.params());
    let mut epoch_losses = Vec::with_capacity(config.epochs);
    for epoch in 0..config.epochs {
        epoch_losses.push(core.run_epoch(model, optimizer.as_mut(), &mut rng, epoch));
    }
    TrainStats { epoch_losses }
}

/// The reusable inside of the training loop: the augmented triple list
/// (whose order carries over between epochs — each epoch shuffles the
/// previous epoch's order), the negative sampler, and the per-shard scratch
/// buffers. One [`TrainerCore::run_epoch`] call is exactly one epoch of the
/// historical `train_into` loop; `train_into`, [`TrainSession`], and early
/// stopping all drive this same code path, which is what makes their
/// results mutually bit-identical.
struct TrainerCore<'a> {
    store: &'a TripleStore,
    config: TrainConfig,
    /// Training triples (reciprocal-augmented for ConvE-style models),
    /// shuffled in place at the top of every epoch.
    triples: Vec<Triple>,
    corrupt_side: CorruptSide,
    sampler: NegativeSampler,
    /// Shard buffers and the batch accumulator outlive the epoch loop so
    /// the HashMap allocations are reused across batches.
    outputs: Vec<ShardOutput>,
    grads: Gradients,
}

impl<'a> TrainerCore<'a> {
    fn new(model: &dyn KgeModel, store: &'a TripleStore, config: &TrainConfig) -> Self {
        let reciprocal = model.reciprocal();
        let num_relations = model.num_relations() as u32;
        let mut triples: Vec<Triple> = store.triples().to_vec();
        if reciprocal {
            let inverses: Vec<Triple> = triples
                .iter()
                .map(|t| t.inverted_as((t.relation.0 + num_relations).into()))
                .collect();
            triples.extend(inverses);
        }
        let corrupt_side = if reciprocal {
            CorruptSide::Object
        } else {
            CorruptSide::Both
        };
        TrainerCore {
            store,
            config: config.clone(),
            triples,
            corrupt_side,
            sampler: NegativeSampler::new(store.num_entities()),
            outputs: Vec::new(),
            grads: Gradients::new(),
        }
    }

    /// Runs epoch number `epoch` (the index keys the shard RNG streams, so
    /// it must be the *absolute* epoch — a resumed session continues the
    /// numbering where the checkpoint left off).
    fn run_epoch(
        &mut self,
        model: &mut dyn KgeModel,
        optimizer: &mut dyn Optimizer,
        rng: &mut StdRng,
        epoch: usize,
    ) -> f64 {
        let config = &self.config;
        let corrupt_side = self.corrupt_side;
        let sampler = &self.sampler;
        let triples = &mut self.triples;
        let outputs = &mut self.outputs;
        let grads = &mut self.grads;
        let filter = if config.filter_negatives {
            Some(self.store)
        } else {
            None
        };
        let threads = config.threads;
        // Trace-only (no event, no histogram): the per-epoch metrics below
        // already cover the event stream; this span exists to parent the
        // batch/shard tree in trace exports.
        let _epoch_span = kgfd_obs::span_traced!("embed.train.epoch", epoch = epoch);
        let epoch_start = Instant::now();
        triples.shuffle(rng);
        let mut loss_sum = 0.0f64;
        let mut pairs = 0u64;
        let mut worker_sampling = vec![Duration::ZERO; threads];
        // Shards are numbered consecutively across the epoch; the counter
        // (not the worker id) keys each shard's RNG stream.
        let mut next_stream = 0u64;
        for batch in triples.chunks(config.batch_size) {
            let batch_span = kgfd_obs::span_traced!("embed.train.batch");
            let shards: Vec<&[Triple]> = batch.chunks(SHARD_SIZE).collect();
            while outputs.len() < shards.len() {
                outputs.push(ShardOutput::new());
            }
            let outs = &mut outputs[..shards.len()];
            for out in outs.iter_mut() {
                out.clear();
            }
            let first_stream = next_stream;
            next_stream += shards.len() as u64;

            // The pool never exceeds the shard count (an idle worker is pure
            // spawn cost); its size only affects wall-clock time, never
            // results.
            let pool = threads.min(shards.len());
            let model_view: &dyn KgeModel = &*model;
            // Contiguous shard groups per worker; group membership only
            // affects which thread runs a shard, never its stream or the
            // reduction order below.
            let per_worker = shards.len().div_ceil(pool);
            if pool <= 1 {
                for (i, (shard, out)) in shards.iter().zip(outs.iter_mut()).enumerate() {
                    let stream =
                        negative_stream(config.seed, epoch as u64, first_stream + i as u64);
                    let shard_span = kgfd_obs::span_traced!("embed.train.shard", shard = i);
                    let shard_start_us = kgfd_obs::clock_us();
                    process_shard(
                        model_view,
                        shard,
                        stream,
                        corrupt_side,
                        filter,
                        sampler,
                        config,
                        out,
                    );
                    kgfd_obs::record_manual(
                        "embed.train.negative_sampling",
                        Some(shard_span.id()),
                        shard_start_us,
                        out.sampling.as_micros() as u64,
                    );
                }
            } else {
                let sampler_ref = &sampler;
                // Workers attach their shard spans under this batch's span
                // explicitly — the thread-local stack does not cross the
                // dispatch boundary.
                let batch_handle = batch_span.handle();
                kgfd_pool::scope(|scope| {
                    for (w, (shard_group, out_group)) in shards
                        .chunks(per_worker)
                        .zip(outs.chunks_mut(per_worker))
                        .enumerate()
                    {
                        scope.spawn(move || {
                            for (i, (shard, out)) in
                                shard_group.iter().zip(out_group.iter_mut()).enumerate()
                            {
                                let shard_index = w * per_worker + i;
                                let stream = negative_stream(
                                    config.seed,
                                    epoch as u64,
                                    first_stream + shard_index as u64,
                                );
                                let shard_span = kgfd_obs::Span::child_for_thread_with_fields(
                                    batch_handle,
                                    "embed.train.shard",
                                    vec![kgfd_obs::Field::new("shard", shard_index)],
                                );
                                let shard_start_us = kgfd_obs::clock_us();
                                process_shard(
                                    model_view,
                                    shard,
                                    stream,
                                    corrupt_side,
                                    filter,
                                    sampler_ref,
                                    config,
                                    out,
                                );
                                kgfd_obs::record_manual(
                                    "embed.train.negative_sampling",
                                    Some(shard_span.id()),
                                    shard_start_us,
                                    out.sampling.as_micros() as u64,
                                );
                            }
                        });
                    }
                });
            }
            for (w, out_group) in outs.chunks(per_worker).enumerate() {
                for out in out_group {
                    worker_sampling[w] += out.sampling;
                }
            }

            // Reduce in ascending shard order — the fixed association that
            // keeps float sums identical for every thread count.
            grads.clear();
            for out in outs.iter() {
                grads.merge_from(&out.grads);
                loss_sum += out.loss_sum;
                pairs += out.pairs;
            }
            if grads.is_empty() {
                continue;
            }
            let touched: Vec<usize> = if config.normalize_entities {
                grads
                    .iter()
                    .filter(|(table, _, _)| *table == ENTITY_TABLE)
                    .map(|(_, row, _)| row)
                    .collect()
            } else {
                Vec::new()
            };
            optimizer.step(model.params_mut(), grads);
            if config.normalize_entities {
                let table = model.params_mut().table_mut(ENTITY_TABLE);
                for row in touched {
                    crate::math::normalize_l2(table.row_mut(row));
                }
            }
        }
        let mean_loss = if pairs == 0 {
            0.0
        } else {
            loss_sum / pairs as f64
        };

        let sampling: Duration = worker_sampling.iter().sum();
        let wall = epoch_start.elapsed();
        kgfd_obs::histogram("embed.train.epoch_duration_us").record(wall.as_micros() as f64);
        for slot in &worker_sampling {
            // One observation per worker slot per epoch: the histogram's
            // spread shows how evenly sampling cost lands across workers.
            kgfd_obs::histogram("embed.train.worker_negative_sampling_us")
                .record(slot.as_micros() as f64);
        }
        let epoch_fields = vec![
            kgfd_obs::Field::new("epoch", epoch),
            kgfd_obs::Field::new("threads", threads),
        ];
        kgfd_obs::metric("embed.train.epoch_loss", mean_loss, epoch_fields.clone());
        // Mirror the loss into a registry gauge so the live `/metrics`
        // endpoint exposes it between epochs (events only reach sinks).
        kgfd_obs::gauge("embed.train.epoch_loss").set(mean_loss);
        kgfd_obs::gauge("embed.train.epoch").set(epoch as f64);
        if wall > Duration::ZERO {
            kgfd_obs::metric(
                "embed.train.examples_per_sec",
                triples.len() as f64 / wall.as_secs_f64(),
                epoch_fields.clone(),
            );
        }
        kgfd_obs::metric(
            "embed.train.negative_sampling_us",
            sampling.as_micros() as f64,
            epoch_fields,
        );
        kgfd_obs::counter("embed.train.epochs").add(1);
        mean_loss
    }
}

/// A cooperative stop request for long training runs — the "SIGTERM" story
/// of a dependency-free binary. The flag can be raised from any thread (or
/// armed with a wall-clock deadline up front); [`TrainSession::run`] checks
/// it at every epoch boundary, writes a final checkpoint, and returns
/// [`TrainOutcome::Interrupted`] instead of training on. Signal handlers
/// proper would need `libc`, which the offline build intentionally avoids.
#[derive(Clone, Debug, Default)]
pub struct StopSignal {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl StopSignal {
    /// A signal nobody has raised yet.
    pub fn new() -> Self {
        StopSignal::default()
    }

    /// A signal that trips automatically once `budget` of wall-clock time
    /// has elapsed (measured from this call).
    pub fn with_deadline(budget: Duration) -> Self {
        StopSignal {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Instant::now().checked_add(budget),
        }
    }

    /// Raises the stop flag; every clone of this signal observes it.
    pub fn request_stop(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// `true` once the flag is raised or the deadline has passed.
    pub fn should_stop(&self) -> bool {
        self.flag.load(Ordering::SeqCst) || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// How a [`TrainSession::run`] call ended.
#[derive(Debug)]
pub enum TrainOutcome {
    /// All configured epochs ran.
    Completed,
    /// A [`StopSignal`] tripped at an epoch boundary. When a checkpoint
    /// policy was in effect the session's state was checkpointed at the
    /// boundary, so a later `--resume` continues bit-identically.
    Interrupted {
        /// Epochs completed before the stop was honoured.
        epochs_done: usize,
        /// The checkpoint written at the stop boundary, if a policy was set.
        checkpoint: Option<std::path::PathBuf>,
    },
}

/// A resumable training run: the model, optimizer, and epoch-shuffle RNG as
/// one unit of state that can be advanced epoch by epoch, snapshotted into
/// a [`crate::TrainCheckpoint`], and — after a crash — reconstructed at the
/// exact epoch boundary it last checkpointed.
///
/// Driving this session to completion is bit-identical to a single
/// [`train`] call with the same configuration (both run [`TrainerCore`]),
/// and resuming from any epoch boundary is bit-identical to never having
/// stopped — the contract the checkpoint differential suite enforces.
pub struct TrainSession<'a> {
    core: TrainerCore<'a>,
    model: Box<dyn KgeModel>,
    optimizer: Box<dyn Optimizer>,
    rng: StdRng,
    epochs_done: usize,
    epoch_losses: Vec<f64>,
}

impl<'a> TrainSession<'a> {
    /// Starts a fresh session (epoch 0, seeded init) for `kind` on `store`.
    pub fn new(
        kind: ModelKind,
        store: &'a TripleStore,
        config: &TrainConfig,
    ) -> Result<Self, KgError> {
        config
            .validate()
            .map_err(|e| KgError::Invariant(format!("invalid TrainConfig: {e}")))?;
        let model = new_model(
            kind,
            store.num_entities(),
            store.num_relations(),
            config.dim,
            config.seed,
        );
        Self::assemble(model, store, config, None, 0, Vec::new())
    }

    /// Reconstructs a session from checkpointed state: a trained-so-far
    /// model, its optimizer state, and the number of epochs already done.
    /// The epoch-shuffle stream is restored by replaying the shuffles of the
    /// completed epochs (the triple order entering epoch *k* is the
    /// cumulative permutation of epochs `0..k`, so both the order and the
    /// RNG position fall out of the replay); `expected_rng_state` — the
    /// stream position the checkpoint recorded — is then cross-checked so
    /// any drift in the RNG or shuffle implementation is caught loudly
    /// instead of silently diverging from the uninterrupted run.
    pub fn resume(
        model: Box<dyn KgeModel>,
        store: &'a TripleStore,
        config: &TrainConfig,
        optimizer_state: crate::OptimizerState,
        epochs_done: usize,
        epoch_losses: Vec<f64>,
        expected_rng_state: [u64; 4],
    ) -> Result<Self, KgError> {
        config
            .validate()
            .map_err(|e| KgError::Invariant(format!("invalid TrainConfig: {e}")))?;
        if model.num_entities() != store.num_entities()
            || model.num_relations() != store.num_relations()
        {
            return Err(KgError::Corrupt(format!(
                "checkpointed model shape ({} entities, {} relations) does not match \
                 the training graph ({} entities, {} relations)",
                model.num_entities(),
                model.num_relations(),
                store.num_entities(),
                store.num_relations()
            )));
        }
        if epochs_done > config.epochs {
            return Err(KgError::Corrupt(format!(
                "checkpoint claims {epochs_done} epochs done but the run only has {}",
                config.epochs
            )));
        }
        let session = Self::assemble(
            model,
            store,
            config,
            Some(optimizer_state),
            epochs_done,
            epoch_losses,
        )?;
        if session.rng.state() != expected_rng_state {
            return Err(KgError::Corrupt(
                "replayed epoch-shuffle stream does not reach the checkpointed RNG \
                 position — the RNG or shuffle implementation has changed since the \
                 checkpoint was written"
                    .into(),
            ));
        }
        Ok(session)
    }

    fn assemble(
        model: Box<dyn KgeModel>,
        store: &'a TripleStore,
        config: &TrainConfig,
        optimizer_state: Option<crate::OptimizerState>,
        epochs_done: usize,
        epoch_losses: Vec<f64>,
    ) -> Result<Self, KgError> {
        let mut core = TrainerCore::new(model.as_ref(), store, config);
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(1));
        // Replay the completed epochs' shuffles so the triple order and the
        // stream position both land exactly at the resume boundary. O(k·n)
        // swaps — noise next to a single epoch of training.
        for _ in 0..epochs_done {
            core.triples.shuffle(&mut rng);
        }
        let optimizer = match optimizer_state {
            None => config.optimizer.build(model.params()),
            Some(state) => config.optimizer.build_with_state(model.params(), state)?,
        };
        Ok(TrainSession {
            core,
            model,
            optimizer,
            rng,
            epochs_done,
            epoch_losses,
        })
    }

    /// Runs the next epoch and returns its mean pair loss.
    pub fn run_epoch(&mut self) -> f64 {
        let loss = self.core.run_epoch(
            self.model.as_mut(),
            self.optimizer.as_mut(),
            &mut self.rng,
            self.epochs_done,
        );
        self.epochs_done += 1;
        self.epoch_losses.push(loss);
        loss
    }

    /// Epochs completed so far (across resumes).
    pub fn epochs_done(&self) -> usize {
        self.epochs_done
    }

    /// `true` once all configured epochs have run.
    pub fn is_complete(&self) -> bool {
        self.epochs_done >= self.core.config.epochs
    }

    /// The training configuration this session runs under.
    pub fn config(&self) -> &TrainConfig {
        &self.core.config
    }

    /// The model as trained so far.
    pub fn model(&self) -> &dyn KgeModel {
        self.model.as_ref()
    }

    /// The per-epoch losses so far (including pre-resume epochs).
    pub fn epoch_losses(&self) -> &[f64] {
        &self.epoch_losses
    }

    /// The optimizer's current state snapshot.
    pub fn optimizer_state(&self) -> crate::OptimizerState {
        self.optimizer.export_state()
    }

    /// The epoch-shuffle RNG's current stream position.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Consumes the session, yielding the trained model and its stats.
    pub fn into_model(self) -> (Box<dyn KgeModel>, TrainStats) {
        (
            self.model,
            TrainStats {
                epoch_losses: self.epoch_losses,
            },
        )
    }

    /// Swaps in externally chosen parameters (early stopping keeps the best
    /// validation checkpoint, not the last epoch's).
    pub fn set_params(&mut self, params: crate::Parameters) {
        *self.model.params_mut() = params;
    }
}

/// Per-negative loss weights: uniform 1.0, or `k · softmax(α · f(neg))`
/// under self-adversarial sampling (scaled by `k` so the total gradient
/// magnitude stays comparable to the uniform setting).
fn negative_weights(negs: &[(Triple, f32)], temperature: Option<f32>) -> Vec<f32> {
    match temperature {
        None => vec![1.0; negs.len()],
        Some(alpha) => {
            let max = negs
                .iter()
                .map(|&(_, f)| alpha * f)
                .fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = negs.iter().map(|&(_, f)| (alpha * f - max).exp()).collect();
            let sum: f32 = exps.iter().sum();
            let k = negs.len() as f32;
            exps.into_iter().map(|e| k * e / sum).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgfd_datasets::toy_biomedical;

    fn quick_config() -> TrainConfig {
        TrainConfig {
            dim: 16,
            epochs: 15,
            batch_size: 32,
            negatives: 4,
            seed: 7,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn loss_decreases_on_toy_graph() {
        let data = toy_biomedical();
        let (_, stats) = train(ModelKind::TransE, &data.train, &quick_config());
        let first = stats.epoch_losses[0];
        let last = stats.final_loss();
        assert!(
            last < first * 0.8,
            "loss should drop: first={first}, last={last}"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let data = toy_biomedical();
        let (a, sa) = train(ModelKind::DistMult, &data.train, &quick_config());
        let (b, sb) = train(ModelKind::DistMult, &data.train, &quick_config());
        assert_eq!(sa.epoch_losses, sb.epoch_losses);
        assert_eq!(
            a.params().table(0).data(),
            b.params().table(0).data(),
            "same seed must give identical parameters"
        );
    }

    #[test]
    fn thread_count_does_not_change_parameters() {
        let data = toy_biomedical();
        let mut sequential = quick_config();
        sequential.threads = 1;
        let mut parallel = quick_config();
        parallel.threads = 4;
        let (a, sa) = train(ModelKind::DistMult, &data.train, &sequential);
        let (b, sb) = train(ModelKind::DistMult, &data.train, &parallel);
        assert_eq!(
            sa.epoch_losses, sb.epoch_losses,
            "losses must be bitwise equal"
        );
        for t in 0..a.params().num_tables() {
            assert_eq!(
                a.params().table(t).data(),
                b.params().table(t).data(),
                "table {t} must be bitwise identical across thread counts"
            );
        }
    }

    #[test]
    fn different_seeds_give_different_models() {
        let data = toy_biomedical();
        let mut other = quick_config();
        other.seed = 8;
        let (a, _) = train(ModelKind::DistMult, &data.train, &quick_config());
        let (b, _) = train(ModelKind::DistMult, &data.train, &other);
        assert_ne!(a.params().table(0).data(), b.params().table(0).data());
    }

    #[test]
    fn zero_batch_size_is_rejected() {
        let config = TrainConfig {
            batch_size: 0,
            ..TrainConfig::default()
        };
        assert_eq!(config.validate(), Err(TrainConfigError::ZeroBatchSize));
        assert_eq!(
            config.validate().unwrap_err().to_string(),
            "batch_size must be at least 1"
        );
    }

    #[test]
    #[should_panic(expected = "invalid TrainConfig: batch_size must be at least 1")]
    fn training_with_zero_batch_size_panics() {
        let data = toy_biomedical();
        let config = TrainConfig {
            batch_size: 0,
            epochs: 1,
            ..TrainConfig::default()
        };
        let _ = train(ModelKind::TransE, &data.train, &config);
    }

    #[test]
    fn zero_threads_is_rejected() {
        let config = TrainConfig {
            threads: 0,
            ..TrainConfig::default()
        };
        assert_eq!(config.validate(), Err(TrainConfigError::ZeroThreads));
    }

    #[test]
    fn batch_size_one_boundary_trains() {
        // The smallest legal batch: one optimizer step per positive.
        let data = toy_biomedical();
        let config = TrainConfig {
            batch_size: 1,
            epochs: 2,
            dim: 8,
            seed: 5,
            ..TrainConfig::default()
        };
        assert_eq!(config.validate(), Ok(()));
        let (model, stats) = train(ModelKind::DistMult, &data.train, &config);
        assert_eq!(stats.epoch_losses.len(), 2);
        assert!(stats.final_loss().is_finite());
        assert!(model.score(data.train.triples()[0]).is_finite());
    }

    #[test]
    fn negative_streams_are_reproducible_and_distinct() {
        use rand::Rng;
        let mut a = negative_stream(3, 1, 5);
        let mut b = negative_stream(3, 1, 5);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = negative_stream(3, 1, 6);
        let mut d = negative_stream(3, 2, 5);
        let reference = negative_stream(3, 1, 5).next_u64();
        assert_ne!(reference, c.next_u64(), "shard index must matter");
        assert_ne!(reference, d.next_u64(), "epoch must matter");
    }

    #[test]
    fn trained_model_prefers_true_triples() {
        let data = toy_biomedical();
        let mut config = quick_config();
        config.epochs = 40;
        let (model, _) = train(ModelKind::ComplEx, &data.train, &config);
        // Average score of training triples must exceed that of random
        // corruptions by a clear margin.
        let mut rng = StdRng::seed_from_u64(99);
        let sampler = NegativeSampler::new(data.train.num_entities());
        let mut pos_sum = 0.0;
        let mut neg_sum = 0.0;
        for &t in data.train.triples() {
            pos_sum += model.score(t);
            neg_sum +=
                model.score(sampler.corrupt(t, CorruptSide::Both, Some(&data.train), &mut rng));
        }
        assert!(
            pos_sum > neg_sum,
            "positives {pos_sum} should outscore negatives {neg_sum}"
        );
    }

    #[test]
    fn reciprocal_model_trains_inverse_rows() {
        let data = toy_biomedical();
        let mut config = quick_config();
        config.dim = 12;
        config.epochs = 2;
        let k = data.train.num_relations();
        let (model, _) = train(ModelKind::ConvE, &data.train, &config);
        // A fresh ConvE has identical init given the seed; after training the
        // reciprocal rows must have moved.
        let fresh = new_model(
            ModelKind::ConvE,
            data.train.num_entities(),
            k,
            12,
            config.seed,
        );
        let trained_recip = model.params().table(1).row(k); // first reciprocal row
        let fresh_recip = fresh.params().table(1).row(k);
        assert_ne!(trained_recip, fresh_recip);
    }

    #[test]
    fn normalization_keeps_entities_on_unit_sphere() {
        let data = toy_biomedical();
        let mut config = quick_config();
        config.normalize_entities = true;
        config.epochs = 3;
        let (model, _) = train(ModelKind::TransE, &data.train, &config);
        // Entities touched by training end up normalized.
        let table = model.params().table(ENTITY_TABLE);
        let mut normalized = 0;
        for e in 0..table.rows() {
            let n = crate::math::norm2_sq(table.row(e)).sqrt();
            if (n - 1.0).abs() < 1e-3 {
                normalized += 1;
            }
        }
        assert!(
            normalized > table.rows() / 2,
            "{normalized} rows normalized"
        );
    }

    #[test]
    fn adversarial_weights_emphasize_hard_negatives() {
        let negs = vec![
            (Triple::new(0u32, 0u32, 1u32), 5.0f32),
            (Triple::new(0u32, 0u32, 2u32), -5.0),
        ];
        let w = negative_weights(&negs, Some(1.0));
        assert!(w[0] > 1.9, "high-scoring negative dominates: {w:?}");
        assert!(w[1] < 0.1);
        assert!(
            (w.iter().sum::<f32>() - 2.0).abs() < 1e-5,
            "weights sum to k"
        );
        let uniform = negative_weights(&negs, None);
        assert_eq!(uniform, vec![1.0, 1.0]);
    }

    #[test]
    fn adversarial_training_still_learns() {
        let data = toy_biomedical();
        let mut config = quick_config();
        config.adversarial_temperature = Some(1.0);
        config.epochs = 25;
        let (_, stats) = train(ModelKind::RotatE, &data.train, &config);
        assert!(
            stats.final_loss() < stats.epoch_losses[0],
            "loss should decrease: {:?}",
            stats.epoch_losses
        );
    }

    use rand::rngs::StdRng;
    use rand::SeedableRng;
}
