//! DistMult (Yang et al. 2014): `f(s, r, o) = sᵀ diag(r) o = Σᵢ sᵢ rᵢ oᵢ`.
//!
//! Gradients: `∂f/∂s = r ⊙ o`, `∂f/∂r = s ⊙ o`, `∂f/∂o = s ⊙ r`.
//! Both batched kernels reduce to one Hadamard product followed by `N` dots.

use crate::math::{dot, hadamard};
use crate::{
    init, Gradients, KgeModel, ModelConfig, ModelKind, ParamTable, Parameters, ENTITY_TABLE,
    RELATION_TABLE,
};
use kgfd_kg::{EntityId, RelationId, Triple};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The DistMult model.
pub struct DistMult {
    params: Parameters,
    num_entities: usize,
    num_relations: usize,
    dim: usize,
}

impl DistMult {
    /// Creates a Xavier-initialized DistMult model.
    pub fn new(num_entities: usize, num_relations: usize, dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut entities = ParamTable::zeros(num_entities, dim);
        let mut relations = ParamTable::zeros(num_relations, dim);
        init::xavier_uniform(&mut entities, &mut rng);
        init::xavier_uniform(&mut relations, &mut rng);
        DistMult {
            params: Parameters::new(vec![entities, relations]),
            num_entities,
            num_relations,
            dim,
        }
    }

    #[inline]
    fn entity(&self, e: EntityId) -> &[f32] {
        self.params.table(ENTITY_TABLE).row(e.index())
    }

    #[inline]
    fn relation(&self, r: RelationId) -> &[f32] {
        self.params.table(RELATION_TABLE).row(r.index())
    }

    fn dot_all_entities(&self, query: &[f32], out: &mut [f32]) {
        for (e, slot) in out.iter_mut().enumerate() {
            *slot = dot(query, self.entity(EntityId(e as u32)));
        }
    }
}

impl KgeModel for DistMult {
    fn kind(&self) -> ModelKind {
        ModelKind::DistMult
    }

    fn num_entities(&self) -> usize {
        self.num_entities
    }

    fn num_relations(&self) -> usize {
        self.num_relations
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn config(&self) -> ModelConfig {
        ModelConfig {
            kind: self.kind(),
            num_entities: self.num_entities(),
            num_relations: self.num_relations(),
            dim: self.dim(),
            distance: None,
        }
    }

    fn params(&self) -> &Parameters {
        &self.params
    }

    fn params_mut(&mut self) -> &mut Parameters {
        &mut self.params
    }

    fn score(&self, t: Triple) -> f32 {
        let s = self.entity(t.subject);
        let r = self.relation(t.relation);
        let o = self.entity(t.object);
        s.iter().zip(r).zip(o).map(|((a, b), c)| a * b * c).sum()
    }

    fn score_objects(&self, s: EntityId, r: RelationId, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.num_entities);
        let mut query = vec![0.0; self.dim];
        hadamard(&mut query, self.entity(s), self.relation(r));
        self.dot_all_entities(&query, out);
    }

    fn score_subjects(&self, r: RelationId, o: EntityId, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.num_entities);
        let mut query = vec![0.0; self.dim];
        hadamard(&mut query, self.relation(r), self.entity(o));
        self.dot_all_entities(&query, out);
    }

    fn score_objects_batch(&self, queries: &[(EntityId, RelationId)], out: &mut [f32]) {
        debug_assert_eq!(out.len(), queries.len() * self.num_entities);
        let mut qvecs = vec![0.0; queries.len() * self.dim];
        for (qvec, &(s, r)) in qvecs.chunks_mut(self.dim).zip(queries) {
            hadamard(qvec, self.entity(s), self.relation(r));
        }
        crate::batch::dot_sweep(self.params.table(ENTITY_TABLE), &qvecs, self.dim, None, out);
    }

    fn score_subjects_batch(&self, queries: &[(RelationId, EntityId)], out: &mut [f32]) {
        debug_assert_eq!(out.len(), queries.len() * self.num_entities);
        let mut qvecs = vec![0.0; queries.len() * self.dim];
        for (qvec, &(r, o)) in qvecs.chunks_mut(self.dim).zip(queries) {
            hadamard(qvec, self.relation(r), self.entity(o));
        }
        crate::batch::dot_sweep(self.params.table(ENTITY_TABLE), &qvecs, self.dim, None, out);
    }

    fn backward(&self, t: Triple, upstream: f32, grads: &mut Gradients) {
        let dim = self.dim;
        let mut buf = vec![0.0; dim];
        hadamard(&mut buf, self.relation(t.relation), self.entity(t.object));
        grads.add(ENTITY_TABLE, t.subject.index(), &buf, upstream);
        hadamard(&mut buf, self.entity(t.subject), self.entity(t.object));
        grads.add(RELATION_TABLE, t.relation.index(), &buf, upstream);
        hadamard(&mut buf, self.entity(t.subject), self.relation(t.relation));
        grads.add(ENTITY_TABLE, t.object.index(), &buf, upstream);
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-vs-score comparisons read better indexed
mod tests {
    use super::*;
    use crate::models::gradcheck::check_gradients;

    #[test]
    fn score_matches_hand_computation() {
        let mut m = DistMult::new(2, 1, 3, 0);
        m.params_mut()
            .table_mut(ENTITY_TABLE)
            .row_mut(0)
            .copy_from_slice(&[1.0, 2.0, 3.0]);
        m.params_mut()
            .table_mut(ENTITY_TABLE)
            .row_mut(1)
            .copy_from_slice(&[4.0, 5.0, 6.0]);
        m.params_mut()
            .table_mut(RELATION_TABLE)
            .row_mut(0)
            .copy_from_slice(&[1.0, 0.0, -1.0]);
        // 1·1·4 + 2·0·5 + 3·(−1)·6 = −14
        assert!((m.score(Triple::new(0u32, 0u32, 1u32)) + 14.0).abs() < 1e-6);
    }

    #[test]
    fn symmetry_of_scoring_function() {
        // DistMult models only symmetric relations: f(s, r, o) = f(o, r, s).
        let m = DistMult::new(6, 2, 8, 3);
        for (s, r, o) in [(0u32, 0u32, 1u32), (2, 1, 3), (4, 0, 5)] {
            let a = m.score(Triple::new(s, r, o));
            let b = m.score(Triple::new(o, r, s));
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn batched_kernels_match_pointwise_scores() {
        let m = DistMult::new(5, 2, 4, 7);
        let mut out = vec![0.0; 5];
        m.score_objects(EntityId(2), RelationId(1), &mut out);
        for e in 0..5 {
            assert!((out[e] - m.score(Triple::new(2u32, 1u32, e as u32))).abs() < 1e-5);
        }
        m.score_subjects(RelationId(0), EntityId(4), &mut out);
        for e in 0..5 {
            assert!((out[e] - m.score(Triple::new(e as u32, 0u32, 4u32))).abs() < 1e-5);
        }
    }

    #[test]
    fn gradients_pass_finite_difference_check() {
        let mut m = DistMult::new(4, 2, 6, 11);
        check_gradients(&mut m, Triple::new(0u32, 1u32, 2u32), 1e-2);
        check_gradients(&mut m, Triple::new(3u32, 0u32, 3u32), 1e-2);
    }
}
