//! HolE (Nickel et al. 2016): `f(s, r, o) = rᵀ (s ⋆ o)` where `⋆` is
//! circular correlation, `(s ⋆ o)_k = Σᵢ sᵢ o_{(k+i) mod l}` (paper §2.1).
//!
//! Useful identities (all O(l²) here; dims are small):
//! * `f = Σ_k r_k (s ⋆ o)_k`
//! * as a function of `o`: `f = (r ∗ s) · o` where `∗` is circular
//!   convolution, `(r ∗ s)_j = Σ_k r_k s_{(j−k) mod l}` — the
//!   `score_objects` query;
//! * as a function of `s`: `f = (r ⋆ o) · s` — the `score_subjects` query.
//!
//! Gradients follow directly: `∂f/∂r = s ⋆ o`, `∂f/∂s = r ⋆ o`,
//! `∂f/∂o = r ∗ s`.

use crate::math::dot;
use crate::{
    init, Gradients, KgeModel, ModelConfig, ModelKind, ParamTable, Parameters, ENTITY_TABLE,
    RELATION_TABLE,
};
use kgfd_kg::{EntityId, RelationId, Triple};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The HolE model.
pub struct HolE {
    params: Parameters,
    num_entities: usize,
    num_relations: usize,
    dim: usize,
}

impl HolE {
    /// Creates a Xavier-initialized HolE model.
    pub fn new(num_entities: usize, num_relations: usize, dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut entities = ParamTable::zeros(num_entities, dim);
        let mut relations = ParamTable::zeros(num_relations, dim);
        init::xavier_uniform(&mut entities, &mut rng);
        init::xavier_uniform(&mut relations, &mut rng);
        HolE {
            params: Parameters::new(vec![entities, relations]),
            num_entities,
            num_relations,
            dim,
        }
    }

    #[inline]
    fn entity(&self, e: EntityId) -> &[f32] {
        self.params.table(ENTITY_TABLE).row(e.index())
    }

    #[inline]
    fn relation(&self, r: RelationId) -> &[f32] {
        self.params.table(RELATION_TABLE).row(r.index())
    }

    /// Circular correlation `(a ⋆ b)_k = Σᵢ aᵢ b_{(k+i) mod l}`.
    fn correlate(a: &[f32], b: &[f32], out: &mut [f32]) {
        let l = a.len();
        for (k, slot) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (i, &ai) in a.iter().enumerate() {
                acc += ai * b[(k + i) % l];
            }
            *slot = acc;
        }
    }

    /// Circular convolution `(a ∗ b)_j = Σ_k a_k b_{(j−k) mod l}`.
    fn convolve(a: &[f32], b: &[f32], out: &mut [f32]) {
        let l = a.len();
        for (j, slot) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (k, &ak) in a.iter().enumerate() {
                acc += ak * b[(j + l - k) % l];
            }
            *slot = acc;
        }
    }

    fn dot_all_entities(&self, query: &[f32], out: &mut [f32]) {
        for (e, slot) in out.iter_mut().enumerate() {
            *slot = dot(query, self.entity(EntityId(e as u32)));
        }
    }
}

impl KgeModel for HolE {
    fn kind(&self) -> ModelKind {
        ModelKind::HolE
    }

    fn num_entities(&self) -> usize {
        self.num_entities
    }

    fn num_relations(&self) -> usize {
        self.num_relations
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn config(&self) -> ModelConfig {
        ModelConfig {
            kind: self.kind(),
            num_entities: self.num_entities(),
            num_relations: self.num_relations(),
            dim: self.dim(),
            distance: None,
        }
    }

    fn params(&self) -> &Parameters {
        &self.params
    }

    fn params_mut(&mut self) -> &mut Parameters {
        &mut self.params
    }

    fn score(&self, t: Triple) -> f32 {
        let s = self.entity(t.subject);
        let r = self.relation(t.relation);
        let o = self.entity(t.object);
        let mut corr = vec![0.0; self.dim];
        Self::correlate(s, o, &mut corr);
        dot(r, &corr)
    }

    fn score_objects(&self, s: EntityId, r: RelationId, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.num_entities);
        let mut query = vec![0.0; self.dim];
        Self::convolve(self.relation(r), self.entity(s), &mut query);
        self.dot_all_entities(&query, out);
    }

    fn score_subjects(&self, r: RelationId, o: EntityId, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.num_entities);
        let mut query = vec![0.0; self.dim];
        Self::correlate(self.relation(r), self.entity(o), &mut query);
        self.dot_all_entities(&query, out);
    }

    fn score_objects_batch(&self, queries: &[(EntityId, RelationId)], out: &mut [f32]) {
        debug_assert_eq!(out.len(), queries.len() * self.num_entities);
        let mut qvecs = vec![0.0; queries.len() * self.dim];
        for (qvec, &(s, r)) in qvecs.chunks_mut(self.dim).zip(queries) {
            Self::convolve(self.relation(r), self.entity(s), qvec);
        }
        crate::batch::dot_sweep(self.params.table(ENTITY_TABLE), &qvecs, self.dim, None, out);
    }

    fn score_subjects_batch(&self, queries: &[(RelationId, EntityId)], out: &mut [f32]) {
        debug_assert_eq!(out.len(), queries.len() * self.num_entities);
        let mut qvecs = vec![0.0; queries.len() * self.dim];
        for (qvec, &(r, o)) in qvecs.chunks_mut(self.dim).zip(queries) {
            Self::correlate(self.relation(r), self.entity(o), qvec);
        }
        crate::batch::dot_sweep(self.params.table(ENTITY_TABLE), &qvecs, self.dim, None, out);
    }

    fn backward(&self, t: Triple, upstream: f32, grads: &mut Gradients) {
        let s = self.entity(t.subject);
        let r = self.relation(t.relation);
        let o = self.entity(t.object);
        let mut buf = vec![0.0; self.dim];

        Self::correlate(r, o, &mut buf); // ∂f/∂s
        grads.add(ENTITY_TABLE, t.subject.index(), &buf, upstream);
        Self::correlate(s, o, &mut buf); // ∂f/∂r
        grads.add(RELATION_TABLE, t.relation.index(), &buf, upstream);
        Self::convolve(r, s, &mut buf); // ∂f/∂o
        grads.add(ENTITY_TABLE, t.object.index(), &buf, upstream);
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-vs-score comparisons read better indexed
mod tests {
    use super::*;
    use crate::models::gradcheck::check_gradients;

    #[test]
    fn correlation_matches_paper_formula() {
        // (s ⋆ o)_k = Σ_i s_i o_{(k+i) mod l}, hand-checked for l = 3.
        let s = [1.0, 2.0, 3.0];
        let o = [4.0, 5.0, 6.0];
        let mut out = [0.0; 3];
        HolE::correlate(&s, &o, &mut out);
        // k=0: 1·4 + 2·5 + 3·6 = 32
        // k=1: 1·5 + 2·6 + 3·4 = 29
        // k=2: 1·6 + 2·4 + 3·5 = 29
        assert_eq!(out, [32.0, 29.0, 29.0]);
    }

    #[test]
    fn convolution_is_adjoint_of_correlation() {
        // f = r · (s ⋆ o) = (r ∗ s) · o must hold for arbitrary vectors.
        let r = [0.5, -1.0, 2.0, 0.25];
        let s = [1.0, 2.0, -1.0, 0.5];
        let o = [-2.0, 1.0, 0.0, 3.0];
        let mut corr = [0.0; 4];
        HolE::correlate(&s, &o, &mut corr);
        let direct = dot(&r, &corr);
        let mut conv = [0.0; 4];
        HolE::convolve(&r, &s, &mut conv);
        let via_conv = dot(&conv, &o);
        assert!((direct - via_conv).abs() < 1e-5, "{direct} vs {via_conv}");
    }

    #[test]
    fn batched_kernels_match_pointwise_scores() {
        let m = HolE::new(5, 2, 4, 7);
        let mut out = vec![0.0; 5];
        m.score_objects(EntityId(3), RelationId(1), &mut out);
        for e in 0..5 {
            assert!((out[e] - m.score(Triple::new(3u32, 1u32, e as u32))).abs() < 1e-5);
        }
        m.score_subjects(RelationId(0), EntityId(1), &mut out);
        for e in 0..5 {
            assert!((out[e] - m.score(Triple::new(e as u32, 0u32, 1u32))).abs() < 1e-5);
        }
    }

    #[test]
    fn gradients_pass_finite_difference_check() {
        let mut m = HolE::new(4, 2, 6, 11);
        check_gradients(&mut m, Triple::new(0u32, 1u32, 2u32), 1e-2);
        check_gradients(&mut m, Triple::new(1u32, 0u32, 1u32), 1e-2);
    }
}
