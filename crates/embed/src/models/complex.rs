//! ComplEx (Trouillon et al. 2016): `f(s, r, o) = Re(sᵀ diag(r) ō)`.
//!
//! Embeddings live in `ℂ^{l/2}`, stored as `[re₀.. re_{m−1}, im₀.. im_{m−1}]`
//! with `m = l/2`. Expanding the Hermitian product:
//!
//! ```text
//! f = Σᵢ  s_re r_re o_re + s_im r_re o_im + s_re r_im o_im − s_im r_im o_re
//! ```
//!
//! Gradients (per component `i`):
//! * `∂f/∂s_re = r_re o_re + r_im o_im`,  `∂f/∂s_im = r_re o_im − r_im o_re`
//! * `∂f/∂r_re = s_re o_re + s_im o_im`,  `∂f/∂r_im = s_re o_im − s_im o_re`
//! * `∂f/∂o_re = s_re r_re − s_im r_im`,  `∂f/∂o_im = s_im r_re + s_re r_im`
//!
//! The object-side gradient is exactly the query vector of `score_objects`
//! (and symmetrically for subjects), since `f` is linear in each embedding.

use crate::math::dot;
use crate::{
    init, Gradients, KgeModel, ModelConfig, ModelKind, ParamTable, Parameters, ENTITY_TABLE,
    RELATION_TABLE,
};
use kgfd_kg::{EntityId, RelationId, Triple};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The ComplEx model. `dim` must be even.
pub struct ComplEx {
    params: Parameters,
    num_entities: usize,
    num_relations: usize,
    dim: usize,
}

impl ComplEx {
    /// Creates a Xavier-initialized ComplEx model. Panics if `dim` is odd.
    pub fn new(num_entities: usize, num_relations: usize, dim: usize, seed: u64) -> Self {
        assert!(
            dim.is_multiple_of(2),
            "ComplEx needs an even embedding dimension"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut entities = ParamTable::zeros(num_entities, dim);
        let mut relations = ParamTable::zeros(num_relations, dim);
        init::xavier_uniform(&mut entities, &mut rng);
        init::xavier_uniform(&mut relations, &mut rng);
        ComplEx {
            params: Parameters::new(vec![entities, relations]),
            num_entities,
            num_relations,
            dim,
        }
    }

    #[inline]
    fn entity(&self, e: EntityId) -> &[f32] {
        self.params.table(ENTITY_TABLE).row(e.index())
    }

    #[inline]
    fn relation(&self, r: RelationId) -> &[f32] {
        self.params.table(RELATION_TABLE).row(r.index())
    }

    /// `∂f/∂o` given `s` and `r` — also the `score_objects` query vector.
    fn object_query(s: &[f32], r: &[f32], out: &mut [f32]) {
        let m = s.len() / 2;
        for i in 0..m {
            out[i] = s[i] * r[i] - s[m + i] * r[m + i];
            out[m + i] = s[m + i] * r[i] + s[i] * r[m + i];
        }
    }

    /// `∂f/∂s` given `r` and `o` — also the `score_subjects` query vector.
    fn subject_query(r: &[f32], o: &[f32], out: &mut [f32]) {
        let m = r.len() / 2;
        for i in 0..m {
            out[i] = r[i] * o[i] + r[m + i] * o[m + i];
            out[m + i] = r[i] * o[m + i] - r[m + i] * o[i];
        }
    }

    /// `∂f/∂r` given `s` and `o`.
    fn relation_grad(s: &[f32], o: &[f32], out: &mut [f32]) {
        let m = s.len() / 2;
        for i in 0..m {
            out[i] = s[i] * o[i] + s[m + i] * o[m + i];
            out[m + i] = s[i] * o[m + i] - s[m + i] * o[i];
        }
    }

    fn dot_all_entities(&self, query: &[f32], out: &mut [f32]) {
        for (e, slot) in out.iter_mut().enumerate() {
            *slot = dot(query, self.entity(EntityId(e as u32)));
        }
    }
}

impl KgeModel for ComplEx {
    fn kind(&self) -> ModelKind {
        ModelKind::ComplEx
    }

    fn num_entities(&self) -> usize {
        self.num_entities
    }

    fn num_relations(&self) -> usize {
        self.num_relations
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn config(&self) -> ModelConfig {
        ModelConfig {
            kind: self.kind(),
            num_entities: self.num_entities(),
            num_relations: self.num_relations(),
            dim: self.dim(),
            distance: None,
        }
    }

    fn params(&self) -> &Parameters {
        &self.params
    }

    fn params_mut(&mut self) -> &mut Parameters {
        &mut self.params
    }

    fn score(&self, t: Triple) -> f32 {
        let s = self.entity(t.subject);
        let r = self.relation(t.relation);
        let o = self.entity(t.object);
        let m = self.dim / 2;
        let mut acc = 0.0;
        for i in 0..m {
            acc += s[i] * r[i] * o[i] + s[m + i] * r[i] * o[m + i] + s[i] * r[m + i] * o[m + i]
                - s[m + i] * r[m + i] * o[i];
        }
        acc
    }

    fn score_objects(&self, s: EntityId, r: RelationId, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.num_entities);
        let mut query = vec![0.0; self.dim];
        Self::object_query(self.entity(s), self.relation(r), &mut query);
        self.dot_all_entities(&query, out);
    }

    fn score_subjects(&self, r: RelationId, o: EntityId, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.num_entities);
        let mut query = vec![0.0; self.dim];
        Self::subject_query(self.relation(r), self.entity(o), &mut query);
        self.dot_all_entities(&query, out);
    }

    fn score_objects_batch(&self, queries: &[(EntityId, RelationId)], out: &mut [f32]) {
        debug_assert_eq!(out.len(), queries.len() * self.num_entities);
        let mut qvecs = vec![0.0; queries.len() * self.dim];
        for (qvec, &(s, r)) in qvecs.chunks_mut(self.dim).zip(queries) {
            Self::object_query(self.entity(s), self.relation(r), qvec);
        }
        crate::batch::dot_sweep(self.params.table(ENTITY_TABLE), &qvecs, self.dim, None, out);
    }

    fn score_subjects_batch(&self, queries: &[(RelationId, EntityId)], out: &mut [f32]) {
        debug_assert_eq!(out.len(), queries.len() * self.num_entities);
        let mut qvecs = vec![0.0; queries.len() * self.dim];
        for (qvec, &(r, o)) in qvecs.chunks_mut(self.dim).zip(queries) {
            Self::subject_query(self.relation(r), self.entity(o), qvec);
        }
        crate::batch::dot_sweep(self.params.table(ENTITY_TABLE), &qvecs, self.dim, None, out);
    }

    fn backward(&self, t: Triple, upstream: f32, grads: &mut Gradients) {
        let s = self.entity(t.subject);
        let r = self.relation(t.relation);
        let o = self.entity(t.object);
        let mut buf = vec![0.0; self.dim];

        Self::subject_query(r, o, &mut buf);
        grads.add(ENTITY_TABLE, t.subject.index(), &buf, upstream);
        Self::relation_grad(s, o, &mut buf);
        grads.add(RELATION_TABLE, t.relation.index(), &buf, upstream);
        Self::object_query(s, r, &mut buf);
        grads.add(ENTITY_TABLE, t.object.index(), &buf, upstream);
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-vs-score comparisons read better indexed
mod tests {
    use super::*;
    use crate::models::gradcheck::check_gradients;

    #[test]
    fn reduces_to_distmult_when_imaginary_parts_are_zero() {
        let mut m = ComplEx::new(2, 1, 4, 0);
        // re = (a, b), im = (0, 0)
        m.params_mut()
            .table_mut(ENTITY_TABLE)
            .row_mut(0)
            .copy_from_slice(&[1.0, 2.0, 0.0, 0.0]);
        m.params_mut()
            .table_mut(ENTITY_TABLE)
            .row_mut(1)
            .copy_from_slice(&[3.0, 4.0, 0.0, 0.0]);
        m.params_mut()
            .table_mut(RELATION_TABLE)
            .row_mut(0)
            .copy_from_slice(&[5.0, 6.0, 0.0, 0.0]);
        // DistMult: 1·5·3 + 2·6·4 = 63
        assert!((m.score(Triple::new(0u32, 0u32, 1u32)) - 63.0).abs() < 1e-5);
    }

    #[test]
    fn can_model_antisymmetry() {
        // With a purely imaginary relation, f(s, r, o) = −f(o, r, s).
        let mut m = ComplEx::new(2, 1, 4, 1);
        m.params_mut()
            .table_mut(RELATION_TABLE)
            .row_mut(0)
            .copy_from_slice(&[0.0, 0.0, 1.0, 1.0]);
        let fwd = m.score(Triple::new(0u32, 0u32, 1u32));
        let bwd = m.score(Triple::new(1u32, 0u32, 0u32));
        assert!((fwd + bwd).abs() < 1e-5);
        assert!(fwd.abs() > 1e-6, "nonzero for random entity embeddings");
    }

    #[test]
    fn batched_kernels_match_pointwise_scores() {
        let m = ComplEx::new(5, 2, 6, 7);
        let mut out = vec![0.0; 5];
        m.score_objects(EntityId(0), RelationId(1), &mut out);
        for e in 0..5 {
            assert!((out[e] - m.score(Triple::new(0u32, 1u32, e as u32))).abs() < 1e-5);
        }
        m.score_subjects(RelationId(0), EntityId(2), &mut out);
        for e in 0..5 {
            assert!((out[e] - m.score(Triple::new(e as u32, 0u32, 2u32))).abs() < 1e-5);
        }
    }

    #[test]
    fn gradients_pass_finite_difference_check() {
        let mut m = ComplEx::new(4, 2, 8, 11);
        check_gradients(&mut m, Triple::new(0u32, 1u32, 2u32), 1e-2);
        check_gradients(&mut m, Triple::new(2u32, 0u32, 2u32), 1e-2);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_dimension_is_rejected() {
        ComplEx::new(2, 1, 5, 0);
    }
}
