//! SimplE (Kazemi & Poole 2018): each entity carries separate head/tail
//! vectors, each relation a forward and an inverse vector, and
//!
//! ```text
//! f(s, r, o) = ½ (⟨h_s, r, t_o⟩ + ⟨h_o, r⁻¹, t_s⟩)
//! ```
//!
//! where `⟨a, b, c⟩ = Σᵢ aᵢ bᵢ cᵢ`. The averaging ties the two directions
//! together, making SimplE fully expressive while staying bilinear.
//!
//! Not in the paper's grid; included for library completeness. Storage: an
//! entity row is `[h | t]` (width `2l`), a relation row `[r | r⁻¹]`.
//! Gradients are the obvious triple products, accumulated into both halves.

use crate::math::dot;
use crate::{
    init, Gradients, KgeModel, ModelConfig, ModelKind, ParamTable, Parameters, ENTITY_TABLE,
    RELATION_TABLE,
};
use kgfd_kg::{EntityId, RelationId, Triple};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The SimplE model. `dim` is the width of *one* factor vector; rows store
/// two, so the parameter width is `2 × dim`... the public `dim()` reports
/// the row width `2l` for buffer-sizing consistency with the other models.
pub struct SimplE {
    params: Parameters,
    num_entities: usize,
    num_relations: usize,
    /// One factor's width `l` (row width is `2l`).
    half: usize,
}

impl SimplE {
    /// Creates a Xavier-initialized SimplE model. `dim` (the row width) must
    /// be even; each factor vector has width `dim / 2`.
    pub fn new(num_entities: usize, num_relations: usize, dim: usize, seed: u64) -> Self {
        assert!(dim.is_multiple_of(2), "SimplE needs an even row width");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut entities = ParamTable::zeros(num_entities, dim);
        let mut relations = ParamTable::zeros(num_relations, dim);
        init::xavier_uniform(&mut entities, &mut rng);
        init::xavier_uniform(&mut relations, &mut rng);
        SimplE {
            params: Parameters::new(vec![entities, relations]),
            num_entities,
            num_relations,
            half: dim / 2,
        }
    }

    #[inline]
    fn entity(&self, e: EntityId) -> &[f32] {
        self.params.table(ENTITY_TABLE).row(e.index())
    }

    #[inline]
    fn relation(&self, r: RelationId) -> &[f32] {
        self.params.table(RELATION_TABLE).row(r.index())
    }
}

impl KgeModel for SimplE {
    fn kind(&self) -> ModelKind {
        ModelKind::SimplE
    }

    fn num_entities(&self) -> usize {
        self.num_entities
    }

    fn num_relations(&self) -> usize {
        self.num_relations
    }

    fn dim(&self) -> usize {
        2 * self.half
    }

    fn config(&self) -> ModelConfig {
        ModelConfig {
            kind: self.kind(),
            num_entities: self.num_entities(),
            num_relations: self.num_relations(),
            dim: self.dim(),
            distance: None,
        }
    }

    fn params(&self) -> &Parameters {
        &self.params
    }

    fn params_mut(&mut self) -> &mut Parameters {
        &mut self.params
    }

    fn score(&self, t: Triple) -> f32 {
        let l = self.half;
        let s = self.entity(t.subject);
        let r = self.relation(t.relation);
        let o = self.entity(t.object);
        let mut acc = 0.0;
        for i in 0..l {
            // ⟨h_s, r, t_o⟩ + ⟨h_o, r⁻¹, t_s⟩
            acc += s[i] * r[i] * o[l + i] + o[i] * r[l + i] * s[l + i];
        }
        0.5 * acc
    }

    fn score_objects(&self, s: EntityId, r: RelationId, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.num_entities);
        let l = self.half;
        let sv = self.entity(s);
        let rv = self.relation(r);
        // f(o) = ½ (q1 · t_o + q2 · h_o) with q1 = h_s∘r, q2 = t_s∘r⁻¹.
        let mut query = vec![0.0; 2 * l];
        for i in 0..l {
            query[l + i] = sv[i] * rv[i]; // pairs with t_o
            query[i] = sv[l + i] * rv[l + i]; // pairs with h_o
        }
        for (e, slot) in out.iter_mut().enumerate() {
            *slot = 0.5 * dot(&query, self.entity(EntityId(e as u32)));
        }
    }

    fn score_subjects(&self, r: RelationId, o: EntityId, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.num_entities);
        let l = self.half;
        let ov = self.entity(o);
        let rv = self.relation(r);
        // f(s) = ½ (w1 · h_s + w2 · t_s) with w1 = r∘t_o, w2 = r⁻¹∘h_o.
        let mut query = vec![0.0; 2 * l];
        for i in 0..l {
            query[i] = rv[i] * ov[l + i];
            query[l + i] = rv[l + i] * ov[i];
        }
        for (e, slot) in out.iter_mut().enumerate() {
            *slot = 0.5 * dot(&query, self.entity(EntityId(e as u32)));
        }
    }

    fn score_objects_batch(&self, queries: &[(EntityId, RelationId)], out: &mut [f32]) {
        debug_assert_eq!(out.len(), queries.len() * self.num_entities);
        let l = self.half;
        let mut qvecs = vec![0.0; queries.len() * 2 * l];
        for (qvec, &(s, r)) in qvecs.chunks_mut(2 * l).zip(queries) {
            let sv = self.entity(s);
            let rv = self.relation(r);
            for i in 0..l {
                qvec[l + i] = sv[i] * rv[i]; // pairs with t_o
                qvec[i] = sv[l + i] * rv[l + i]; // pairs with h_o
            }
        }
        let entities = self.params.table(ENTITY_TABLE);
        crate::batch::dot_sweep(entities, &qvecs, 2 * l, Some(0.5), out);
    }

    fn score_subjects_batch(&self, queries: &[(RelationId, EntityId)], out: &mut [f32]) {
        debug_assert_eq!(out.len(), queries.len() * self.num_entities);
        let l = self.half;
        let mut qvecs = vec![0.0; queries.len() * 2 * l];
        for (qvec, &(r, o)) in qvecs.chunks_mut(2 * l).zip(queries) {
            let ov = self.entity(o);
            let rv = self.relation(r);
            for i in 0..l {
                qvec[i] = rv[i] * ov[l + i];
                qvec[l + i] = rv[l + i] * ov[i];
            }
        }
        let entities = self.params.table(ENTITY_TABLE);
        crate::batch::dot_sweep(entities, &qvecs, 2 * l, Some(0.5), out);
    }

    fn backward(&self, t: Triple, upstream: f32, grads: &mut Gradients) {
        let l = self.half;
        let s = self.entity(t.subject);
        let r = self.relation(t.relation);
        let o = self.entity(t.object);
        let half_up = 0.5 * upstream;

        let mut ds = vec![0.0; 2 * l];
        let mut dr = vec![0.0; 2 * l];
        let mut do_ = vec![0.0; 2 * l];
        for i in 0..l {
            // ∂/∂h_s, ∂/∂t_s
            ds[i] = r[i] * o[l + i];
            ds[l + i] = o[i] * r[l + i];
            // ∂/∂r, ∂/∂r⁻¹
            dr[i] = s[i] * o[l + i];
            dr[l + i] = o[i] * s[l + i];
            // ∂/∂h_o, ∂/∂t_o
            do_[i] = r[l + i] * s[l + i];
            do_[l + i] = s[i] * r[i];
        }
        grads.add(ENTITY_TABLE, t.subject.index(), &ds, half_up);
        grads.add(RELATION_TABLE, t.relation.index(), &dr, half_up);
        grads.add(ENTITY_TABLE, t.object.index(), &do_, half_up);
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-vs-score comparisons read better indexed
mod tests {
    use super::*;
    use crate::models::gradcheck::check_gradients;

    #[test]
    fn score_matches_hand_computation() {
        let mut m = SimplE::new(2, 1, 4, 0);
        // entity rows: [h0, h1 | t0, t1]
        m.params_mut()
            .table_mut(ENTITY_TABLE)
            .row_mut(0)
            .copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        m.params_mut()
            .table_mut(ENTITY_TABLE)
            .row_mut(1)
            .copy_from_slice(&[5.0, 6.0, 7.0, 8.0]);
        // relation row: [r | r⁻¹]
        m.params_mut()
            .table_mut(RELATION_TABLE)
            .row_mut(0)
            .copy_from_slice(&[1.0, 0.0, 0.0, 1.0]);
        // ⟨h_s, r, t_o⟩ = 1·1·7 + 2·0·8 = 7; ⟨h_o, r⁻¹, t_s⟩ = 5·0·3 + 6·1·4 = 24.
        // f = (7 + 24) / 2 = 15.5
        assert!((m.score(Triple::new(0u32, 0u32, 1u32)) - 15.5).abs() < 1e-6);
    }

    #[test]
    fn can_model_asymmetry() {
        let m = SimplE::new(4, 2, 8, 5);
        let fwd = m.score(Triple::new(0u32, 0u32, 1u32));
        let bwd = m.score(Triple::new(1u32, 0u32, 0u32));
        assert!((fwd - bwd).abs() > 1e-6, "random SimplE is asymmetric");
    }

    #[test]
    fn batched_kernels_match_pointwise_scores() {
        let m = SimplE::new(5, 2, 6, 7);
        let mut out = vec![0.0; 5];
        m.score_objects(EntityId(2), RelationId(1), &mut out);
        for e in 0..5 {
            assert!((out[e] - m.score(Triple::new(2u32, 1u32, e as u32))).abs() < 1e-5);
        }
        m.score_subjects(RelationId(0), EntityId(4), &mut out);
        for e in 0..5 {
            assert!((out[e] - m.score(Triple::new(e as u32, 0u32, 4u32))).abs() < 1e-5);
        }
    }

    #[test]
    fn gradients_pass_finite_difference_check() {
        let mut m = SimplE::new(4, 2, 8, 11);
        check_gradients(&mut m, Triple::new(0u32, 1u32, 2u32), 1e-2);
        check_gradients(&mut m, Triple::new(2u32, 0u32, 2u32), 1e-2);
    }
}
