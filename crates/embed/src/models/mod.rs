//! The concrete scoring models (paper §2.1) with hand-derived gradients.
//!
//! Each module documents its scoring function and the closed-form gradient
//! it implements; every module carries a finite-difference gradient check
//! (see [`gradcheck`]) so a derivation error cannot survive `cargo test`.

mod complex;
mod conve;
mod distmult;
mod hole;
mod rescal;
mod rotate;
mod simple;
mod transe;
mod tucker;

pub use complex::ComplEx;
pub use conve::ConvE;
pub use distmult::DistMult;
pub use hole::HolE;
pub use rescal::Rescal;
pub use rotate::RotatE;
pub use simple::SimplE;
pub use transe::{Distance, TransE};
pub use tucker::TuckEr;

use crate::{KgeModel, ModelKind};

/// Constructs a freshly initialized model of the given kind.
///
/// `dim` is the entity-embedding width; for [`ModelKind::ComplEx`] it must be
/// even (half real, half imaginary), for [`ModelKind::ConvE`] it must be
/// expressible as `h × w` with `h, w ≥ 3` (the reshape grid).
pub fn new_model(
    kind: ModelKind,
    num_entities: usize,
    num_relations: usize,
    dim: usize,
    seed: u64,
) -> Box<dyn KgeModel> {
    match kind {
        ModelKind::TransE => Box::new(TransE::new(
            num_entities,
            num_relations,
            dim,
            Distance::L1,
            seed,
        )),
        ModelKind::DistMult => Box::new(DistMult::new(num_entities, num_relations, dim, seed)),
        ModelKind::ComplEx => Box::new(ComplEx::new(num_entities, num_relations, dim, seed)),
        ModelKind::Rescal => Box::new(Rescal::new(num_entities, num_relations, dim, seed)),
        ModelKind::HolE => Box::new(HolE::new(num_entities, num_relations, dim, seed)),
        ModelKind::ConvE => Box::new(ConvE::new(num_entities, num_relations, dim, seed)),
        ModelKind::RotatE => Box::new(RotatE::new(num_entities, num_relations, dim, seed)),
        ModelKind::SimplE => Box::new(SimplE::new(num_entities, num_relations, dim, seed)),
        ModelKind::TuckEr => Box::new(TuckEr::new(num_entities, num_relations, dim, seed)),
    }
}

/// Finite-difference gradient checking, shared by every model's tests.
#[cfg(test)]
pub(crate) mod gradcheck {
    use crate::{Gradients, KgeModel};
    use kgfd_kg::Triple;

    /// Verifies `backward` against central finite differences on every
    /// parameter the backward pass touched.
    pub fn check_gradients(model: &mut dyn KgeModel, t: Triple, tol: f32) {
        let mut grads = Gradients::new();
        model.backward(t, 1.0, &mut grads);
        assert!(!grads.is_empty(), "backward touched no parameters");

        let eps = 1e-3f32;
        let touched: Vec<(usize, usize, Vec<f32>)> = grads
            .iter()
            .map(|(table, row, g)| (table, row, g.to_vec()))
            .collect();
        for (table, row, analytic) in touched {
            #[allow(clippy::needless_range_loop)] // col also indexes the params row
            for col in 0..analytic.len() {
                let original = model.params().table(table).row(row)[col];

                model.params_mut().table_mut(table).row_mut(row)[col] = original + eps;
                let plus = model.score(t);
                model.params_mut().table_mut(table).row_mut(row)[col] = original - eps;
                let minus = model.score(t);
                model.params_mut().table_mut(table).row_mut(row)[col] = original;

                let numeric = (plus - minus) / (2.0 * eps);
                let diff = (numeric - analytic[col]).abs();
                let scale = numeric.abs().max(analytic[col].abs()).max(1.0);
                assert!(
                    diff / scale < tol,
                    "grad mismatch at table {table} row {row} col {col}: \
                     numeric {numeric} vs analytic {}",
                    analytic[col]
                );
            }
        }
    }
}
