//! RESCAL (Nickel et al. 2011): `f(s, r, o) = sᵀ R o` with a full `l × l`
//! matrix `R` per relation.
//!
//! Gradients: `∂f/∂s = R o`, `∂f/∂o = Rᵀ s`, `∂f/∂R = s oᵀ` (outer product).
//! The relation table stores each matrix row-major as one `l²`-wide row.

use crate::math::dot;
use crate::{
    init, Gradients, KgeModel, ModelConfig, ModelKind, ParamTable, Parameters, ENTITY_TABLE,
    RELATION_TABLE,
};
use kgfd_kg::{EntityId, RelationId, Triple};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RESCAL model.
pub struct Rescal {
    params: Parameters,
    num_entities: usize,
    num_relations: usize,
    dim: usize,
}

impl Rescal {
    /// Creates a Xavier-initialized RESCAL model.
    pub fn new(num_entities: usize, num_relations: usize, dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut entities = ParamTable::zeros(num_entities, dim);
        // One l×l matrix per relation, flattened row-major.
        let mut relations = ParamTable::zeros(num_relations, dim * dim);
        init::xavier_uniform(&mut entities, &mut rng);
        init::xavier_uniform(&mut relations, &mut rng);
        Rescal {
            params: Parameters::new(vec![entities, relations]),
            num_entities,
            num_relations,
            dim,
        }
    }

    #[inline]
    fn entity(&self, e: EntityId) -> &[f32] {
        self.params.table(ENTITY_TABLE).row(e.index())
    }

    #[inline]
    fn matrix(&self, r: RelationId) -> &[f32] {
        self.params.table(RELATION_TABLE).row(r.index())
    }

    /// `out = R o` (matrix–vector).
    fn mat_vec(&self, r: RelationId, v: &[f32], out: &mut [f32]) {
        let l = self.dim;
        let m = self.matrix(r);
        for i in 0..l {
            out[i] = dot(&m[i * l..(i + 1) * l], v);
        }
    }

    /// `out = Rᵀ s` (transposed matrix–vector).
    fn mat_t_vec(&self, r: RelationId, v: &[f32], out: &mut [f32]) {
        let l = self.dim;
        let m = self.matrix(r);
        out.fill(0.0);
        for (i, &vi) in v.iter().enumerate() {
            crate::math::add_scaled(out, &m[i * l..(i + 1) * l], vi);
        }
    }

    fn dot_all_entities(&self, query: &[f32], out: &mut [f32]) {
        for (e, slot) in out.iter_mut().enumerate() {
            *slot = dot(query, self.entity(EntityId(e as u32)));
        }
    }
}

impl KgeModel for Rescal {
    fn kind(&self) -> ModelKind {
        ModelKind::Rescal
    }

    fn num_entities(&self) -> usize {
        self.num_entities
    }

    fn num_relations(&self) -> usize {
        self.num_relations
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn config(&self) -> ModelConfig {
        ModelConfig {
            kind: self.kind(),
            num_entities: self.num_entities(),
            num_relations: self.num_relations(),
            dim: self.dim(),
            distance: None,
        }
    }

    fn params(&self) -> &Parameters {
        &self.params
    }

    fn params_mut(&mut self) -> &mut Parameters {
        &mut self.params
    }

    fn score(&self, t: Triple) -> f32 {
        let s = self.entity(t.subject);
        let o = self.entity(t.object);
        let l = self.dim;
        let m = self.matrix(t.relation);
        let mut acc = 0.0;
        for (i, &si) in s.iter().enumerate() {
            acc += si * dot(&m[i * l..(i + 1) * l], o);
        }
        acc
    }

    fn score_objects(&self, s: EntityId, r: RelationId, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.num_entities);
        // q = sᵀ R (row vector), then dot each entity.
        let mut query = vec![0.0; self.dim];
        self.mat_t_vec(r, self.entity(s), &mut query);
        self.dot_all_entities(&query, out);
    }

    fn score_subjects(&self, r: RelationId, o: EntityId, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.num_entities);
        // q = R o, then dot each entity.
        let mut query = vec![0.0; self.dim];
        self.mat_vec(r, self.entity(o), &mut query);
        self.dot_all_entities(&query, out);
    }

    fn score_objects_batch(&self, queries: &[(EntityId, RelationId)], out: &mut [f32]) {
        debug_assert_eq!(out.len(), queries.len() * self.num_entities);
        let mut qvecs = vec![0.0; queries.len() * self.dim];
        for (qvec, &(s, r)) in qvecs.chunks_mut(self.dim).zip(queries) {
            self.mat_t_vec(r, self.entity(s), qvec);
        }
        crate::batch::dot_sweep(self.params.table(ENTITY_TABLE), &qvecs, self.dim, None, out);
    }

    fn score_subjects_batch(&self, queries: &[(RelationId, EntityId)], out: &mut [f32]) {
        debug_assert_eq!(out.len(), queries.len() * self.num_entities);
        let mut qvecs = vec![0.0; queries.len() * self.dim];
        for (qvec, &(r, o)) in qvecs.chunks_mut(self.dim).zip(queries) {
            self.mat_vec(r, self.entity(o), qvec);
        }
        crate::batch::dot_sweep(self.params.table(ENTITY_TABLE), &qvecs, self.dim, None, out);
    }

    fn backward(&self, t: Triple, upstream: f32, grads: &mut Gradients) {
        let l = self.dim;
        let s = self.entity(t.subject).to_vec();
        let o = self.entity(t.object).to_vec();

        let mut buf = vec![0.0; l];
        self.mat_vec(t.relation, &o, &mut buf); // ∂f/∂s = R o
        grads.add(ENTITY_TABLE, t.subject.index(), &buf, upstream);
        self.mat_t_vec(t.relation, &s, &mut buf); // ∂f/∂o = Rᵀ s
        grads.add(ENTITY_TABLE, t.object.index(), &buf, upstream);

        // ∂f/∂R = s oᵀ, written directly into the sparse slot.
        let slot = grads.slot(RELATION_TABLE, t.relation.index(), l * l);
        for (i, &si) in s.iter().enumerate() {
            crate::math::add_scaled(&mut slot[i * l..(i + 1) * l], &o, upstream * si);
        }
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-vs-score comparisons read better indexed
mod tests {
    use super::*;
    use crate::models::gradcheck::check_gradients;

    #[test]
    fn score_matches_hand_computation() {
        let mut m = Rescal::new(2, 1, 2, 0);
        m.params_mut()
            .table_mut(ENTITY_TABLE)
            .row_mut(0)
            .copy_from_slice(&[1.0, 2.0]);
        m.params_mut()
            .table_mut(ENTITY_TABLE)
            .row_mut(1)
            .copy_from_slice(&[3.0, 4.0]);
        // R = [[1, 0], [0, 1]] (identity) → f = s·o = 3 + 8 = 11.
        m.params_mut()
            .table_mut(RELATION_TABLE)
            .row_mut(0)
            .copy_from_slice(&[1.0, 0.0, 0.0, 1.0]);
        assert!((m.score(Triple::new(0u32, 0u32, 1u32)) - 11.0).abs() < 1e-6);
    }

    #[test]
    fn asymmetric_matrix_gives_asymmetric_scores() {
        let mut m = Rescal::new(2, 1, 2, 0);
        m.params_mut()
            .table_mut(ENTITY_TABLE)
            .row_mut(0)
            .copy_from_slice(&[1.0, 0.0]);
        m.params_mut()
            .table_mut(ENTITY_TABLE)
            .row_mut(1)
            .copy_from_slice(&[0.0, 1.0]);
        m.params_mut()
            .table_mut(RELATION_TABLE)
            .row_mut(0)
            .copy_from_slice(&[0.0, 1.0, 0.0, 0.0]);
        // f(0, r, 1) = e0ᵀ R e1 = R[0][1] = 1; f(1, r, 0) = R[1][0] = 0.
        assert!((m.score(Triple::new(0u32, 0u32, 1u32)) - 1.0).abs() < 1e-6);
        assert!(m.score(Triple::new(1u32, 0u32, 0u32)).abs() < 1e-6);
    }

    #[test]
    fn batched_kernels_match_pointwise_scores() {
        let m = Rescal::new(5, 2, 4, 7);
        let mut out = vec![0.0; 5];
        m.score_objects(EntityId(1), RelationId(0), &mut out);
        for e in 0..5 {
            assert!((out[e] - m.score(Triple::new(1u32, 0u32, e as u32))).abs() < 1e-4);
        }
        m.score_subjects(RelationId(1), EntityId(0), &mut out);
        for e in 0..5 {
            assert!((out[e] - m.score(Triple::new(e as u32, 1u32, 0u32))).abs() < 1e-4);
        }
    }

    #[test]
    fn gradients_pass_finite_difference_check() {
        let mut m = Rescal::new(4, 2, 4, 11);
        check_gradients(&mut m, Triple::new(0u32, 1u32, 2u32), 1e-2);
        check_gradients(&mut m, Triple::new(3u32, 0u32, 3u32), 1e-2);
    }
}
