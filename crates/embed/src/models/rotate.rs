//! RotatE (Sun et al. 2019): relations as rotations in the complex plane,
//! `f(s, r, o) = −Σᵢ |sᵢ·rᵢ − oᵢ|` with `|rᵢ| = 1`.
//!
//! Not part of the paper's grid — included because a usable KGE library is
//! expected to ship it, and it plugs into discovery/evaluation through the
//! same [`KgeModel`] trait.
//!
//! Entities are complex (`[re.. , im..]` halves, width `l`); a relation row
//! stores the `l/2` rotation *phases* θ, so the unit-modulus constraint
//! holds by construction. With `u + iv = s·e^{iθ} − o` and `m = √(u² + v²)`:
//!
//! * `∂f/∂o_re = u/m`, `∂f/∂o_im = v/m`
//! * `∂f/∂s_re = −(u cosθ + v sinθ)/m`, `∂f/∂s_im = (u sinθ − v cosθ)/m`
//! * `∂f/∂θ = −(u·∂u/∂θ + v·∂v/∂θ)/m` with `∂u/∂θ = −s_re sinθ − s_im cosθ`,
//!   `∂v/∂θ = s_re cosθ − s_im sinθ`.
//!
//! Because rotation is an isometry, both batched kernels are translations:
//! objects measure distance to `s·e^{iθ}`, subjects to `o·e^{−iθ}`.

use crate::{
    init, Gradients, KgeModel, ModelConfig, ModelKind, ParamTable, Parameters, ENTITY_TABLE,
    RELATION_TABLE,
};
use kgfd_kg::{EntityId, RelationId, Triple};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RotatE model. `dim` must be even.
pub struct RotatE {
    params: Parameters,
    num_entities: usize,
    num_relations: usize,
    dim: usize,
}

impl RotatE {
    /// Creates a RotatE model: Xavier entities, phases uniform in (−π, π).
    pub fn new(num_entities: usize, num_relations: usize, dim: usize, seed: u64) -> Self {
        assert!(
            dim.is_multiple_of(2),
            "RotatE needs an even embedding dimension"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut entities = ParamTable::zeros(num_entities, dim);
        let mut relations = ParamTable::zeros(num_relations, dim / 2);
        init::xavier_uniform(&mut entities, &mut rng);
        init::uniform(&mut relations, &mut rng, std::f32::consts::PI);
        RotatE {
            params: Parameters::new(vec![entities, relations]),
            num_entities,
            num_relations,
            dim,
        }
    }

    #[inline]
    fn entity(&self, e: EntityId) -> &[f32] {
        self.params.table(ENTITY_TABLE).row(e.index())
    }

    #[inline]
    fn phases(&self, r: RelationId) -> &[f32] {
        self.params.table(RELATION_TABLE).row(r.index())
    }

    /// Rotates complex vector `x` by `theta` (`+1.0`) or `−theta` (`−1.0`).
    fn rotate(x: &[f32], theta: &[f32], sign: f32, out: &mut [f32]) {
        let m = theta.len();
        for i in 0..m {
            let (sin, cos) = (sign * theta[i]).sin_cos();
            out[i] = x[i] * cos - x[m + i] * sin;
            out[m + i] = x[i] * sin + x[m + i] * cos;
        }
    }

    /// `−Σ |xᵢ − yᵢ|` over complex components.
    fn neg_complex_l1(x: &[f32], y: &[f32]) -> f32 {
        let m = x.len() / 2;
        let mut acc = 0.0;
        for i in 0..m {
            let u = x[i] - y[i];
            let v = x[m + i] - y[m + i];
            acc += (u * u + v * v).sqrt();
        }
        -acc
    }
}

impl KgeModel for RotatE {
    fn kind(&self) -> ModelKind {
        ModelKind::RotatE
    }

    fn num_entities(&self) -> usize {
        self.num_entities
    }

    fn num_relations(&self) -> usize {
        self.num_relations
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn config(&self) -> ModelConfig {
        ModelConfig {
            kind: self.kind(),
            num_entities: self.num_entities(),
            num_relations: self.num_relations(),
            dim: self.dim(),
            distance: None,
        }
    }

    fn params(&self) -> &Parameters {
        &self.params
    }

    fn params_mut(&mut self) -> &mut Parameters {
        &mut self.params
    }

    fn score(&self, t: Triple) -> f32 {
        let mut rotated = vec![0.0; self.dim];
        Self::rotate(
            self.entity(t.subject),
            self.phases(t.relation),
            1.0,
            &mut rotated,
        );
        Self::neg_complex_l1(&rotated, self.entity(t.object))
    }

    fn score_objects(&self, s: EntityId, r: RelationId, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.num_entities);
        let mut query = vec![0.0; self.dim];
        Self::rotate(self.entity(s), self.phases(r), 1.0, &mut query);
        for (e, slot) in out.iter_mut().enumerate() {
            *slot = Self::neg_complex_l1(&query, self.entity(EntityId(e as u32)));
        }
    }

    fn score_subjects(&self, r: RelationId, o: EntityId, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.num_entities);
        // |s·e^{iθ} − o| = |s − o·e^{−iθ}|.
        let mut query = vec![0.0; self.dim];
        Self::rotate(self.entity(o), self.phases(r), -1.0, &mut query);
        for (e, slot) in out.iter_mut().enumerate() {
            *slot = Self::neg_complex_l1(&query, self.entity(EntityId(e as u32)));
        }
    }

    fn score_objects_batch(&self, queries: &[(EntityId, RelationId)], out: &mut [f32]) {
        debug_assert_eq!(out.len(), queries.len() * self.num_entities);
        let mut points = vec![0.0; queries.len() * self.dim];
        for (point, &(s, r)) in points.chunks_mut(self.dim).zip(queries) {
            Self::rotate(self.entity(s), self.phases(r), 1.0, point);
        }
        let entities = self.params.table(ENTITY_TABLE);
        crate::batch::neg_complex_l1_sweep(entities, &points, self.dim, out);
    }

    fn score_subjects_batch(&self, queries: &[(RelationId, EntityId)], out: &mut [f32]) {
        debug_assert_eq!(out.len(), queries.len() * self.num_entities);
        let mut points = vec![0.0; queries.len() * self.dim];
        for (point, &(r, o)) in points.chunks_mut(self.dim).zip(queries) {
            Self::rotate(self.entity(o), self.phases(r), -1.0, point);
        }
        let entities = self.params.table(ENTITY_TABLE);
        crate::batch::neg_complex_l1_sweep(entities, &points, self.dim, out);
    }

    fn backward(&self, t: Triple, upstream: f32, grads: &mut Gradients) {
        let s = self.entity(t.subject);
        let o = self.entity(t.object);
        let theta = self.phases(t.relation);
        let m = self.dim / 2;

        let mut ds = vec![0.0; self.dim];
        let mut do_ = vec![0.0; self.dim];
        let mut dth = vec![0.0; m];
        for i in 0..m {
            let (sin, cos) = theta[i].sin_cos();
            let u = s[i] * cos - s[m + i] * sin - o[i];
            let v = s[i] * sin + s[m + i] * cos - o[m + i];
            let dist = (u * u + v * v).sqrt();
            if dist < 1e-12 {
                continue;
            }
            let (un, vn) = (u / dist, v / dist);
            // f contributes −dist.
            ds[i] = -(un * cos + vn * sin);
            ds[m + i] = un * sin - vn * cos;
            do_[i] = un;
            do_[m + i] = vn;
            let du_dth = -s[i] * sin - s[m + i] * cos;
            let dv_dth = s[i] * cos - s[m + i] * sin;
            dth[i] = -(un * du_dth + vn * dv_dth);
        }
        grads.add(ENTITY_TABLE, t.subject.index(), &ds, upstream);
        grads.add(ENTITY_TABLE, t.object.index(), &do_, upstream);
        grads.add(RELATION_TABLE, t.relation.index(), &dth, upstream);
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-vs-score comparisons read better indexed
mod tests {
    use super::*;
    use crate::models::gradcheck::check_gradients;

    #[test]
    fn zero_rotation_reduces_to_translationless_distance() {
        let mut m = RotatE::new(2, 1, 4, 0);
        m.params_mut()
            .table_mut(RELATION_TABLE)
            .row_mut(0)
            .copy_from_slice(&[0.0, 0.0]);
        m.params_mut()
            .table_mut(ENTITY_TABLE)
            .row_mut(0)
            .copy_from_slice(&[1.0, 0.0, 0.0, 0.0]);
        m.params_mut()
            .table_mut(ENTITY_TABLE)
            .row_mut(1)
            .copy_from_slice(&[0.0, 0.0, 0.0, 0.0]);
        // |1 − 0| + |0 − 0| = 1 → score −1.
        assert!((m.score(Triple::new(0u32, 0u32, 1u32)) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn perfect_rotation_scores_zero() {
        // e0 = (1, 0) complex 1+0i; θ = π/2 rotates it to 0+1i = e1.
        let mut m = RotatE::new(2, 1, 2, 0);
        m.params_mut()
            .table_mut(ENTITY_TABLE)
            .row_mut(0)
            .copy_from_slice(&[1.0, 0.0]);
        m.params_mut()
            .table_mut(ENTITY_TABLE)
            .row_mut(1)
            .copy_from_slice(&[0.0, 1.0]);
        m.params_mut()
            .table_mut(RELATION_TABLE)
            .row_mut(0)
            .copy_from_slice(&[std::f32::consts::FRAC_PI_2]);
        assert!(m.score(Triple::new(0u32, 0u32, 1u32)).abs() < 1e-6);
    }

    #[test]
    fn inverse_rotation_models_inverse_relations() {
        // RotatE's selling point: r and −θ model r⁻¹ exactly.
        let m = RotatE::new(4, 1, 6, 3);
        let fwd = m.score(Triple::new(0u32, 0u32, 1u32));
        // Build the inverse model by negating the phases.
        let mut inv = RotatE::new(4, 1, 6, 3);
        for p in inv.params_mut().table_mut(RELATION_TABLE).data_mut() {
            *p = -*p;
        }
        let bwd = inv.score(Triple::new(1u32, 0u32, 0u32));
        assert!((fwd - bwd).abs() < 1e-5, "{fwd} vs {bwd}");
    }

    #[test]
    fn batched_kernels_match_pointwise_scores() {
        let m = RotatE::new(5, 2, 6, 7);
        let mut out = vec![0.0; 5];
        m.score_objects(EntityId(1), RelationId(0), &mut out);
        for e in 0..5 {
            assert!((out[e] - m.score(Triple::new(1u32, 0u32, e as u32))).abs() < 1e-5);
        }
        m.score_subjects(RelationId(1), EntityId(3), &mut out);
        for e in 0..5 {
            assert!((out[e] - m.score(Triple::new(e as u32, 1u32, 3u32))).abs() < 1e-5);
        }
    }

    #[test]
    fn gradients_pass_finite_difference_check() {
        let mut m = RotatE::new(4, 2, 8, 11);
        check_gradients(&mut m, Triple::new(0u32, 1u32, 2u32), 1e-2);
        check_gradients(&mut m, Triple::new(3u32, 0u32, 1u32), 1e-2);
    }
}
