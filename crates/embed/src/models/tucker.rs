//! TuckER (Balažević et al. 2019): Tucker decomposition of the binary
//! relation tensor, `f(s, r, o) = W ×₁ r ×₂ s ×₃ o`, i.e.
//!
//! ```text
//! f = Σ_{i,j,k} W[i][j][k] · rᵢ · sⱼ · oₖ
//! ```
//!
//! with a shared core tensor `W ∈ ℝ^{d×d×d}` (we tie the relation and entity
//! widths). The core lets relations share interaction structure — TuckER
//! subsumes RESCAL/DistMult/ComplEx as special cases. Library extension,
//! not in the paper's grid.
//!
//! Gradients are the obvious trilinear contractions:
//! `∂f/∂rᵢ = Σ_{j,k} W[i][j][k] sⱼ oₖ`, and symmetrically for `s`, `o`;
//! `∂f/∂W[i][j][k] = rᵢ sⱼ oₖ`. Batched kernels contract `W` with the two
//! fixed vectors into a query vector first (O(d³)), then dot every entity.

use crate::math::dot;
use crate::{
    init, Gradients, KgeModel, ModelConfig, ModelKind, ParamTable, Parameters, ENTITY_TABLE,
    RELATION_TABLE,
};
use kgfd_kg::{EntityId, RelationId, Triple};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Index of the core-tensor table (a single `d³`-wide row).
pub const CORE_TABLE: usize = 2;

/// The TuckER model.
pub struct TuckEr {
    params: Parameters,
    num_entities: usize,
    num_relations: usize,
    dim: usize,
}

impl TuckEr {
    /// Creates a Xavier-initialized TuckER model. Core size is `dim³`, so
    /// keep `dim` moderate (≤ 64).
    pub fn new(num_entities: usize, num_relations: usize, dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut entities = ParamTable::zeros(num_entities, dim);
        let mut relations = ParamTable::zeros(num_relations, dim);
        let mut core = ParamTable::zeros(1, dim * dim * dim);
        init::xavier_uniform(&mut entities, &mut rng);
        init::xavier_uniform(&mut relations, &mut rng);
        // The core contracts three vectors; a tighter init keeps early
        // scores at a trainable magnitude.
        init::uniform(&mut core, &mut rng, 1.0 / dim as f32);
        TuckEr {
            params: Parameters::new(vec![entities, relations, core]),
            num_entities,
            num_relations,
            dim,
        }
    }

    #[inline]
    fn entity(&self, e: EntityId) -> &[f32] {
        self.params.table(ENTITY_TABLE).row(e.index())
    }

    #[inline]
    fn relation(&self, r: RelationId) -> &[f32] {
        self.params.table(RELATION_TABLE).row(r.index())
    }

    #[inline]
    fn core(&self) -> &[f32] {
        self.params.table(CORE_TABLE).row(0)
    }

    /// `out[k] = Σ_{i,j} W[i][j][k] rᵢ sⱼ` — the object-side query.
    fn contract_rs(&self, r: &[f32], s: &[f32], out: &mut [f32]) {
        let d = self.dim;
        let w = self.core();
        out.fill(0.0);
        for (i, &ri) in r.iter().enumerate() {
            if ri == 0.0 {
                continue;
            }
            for (j, &sj) in s.iter().enumerate() {
                let c = ri * sj;
                let base = (i * d + j) * d;
                crate::math::add_scaled(out, &w[base..base + d], c);
            }
        }
    }

    /// `out[j] = Σ_{i,k} W[i][j][k] rᵢ oₖ` — the subject-side query.
    fn contract_ro(&self, r: &[f32], o: &[f32], out: &mut [f32]) {
        let d = self.dim;
        let w = self.core();
        for (j, slot) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (i, &ri) in r.iter().enumerate() {
                if ri == 0.0 {
                    continue;
                }
                let base = (i * d + j) * d;
                acc += ri * dot(&w[base..base + d], o);
            }
            *slot = acc;
        }
    }

    /// `out[i] = Σ_{j,k} W[i][j][k] sⱼ oₖ` — the relation gradient.
    fn contract_so(&self, s: &[f32], o: &[f32], out: &mut [f32]) {
        let d = self.dim;
        let w = self.core();
        for (i, slot) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (j, &sj) in s.iter().enumerate() {
                if sj == 0.0 {
                    continue;
                }
                let base = (i * d + j) * d;
                acc += sj * dot(&w[base..base + d], o);
            }
            *slot = acc;
        }
    }

    fn dot_all_entities(&self, query: &[f32], out: &mut [f32]) {
        for (e, slot) in out.iter_mut().enumerate() {
            *slot = dot(query, self.entity(EntityId(e as u32)));
        }
    }
}

impl KgeModel for TuckEr {
    fn kind(&self) -> ModelKind {
        ModelKind::TuckEr
    }

    fn num_entities(&self) -> usize {
        self.num_entities
    }

    fn num_relations(&self) -> usize {
        self.num_relations
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn config(&self) -> ModelConfig {
        ModelConfig {
            kind: self.kind(),
            num_entities: self.num_entities(),
            num_relations: self.num_relations(),
            dim: self.dim(),
            distance: None,
        }
    }

    fn params(&self) -> &Parameters {
        &self.params
    }

    fn params_mut(&mut self) -> &mut Parameters {
        &mut self.params
    }

    fn score(&self, t: Triple) -> f32 {
        let mut query = vec![0.0; self.dim];
        self.contract_rs(
            self.relation(t.relation),
            self.entity(t.subject),
            &mut query,
        );
        dot(&query, self.entity(t.object))
    }

    fn score_objects(&self, s: EntityId, r: RelationId, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.num_entities);
        let mut query = vec![0.0; self.dim];
        self.contract_rs(self.relation(r), self.entity(s), &mut query);
        self.dot_all_entities(&query, out);
    }

    fn score_subjects(&self, r: RelationId, o: EntityId, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.num_entities);
        let mut query = vec![0.0; self.dim];
        self.contract_ro(self.relation(r), self.entity(o), &mut query);
        self.dot_all_entities(&query, out);
    }

    fn backward(&self, t: Triple, upstream: f32, grads: &mut Gradients) {
        let d = self.dim;
        let s = self.entity(t.subject);
        let r = self.relation(t.relation);
        let o = self.entity(t.object);

        let mut buf = vec![0.0; d];
        self.contract_ro(r, o, &mut buf); // ∂f/∂s
        grads.add(ENTITY_TABLE, t.subject.index(), &buf, upstream);
        self.contract_so(s, o, &mut buf); // ∂f/∂r
        grads.add(RELATION_TABLE, t.relation.index(), &buf, upstream);
        self.contract_rs(r, s, &mut buf); // ∂f/∂o
        grads.add(ENTITY_TABLE, t.object.index(), &buf, upstream);

        // ∂f/∂W[i][j][k] = rᵢ sⱼ oₖ.
        let slot = grads.slot(CORE_TABLE, 0, d * d * d);
        for (i, &ri) in r.iter().enumerate() {
            if ri == 0.0 {
                continue;
            }
            for (j, &sj) in s.iter().enumerate() {
                let c = upstream * ri * sj;
                if c == 0.0 {
                    continue;
                }
                let base = (i * d + j) * d;
                crate::math::add_scaled(&mut slot[base..base + d], o, c);
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-vs-score comparisons read better indexed
mod tests {
    use super::*;
    use crate::models::gradcheck::check_gradients;

    #[test]
    fn identity_like_core_reduces_to_distmult() {
        // W[i][j][k] = 1 iff i == j == k reduces f to Σ rᵢ sᵢ oᵢ.
        let d = 3;
        let mut m = TuckEr::new(2, 1, d, 0);
        let core = m.params_mut().table_mut(CORE_TABLE).row_mut(0);
        core.fill(0.0);
        for i in 0..d {
            core[(i * d + i) * d + i] = 1.0;
        }
        m.params_mut()
            .table_mut(ENTITY_TABLE)
            .row_mut(0)
            .copy_from_slice(&[1.0, 2.0, 3.0]);
        m.params_mut()
            .table_mut(ENTITY_TABLE)
            .row_mut(1)
            .copy_from_slice(&[4.0, 5.0, 6.0]);
        m.params_mut()
            .table_mut(RELATION_TABLE)
            .row_mut(0)
            .copy_from_slice(&[1.0, 0.0, -1.0]);
        // Σ rᵢ sᵢ oᵢ = 1·1·4 + 0 + (−1)·3·6 = −14.
        assert!((m.score(Triple::new(0u32, 0u32, 1u32)) + 14.0).abs() < 1e-5);
    }

    #[test]
    fn batched_kernels_match_pointwise_scores() {
        let m = TuckEr::new(5, 2, 4, 7);
        let mut out = vec![0.0; 5];
        m.score_objects(EntityId(1), RelationId(0), &mut out);
        for e in 0..5 {
            assert!((out[e] - m.score(Triple::new(1u32, 0u32, e as u32))).abs() < 1e-4);
        }
        m.score_subjects(RelationId(1), EntityId(3), &mut out);
        for e in 0..5 {
            assert!((out[e] - m.score(Triple::new(e as u32, 1u32, 3u32))).abs() < 1e-4);
        }
    }

    #[test]
    fn gradients_pass_finite_difference_check() {
        let mut m = TuckEr::new(4, 2, 4, 11);
        check_gradients(&mut m, Triple::new(0u32, 1u32, 2u32), 2e-2);
        check_gradients(&mut m, Triple::new(3u32, 0u32, 3u32), 2e-2);
    }

    #[test]
    fn core_gradient_covers_all_cells() {
        let m = TuckEr::new(3, 1, 3, 5);
        let mut g = Gradients::new();
        m.backward(Triple::new(0u32, 0u32, 1u32), 1.0, &mut g);
        let core_grad = g.get(CORE_TABLE, 0).expect("core touched");
        assert_eq!(core_grad.len(), 27);
        assert!(core_grad.iter().any(|&v| v != 0.0));
    }
}
