//! ConvE-lite (after Dettmers et al. 2018): the convolutional scorer used by
//! the paper's experimental grid, in the simplified form documented in
//! DESIGN.md (no batch-norm or dropout; LibKGE-style reciprocal relations).
//!
//! Forward pass for `score(s, r, o)`:
//! 1. reshape `s` and `r` (each `l = h × w`) and stack them into a
//!    `2h × w` "image";
//! 2. convolve with `F` 3×3 filters (valid padding) → `F × (2h−2) × (w−2)`
//!    feature maps, ReLU;
//! 3. flatten to `z` and project with a fully-connected matrix
//!    `W ∈ ℝ^{|z| × l}` → `v`, ReLU;
//! 4. `score = relu(v) · o`.
//!
//! Subject-side queries `(?, r, o)` are scored through the reciprocal
//! relation `r + K` as `score(o, r + K, ?)` — which is also why the model is
//! trained on reciprocal-augmented triples with object corruption only
//! (`KgeModel::reciprocal`). This keeps subject ranking a single forward
//! pass plus `N` dot products instead of `N` convolutions.
//!
//! The backward pass is standard backprop through the four stages, written
//! out by hand and covered by the finite-difference check.

use crate::math::dot;
use crate::{
    init, Gradients, KgeModel, ModelConfig, ModelKind, ParamTable, Parameters, ENTITY_TABLE,
    RELATION_TABLE,
};
use kgfd_kg::{EntityId, RelationId, Triple};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Index of the convolution-filter table (one row per filter, 9 columns).
pub const FILTER_TABLE: usize = 2;
/// Index of the fully-connected table (`hidden` rows × `l` columns).
pub const FC_TABLE: usize = 3;

const KERNEL: usize = 3;
const FILTERS: usize = 8;

/// The ConvE-lite model.
pub struct ConvE {
    params: Parameters,
    num_entities: usize,
    /// Logical relation count; the relation table has `2 × num_relations`
    /// rows (forward + reciprocal).
    num_relations: usize,
    dim: usize,
    /// Reshape height of one embedding (image is `2h × w`).
    h: usize,
    w: usize,
}

/// Intermediate activations cached for the backward pass.
struct Forward {
    /// Stacked input image, row-major `2h × w`.
    image: Vec<f32>,
    /// Pre-ReLU conv outputs, `F × oh × ow` flattened.
    conv: Vec<f32>,
    /// Post-ReLU conv outputs.
    z: Vec<f32>,
    /// Pre-ReLU FC outputs, length `l`.
    v: Vec<f32>,
    /// Post-ReLU FC outputs (the entity-side query vector).
    vr: Vec<f32>,
}

impl ConvE {
    /// Creates a Xavier-initialized ConvE model. `dim` must factor as
    /// `h × w` with `h ≥ 2`, `w ≥ 3` (see [`reshape`](Self::reshape_dims)).
    pub fn new(num_entities: usize, num_relations: usize, dim: usize, seed: u64) -> Self {
        let (h, w) = Self::reshape_dims(dim)
            .unwrap_or_else(|| panic!("ConvE cannot reshape dim {dim} into h×w with h≥2, w≥3"));
        let (oh, ow) = (2 * h - KERNEL + 1, w - KERNEL + 1);
        let hidden = FILTERS * oh * ow;

        let mut rng = StdRng::seed_from_u64(seed);
        let mut entities = ParamTable::zeros(num_entities, dim);
        let mut relations = ParamTable::zeros(2 * num_relations, dim);
        let mut filters = ParamTable::zeros(FILTERS, KERNEL * KERNEL);
        let mut fc = ParamTable::zeros(hidden, dim);
        init::xavier_uniform(&mut entities, &mut rng);
        init::xavier_uniform(&mut relations, &mut rng);
        init::xavier_uniform(&mut filters, &mut rng);
        init::xavier_uniform(&mut fc, &mut rng);

        ConvE {
            params: Parameters::new(vec![entities, relations, filters, fc]),
            num_entities,
            num_relations,
            dim,
            h,
            w,
        }
    }

    /// Picks the squarest `h × w = dim` factorization with `h ≥ 2`, `w ≥ 3`.
    pub fn reshape_dims(dim: usize) -> Option<(usize, usize)> {
        let mut best = None;
        for h in 2..=dim {
            if h * h > dim {
                break;
            }
            if dim.is_multiple_of(h) && dim / h >= KERNEL {
                best = Some((h, dim / h));
            }
        }
        best
    }

    #[inline]
    fn entity(&self, e: EntityId) -> &[f32] {
        self.params.table(ENTITY_TABLE).row(e.index())
    }

    #[inline]
    fn relation_row(&self, r: usize) -> &[f32] {
        self.params.table(RELATION_TABLE).row(r)
    }

    fn out_dims(&self) -> (usize, usize) {
        (2 * self.h - KERNEL + 1, self.w - KERNEL + 1)
    }

    fn forward(&self, s: &[f32], r: &[f32]) -> Forward {
        let (ih, iw) = (2 * self.h, self.w);
        let (oh, ow) = self.out_dims();
        let mut image = Vec::with_capacity(ih * iw);
        image.extend_from_slice(s);
        image.extend_from_slice(r);

        let filters = self.params.table(FILTER_TABLE);
        let mut conv = vec![0.0f32; FILTERS * oh * ow];
        for f in 0..FILTERS {
            let k = filters.row(f);
            for y in 0..oh {
                for x in 0..ow {
                    let mut acc = 0.0;
                    for dy in 0..KERNEL {
                        let row = &image[(y + dy) * iw + x..(y + dy) * iw + x + KERNEL];
                        let krow = &k[dy * KERNEL..dy * KERNEL + KERNEL];
                        acc += row[0] * krow[0] + row[1] * krow[1] + row[2] * krow[2];
                    }
                    conv[(f * oh + y) * ow + x] = acc;
                }
            }
        }
        let z: Vec<f32> = conv.iter().map(|&c| c.max(0.0)).collect();

        let fc = self.params.table(FC_TABLE);
        let mut v = vec![0.0f32; self.dim];
        for (m, &zm) in z.iter().enumerate() {
            if zm != 0.0 {
                crate::math::add_scaled(&mut v, fc.row(m), zm);
            }
        }
        let vr: Vec<f32> = v.iter().map(|&x| x.max(0.0)).collect();
        Forward {
            image,
            conv,
            z,
            v,
            vr,
        }
    }

    fn query(&self, s: EntityId, relation_row: usize) -> Vec<f32> {
        self.forward(self.entity(s), self.relation_row(relation_row))
            .vr
    }

    fn dot_all_entities(&self, query: &[f32], out: &mut [f32]) {
        for (e, slot) in out.iter_mut().enumerate() {
            *slot = dot(query, self.entity(EntityId(e as u32)));
        }
    }
}

impl KgeModel for ConvE {
    fn kind(&self) -> ModelKind {
        ModelKind::ConvE
    }

    fn num_entities(&self) -> usize {
        self.num_entities
    }

    fn num_relations(&self) -> usize {
        self.num_relations
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn config(&self) -> ModelConfig {
        ModelConfig {
            kind: self.kind(),
            num_entities: self.num_entities(),
            num_relations: self.num_relations(),
            dim: self.dim(),
            distance: None,
        }
    }

    fn params(&self) -> &Parameters {
        &self.params
    }

    fn params_mut(&mut self) -> &mut Parameters {
        &mut self.params
    }

    fn score(&self, t: Triple) -> f32 {
        // Training triples may carry reciprocal relation ids in K..2K.
        let q = self.query(t.subject, t.relation.index());
        dot(&q, self.entity(t.object))
    }

    fn score_objects(&self, s: EntityId, r: RelationId, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.num_entities);
        let q = self.query(s, r.index());
        self.dot_all_entities(&q, out);
    }

    fn score_subjects(&self, r: RelationId, o: EntityId, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.num_entities);
        // (?, r, o) through the reciprocal path: score(o, r + K, ?).
        let q = self.query(o, self.num_relations + r.index());
        self.dot_all_entities(&q, out);
    }

    fn backward(&self, t: Triple, upstream: f32, grads: &mut Gradients) {
        let (ih, iw) = (2 * self.h, self.w);
        let (oh, ow) = self.out_dims();
        let s = self.entity(t.subject);
        let r = self.relation_row(t.relation.index());
        let o = self.entity(t.object);
        let fwd = self.forward(s, r);

        // score = relu(v) · o
        grads.add(ENTITY_TABLE, t.object.index(), &fwd.vr, upstream);
        let dv: Vec<f32> = fwd
            .v
            .iter()
            .zip(o)
            .map(|(&vj, &oj)| if vj > 0.0 { oj * upstream } else { 0.0 })
            .collect();

        // v = Σ_m z_m W_m  →  dW_m = z_m dv,  dz_m = W_m · dv
        let fc = self.params.table(FC_TABLE);
        let mut dc = vec![0.0f32; fwd.z.len()];
        for (m, &zm) in fwd.z.iter().enumerate() {
            if zm != 0.0 {
                grads.add(FC_TABLE, m, &dv, zm);
            }
            if fwd.conv[m] > 0.0 {
                dc[m] = dot(fc.row(m), &dv);
            }
        }

        // Convolution backward: filters and image.
        let mut dimage = vec![0.0f32; ih * iw];
        for f in 0..FILTERS {
            let k = self.params.table(FILTER_TABLE).row(f);
            let dk = grads.slot(FILTER_TABLE, f, KERNEL * KERNEL);
            for y in 0..oh {
                for x in 0..ow {
                    let g = dc[(f * oh + y) * ow + x];
                    if g == 0.0 {
                        continue;
                    }
                    for dy in 0..KERNEL {
                        for dx in 0..KERNEL {
                            dk[dy * KERNEL + dx] += g * fwd.image[(y + dy) * iw + x + dx];
                        }
                    }
                }
            }
            // Second pass for the image gradient (dk borrow released above).
            for y in 0..oh {
                for x in 0..ow {
                    let g = dc[(f * oh + y) * ow + x];
                    if g == 0.0 {
                        continue;
                    }
                    for dy in 0..KERNEL {
                        for dx in 0..KERNEL {
                            dimage[(y + dy) * iw + x + dx] += g * k[dy * KERNEL + dx];
                        }
                    }
                }
            }
        }

        let half = self.h * self.w;
        grads.add(ENTITY_TABLE, t.subject.index(), &dimage[..half], 1.0);
        grads.add(RELATION_TABLE, t.relation.index(), &dimage[half..], 1.0);
    }

    fn reciprocal(&self) -> bool {
        true
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-vs-score comparisons read better indexed
mod tests {
    use super::*;
    use crate::models::gradcheck::check_gradients;

    #[test]
    fn reshape_prefers_squarest_factorization() {
        assert_eq!(ConvE::reshape_dims(32), Some((4, 8)));
        assert_eq!(ConvE::reshape_dims(64), Some((8, 8)));
        assert_eq!(ConvE::reshape_dims(12), Some((3, 4)));
        assert_eq!(ConvE::reshape_dims(7), None, "prime dims cannot reshape");
    }

    #[test]
    fn score_is_finite_and_model_shaped() {
        let m = ConvE::new(6, 3, 12, 0);
        assert_eq!(m.num_relations(), 3);
        assert_eq!(m.params().table(RELATION_TABLE).rows(), 6, "2K rows");
        let f = m.score(Triple::new(0u32, 1u32, 2u32));
        assert!(f.is_finite());
    }

    #[test]
    fn batched_object_kernel_matches_pointwise_scores() {
        let m = ConvE::new(5, 2, 12, 7);
        let mut out = vec![0.0; 5];
        m.score_objects(EntityId(1), RelationId(0), &mut out);
        for e in 0..5 {
            assert!((out[e] - m.score(Triple::new(1u32, 0u32, e as u32))).abs() < 1e-5);
        }
    }

    #[test]
    fn subject_kernel_uses_reciprocal_path() {
        let m = ConvE::new(5, 2, 12, 7);
        let mut out = vec![0.0; 5];
        m.score_subjects(RelationId(1), EntityId(3), &mut out);
        // Must equal scoring (3, r + K, e) on the forward path.
        for e in 0..5 {
            let recip = m.score(Triple::new(3u32, (2 + 1) as u32, e as u32));
            assert!((out[e] - recip).abs() < 1e-5);
        }
    }

    #[test]
    fn gradients_pass_finite_difference_check() {
        // ReLU kinks make finite differences noisy near zero activations;
        // the fixed seeds below keep activations away from kinks.
        let mut m = ConvE::new(4, 2, 12, 11);
        check_gradients(&mut m, Triple::new(0u32, 1u32, 2u32), 5e-2);
    }

    #[test]
    fn gradients_cover_reciprocal_relation_rows() {
        let m = ConvE::new(4, 2, 12, 3);
        let mut g = Gradients::new();
        // Relation id 3 = reciprocal row of logical relation 1 (K = 2).
        m.backward(Triple::new(0u32, 3u32, 1u32), 1.0, &mut g);
        assert!(g.get(RELATION_TABLE, 3).is_some());
    }
}
