//! TransE (Bordes et al. 2013): `f(s, r, o) = −d(s + r, o)`.
//!
//! Gradients (for `d = s + r − o`):
//! * L2: `∂f/∂s = ∂f/∂r = −d/‖d‖`, `∂f/∂o = +d/‖d‖` (zero at `d = 0`);
//! * L1: `∂f/∂s = ∂f/∂r = −sign(d)`, `∂f/∂o = +sign(d)`.
//!
//! Batched kernels exploit that both queries reduce to "distance from each
//! entity row to a fixed point": `score_objects` measures to `s + r`,
//! `score_subjects` to `o − r`.

use crate::math::{add_scaled, l1_distance, l2_distance};
use crate::{
    init, Gradients, KgeModel, ModelConfig, ModelKind, ParamTable, Parameters, ENTITY_TABLE,
    RELATION_TABLE,
};
use kgfd_kg::{EntityId, RelationId, Triple};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Distance measure of the TransE scoring function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Distance {
    /// Manhattan distance (the common default for TransE).
    L1,
    /// Euclidean distance.
    L2,
}

/// The TransE model.
pub struct TransE {
    params: Parameters,
    num_entities: usize,
    num_relations: usize,
    dim: usize,
    distance: Distance,
}

impl TransE {
    /// Creates a Xavier-initialized TransE model.
    pub fn new(
        num_entities: usize,
        num_relations: usize,
        dim: usize,
        distance: Distance,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut entities = ParamTable::zeros(num_entities, dim);
        let mut relations = ParamTable::zeros(num_relations, dim);
        init::xavier_uniform(&mut entities, &mut rng);
        init::xavier_uniform(&mut relations, &mut rng);
        TransE {
            params: Parameters::new(vec![entities, relations]),
            num_entities,
            num_relations,
            dim,
            distance,
        }
    }

    /// The configured distance measure.
    pub fn distance(&self) -> Distance {
        self.distance
    }

    #[inline]
    fn entity(&self, e: EntityId) -> &[f32] {
        self.params.table(ENTITY_TABLE).row(e.index())
    }

    #[inline]
    fn relation(&self, r: RelationId) -> &[f32] {
        self.params.table(RELATION_TABLE).row(r.index())
    }

    fn neg_distance_to(&self, point: &[f32], e: EntityId) -> f32 {
        let row = self.entity(e);
        match self.distance {
            Distance::L1 => -l1_distance(row, point),
            Distance::L2 => -l2_distance(row, point),
        }
    }
}

impl KgeModel for TransE {
    fn kind(&self) -> ModelKind {
        ModelKind::TransE
    }

    fn num_entities(&self) -> usize {
        self.num_entities
    }

    fn num_relations(&self) -> usize {
        self.num_relations
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn config(&self) -> ModelConfig {
        ModelConfig {
            kind: self.kind(),
            num_entities: self.num_entities(),
            num_relations: self.num_relations(),
            dim: self.dim(),
            distance: Some(self.distance),
        }
    }

    fn params(&self) -> &Parameters {
        &self.params
    }

    fn params_mut(&mut self) -> &mut Parameters {
        &mut self.params
    }

    fn score(&self, t: Triple) -> f32 {
        let s = self.entity(t.subject);
        let r = self.relation(t.relation);
        let o = self.entity(t.object);
        match self.distance {
            Distance::L1 => -s
                .iter()
                .zip(r)
                .zip(o)
                .map(|((a, b), c)| (a + b - c).abs())
                .sum::<f32>(),
            Distance::L2 => -s
                .iter()
                .zip(r)
                .zip(o)
                .map(|((a, b), c)| {
                    let d = a + b - c;
                    d * d
                })
                .sum::<f32>()
                .sqrt(),
        }
    }

    fn score_objects(&self, s: EntityId, r: RelationId, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.num_entities);
        let mut point = self.entity(s).to_vec();
        add_scaled(&mut point, self.relation(r), 1.0);
        for (e, slot) in out.iter_mut().enumerate() {
            *slot = self.neg_distance_to(&point, EntityId(e as u32));
        }
    }

    fn score_subjects(&self, r: RelationId, o: EntityId, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.num_entities);
        let mut point = self.entity(o).to_vec();
        add_scaled(&mut point, self.relation(r), -1.0);
        for (e, slot) in out.iter_mut().enumerate() {
            *slot = self.neg_distance_to(&point, EntityId(e as u32));
        }
    }

    fn score_objects_batch(&self, queries: &[(EntityId, RelationId)], out: &mut [f32]) {
        debug_assert_eq!(out.len(), queries.len() * self.num_entities);
        let mut points = vec![0.0; queries.len() * self.dim];
        for (point, &(s, r)) in points.chunks_mut(self.dim).zip(queries) {
            point.copy_from_slice(self.entity(s));
            add_scaled(point, self.relation(r), 1.0);
        }
        let entities = self.params.table(ENTITY_TABLE);
        match self.distance {
            Distance::L1 => crate::batch::neg_l1_sweep(entities, &points, self.dim, out),
            Distance::L2 => crate::batch::neg_l2_sweep(entities, &points, self.dim, out),
        }
    }

    fn score_subjects_batch(&self, queries: &[(RelationId, EntityId)], out: &mut [f32]) {
        debug_assert_eq!(out.len(), queries.len() * self.num_entities);
        let mut points = vec![0.0; queries.len() * self.dim];
        for (point, &(r, o)) in points.chunks_mut(self.dim).zip(queries) {
            point.copy_from_slice(self.entity(o));
            add_scaled(point, self.relation(r), -1.0);
        }
        let entities = self.params.table(ENTITY_TABLE);
        match self.distance {
            Distance::L1 => crate::batch::neg_l1_sweep(entities, &points, self.dim, out),
            Distance::L2 => crate::batch::neg_l2_sweep(entities, &points, self.dim, out),
        }
    }

    fn backward(&self, t: Triple, upstream: f32, grads: &mut Gradients) {
        let s = self.entity(t.subject);
        let r = self.relation(t.relation);
        let o = self.entity(t.object);
        let mut d: Vec<f32> = s
            .iter()
            .zip(r)
            .zip(o)
            .map(|((a, b), c)| a + b - c)
            .collect();
        match self.distance {
            Distance::L1 => {
                for v in &mut d {
                    *v = v.signum();
                }
            }
            Distance::L2 => {
                let norm = crate::math::norm2_sq(&d).sqrt();
                if norm < 1e-12 {
                    return;
                }
                for v in &mut d {
                    *v /= norm;
                }
            }
        }
        // f = −‖d‖ → ∂f/∂s = −unit(d), ∂f/∂o = +unit(d).
        grads.add(ENTITY_TABLE, t.subject.index(), &d, -upstream);
        grads.add(RELATION_TABLE, t.relation.index(), &d, -upstream);
        grads.add(ENTITY_TABLE, t.object.index(), &d, upstream);
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index-vs-score comparisons read better indexed
mod tests {
    use super::*;
    use crate::models::gradcheck::check_gradients;

    fn set_rows(m: &mut TransE) {
        m.params_mut()
            .table_mut(ENTITY_TABLE)
            .row_mut(0)
            .copy_from_slice(&[1.0, 0.0]);
        m.params_mut()
            .table_mut(ENTITY_TABLE)
            .row_mut(1)
            .copy_from_slice(&[1.0, 2.0]);
        m.params_mut()
            .table_mut(RELATION_TABLE)
            .row_mut(0)
            .copy_from_slice(&[0.0, 2.0]);
    }

    #[test]
    fn perfect_translation_scores_zero() {
        let mut m = TransE::new(3, 1, 2, Distance::L2, 0);
        set_rows(&mut m);
        // s + r = (1, 2) = o → distance 0 → score 0 (maximum).
        assert!((m.score(Triple::new(0u32, 0u32, 1u32)) - 0.0).abs() < 1e-6);
        assert!(m.score(Triple::new(0u32, 0u32, 2u32)) < 0.0);
    }

    #[test]
    fn l1_score_matches_hand_computation() {
        let mut m = TransE::new(3, 1, 2, Distance::L1, 0);
        set_rows(&mut m);
        m.params_mut()
            .table_mut(ENTITY_TABLE)
            .row_mut(2)
            .copy_from_slice(&[0.0, 0.0]);
        // |1+0−0| + |0+2−0| = 3 → score −3.
        assert!((m.score(Triple::new(0u32, 0u32, 2u32)) + 3.0).abs() < 1e-6);
    }

    #[test]
    fn batched_kernels_match_pointwise_scores() {
        let m = TransE::new(5, 2, 4, Distance::L2, 7);
        let mut out = vec![0.0; 5];
        m.score_objects(EntityId(1), RelationId(0), &mut out);
        for e in 0..5 {
            let direct = m.score(Triple::new(1u32, 0u32, e as u32));
            assert!((out[e] - direct).abs() < 1e-5);
        }
        m.score_subjects(RelationId(1), EntityId(3), &mut out);
        for e in 0..5 {
            let direct = m.score(Triple::new(e as u32, 1u32, 3u32));
            assert!((out[e] - direct).abs() < 1e-5);
        }
    }

    #[test]
    fn l2_gradients_pass_finite_difference_check() {
        let mut m = TransE::new(4, 2, 6, Distance::L2, 11);
        check_gradients(&mut m, Triple::new(0u32, 1u32, 2u32), 1e-2);
    }

    #[test]
    fn l1_gradients_pass_finite_difference_check() {
        // L1 is only subdifferentiable; seeded init keeps components far
        // from zero so finite differences are valid.
        let mut m = TransE::new(4, 2, 6, Distance::L1, 13);
        check_gradients(&mut m, Triple::new(1u32, 0u32, 3u32), 1e-2);
    }

    #[test]
    fn self_loop_gradient_cancels_on_entity() {
        // For t = (e, r, e) with L2: ∂f/∂e = −u + u = 0.
        let m = TransE::new(3, 1, 4, Distance::L2, 3);
        let mut g = Gradients::new();
        m.backward(Triple::new(0u32, 0u32, 0u32), 1.0, &mut g);
        let ge = g.get(ENTITY_TABLE, 0).unwrap();
        assert!(ge.iter().all(|v| v.abs() < 1e-6));
        // keep m alive for params access
        let _ = m.params();
    }
}
