//! Dense `f32` vector kernels used by every scoring function.
//!
//! Kept as free functions over slices so they inline and auto-vectorize; the
//! Rust Performance Book's guidance on tight loops applies — no bounds checks
//! survive in release builds thanks to the explicit `zip`s.

/// Dot product `Σ aᵢ bᵢ`.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `out[i] += alpha * x[i]` (axpy).
#[inline]
pub fn add_scaled(out: &mut [f32], x: &[f32], alpha: f32) {
    debug_assert_eq!(out.len(), x.len());
    for (o, v) in out.iter_mut().zip(x) {
        *o += alpha * v;
    }
}

/// Elementwise product into `out`: `out[i] = a[i] * b[i]`.
#[inline]
pub fn hadamard(out: &mut [f32], a: &[f32], b: &[f32]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(out.len(), a.len());
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x * y;
    }
}

/// Squared L2 norm `Σ aᵢ²`.
#[inline]
pub fn norm2_sq(a: &[f32]) -> f32 {
    a.iter().map(|x| x * x).sum()
}

/// L2 distance `‖a − b‖₂`.
#[inline]
pub fn l2_distance(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f32>()
        .sqrt()
}

/// L1 distance `Σ |aᵢ − bᵢ|`.
#[inline]
pub fn l1_distance(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Scales `a` to unit L2 norm in place; zero vectors are left unchanged.
#[inline]
pub fn normalize_l2(a: &mut [f32]) {
    let n = norm2_sq(a).sqrt();
    if n > 0.0 {
        let inv = 1.0 / n;
        for v in a {
            *v *= inv;
        }
    }
}

/// Numerically stable `log(1 + e^x)`.
#[inline]
pub fn softplus(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        (1.0 + x.exp()).ln()
    }
}

/// Logistic sigmoid `1 / (1 + e^{−x})`, saturating stably.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_axpy() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        let mut out = vec![1.0, 1.0];
        add_scaled(&mut out, &[2.0, 3.0], 0.5);
        assert_eq!(out, vec![2.0, 2.5]);
    }

    #[test]
    fn distances() {
        assert_eq!(l2_distance(&[0.0, 3.0], &[4.0, 0.0]), 5.0);
        assert_eq!(l1_distance(&[0.0, 3.0], &[4.0, 0.0]), 7.0);
    }

    #[test]
    fn hadamard_products() {
        let mut out = vec![0.0; 3];
        hadamard(&mut out, &[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]);
        assert_eq!(out, vec![4.0, 10.0, 18.0]);
    }

    #[test]
    fn normalization() {
        let mut v = vec![3.0, 4.0];
        normalize_l2(&mut v);
        assert!((norm2_sq(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize_l2(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn softplus_is_stable_and_accurate() {
        assert!((softplus(0.0) - std::f32::consts::LN_2).abs() < 1e-6);
        assert_eq!(softplus(50.0), 50.0);
        assert!(softplus(-50.0) < 1e-20);
    }

    #[test]
    fn sigmoid_matches_identity() {
        for x in [-5.0f32, -1.0, 0.0, 1.0, 5.0] {
            assert!((sigmoid(x) + sigmoid(-x) - 1.0).abs() < 1e-6);
        }
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    }
}
