//! Embedding initialization.

use crate::ParamTable;
use rand::rngs::StdRng;
use rand::Rng;

/// Fills a table with Xavier/Glorot-uniform values: `U(−b, b)` with
/// `b = √(6 / (fan_in + fan_out))`, using the row width for both fans —
/// the standard initialization for embedding lookups.
pub fn xavier_uniform(table: &mut ParamTable, rng: &mut StdRng) {
    let fan = table.cols() as f32;
    let bound = (6.0 / (fan + fan)).sqrt();
    for v in table.data_mut() {
        *v = rng.random_range(-bound..bound);
    }
}

/// Fills a table with `U(−bound, bound)`.
pub fn uniform(table: &mut ParamTable, rng: &mut StdRng, bound: f32) {
    for v in table.data_mut() {
        *v = rng.random_range(-bound..bound);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_bound_and_is_seeded() {
        let mut a = ParamTable::zeros(10, 16);
        let mut b = ParamTable::zeros(10, 16);
        xavier_uniform(&mut a, &mut StdRng::seed_from_u64(3));
        xavier_uniform(&mut b, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b, "same seed, same init");
        let bound = (6.0f32 / 32.0).sqrt();
        assert!(a.data().iter().all(|v| v.abs() <= bound));
        assert!(a.data().iter().any(|v| *v != 0.0));
    }

    #[test]
    fn uniform_respects_bound() {
        let mut t = ParamTable::zeros(4, 4);
        uniform(&mut t, &mut StdRng::seed_from_u64(1), 0.01);
        assert!(t.data().iter().all(|v| v.abs() <= 0.01));
    }
}
