//! Training losses and their derivatives with respect to triple scores.

use crate::math::{sigmoid, softplus};
use serde::{Deserialize, Serialize};

/// The loss functions supported by the trainer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LossKind {
    /// Pairwise margin ranking: `max(0, γ − f(pos) + f(neg))`, the TransE
    /// original.
    MarginRanking {
        /// The margin γ.
        margin: f32,
    },
    /// Pointwise binary cross-entropy with logits:
    /// `softplus(−y · f)` for label `y ∈ {−1, +1}` — the LibKGE default for
    /// most models.
    BinaryCrossEntropy,
}

/// Loss value and score-gradients of one (positive, negative) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairLoss {
    /// Loss contribution of the pair.
    pub value: f32,
    /// `∂L/∂f(pos)`.
    pub d_pos: f32,
    /// `∂L/∂f(neg)`.
    pub d_neg: f32,
}

impl LossKind {
    /// Evaluates the loss and its gradients for a positive score `pos` and a
    /// negative score `neg`.
    ///
    /// For the pointwise BCE the "pair" is an accounting device: the positive
    /// contributes `softplus(−pos)` and the negative `softplus(neg)`, each
    /// with its own gradient.
    pub fn pair(&self, pos: f32, neg: f32) -> PairLoss {
        match *self {
            LossKind::MarginRanking { margin } => {
                let slack = margin - pos + neg;
                if slack > 0.0 {
                    PairLoss {
                        value: slack,
                        d_pos: -1.0,
                        d_neg: 1.0,
                    }
                } else {
                    PairLoss {
                        value: 0.0,
                        d_pos: 0.0,
                        d_neg: 0.0,
                    }
                }
            }
            LossKind::BinaryCrossEntropy => PairLoss {
                value: softplus(-pos) + softplus(neg),
                d_pos: -sigmoid(-pos),
                d_neg: sigmoid(neg),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn margin_is_zero_when_separated() {
        let l = LossKind::MarginRanking { margin: 1.0 };
        let p = l.pair(5.0, 1.0);
        assert_eq!(p.value, 0.0);
        assert_eq!(p.d_pos, 0.0);
        assert_eq!(p.d_neg, 0.0);
    }

    #[test]
    fn margin_is_active_inside_the_margin() {
        let l = LossKind::MarginRanking { margin: 1.0 };
        let p = l.pair(1.0, 0.5);
        assert!((p.value - 0.5).abs() < 1e-6);
        assert_eq!(p.d_pos, -1.0);
        assert_eq!(p.d_neg, 1.0);
    }

    #[test]
    fn bce_gradients_match_finite_differences() {
        let l = LossKind::BinaryCrossEntropy;
        let eps = 1e-3;
        for (pos, neg) in [(0.0, 0.0), (2.0, -1.0), (-3.0, 4.0)] {
            let p = l.pair(pos, neg);
            let d_pos_num =
                (l.pair(pos + eps, neg).value - l.pair(pos - eps, neg).value) / (2.0 * eps);
            let d_neg_num =
                (l.pair(pos, neg + eps).value - l.pair(pos, neg - eps).value) / (2.0 * eps);
            assert!(
                (p.d_pos - d_pos_num).abs() < 1e-3,
                "pos grad at ({pos},{neg})"
            );
            assert!(
                (p.d_neg - d_neg_num).abs() < 1e-3,
                "neg grad at ({pos},{neg})"
            );
        }
    }

    #[test]
    fn bce_pushes_scores_apart() {
        let l = LossKind::BinaryCrossEntropy;
        let p = l.pair(0.0, 0.0);
        assert!(p.d_pos < 0.0, "positive score should increase");
        assert!(p.d_neg > 0.0, "negative score should decrease");
    }
}
