//! Property-based tests of the §6 extension features: exploration mixing,
//! consolidated pools, and rule pruning must preserve every discovery
//! invariant under arbitrary graphs and parameters.

use fact_discovery::{discover_facts, CandidateRules, DiscoveryConfig, StrategyKind};
use kgfd_embed::{new_model, ModelKind};
use kgfd_kg::{Triple, TripleStore};
use proptest::prelude::*;

const N: u32 = 10;
const K: u32 = 3;

fn arb_store() -> impl Strategy<Value = TripleStore> {
    proptest::collection::vec((0..N, 0..K, 0..N), 1..60).prop_map(|raw| {
        let triples = raw
            .into_iter()
            .map(|(s, r, o)| Triple::new(s, r, o))
            .collect();
        TripleStore::new(N as usize, K as usize, triples).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn extensions_preserve_novelty_and_topn(
        store in arb_store(),
        epsilon in 0.0f64..1.0,
        consolidate in any::<bool>(),
        prune in any::<bool>(),
        seed in 0u64..100,
    ) {
        let model = new_model(ModelKind::DistMult, N as usize, K as usize, 8, seed);
        let config = DiscoveryConfig {
            strategy: StrategyKind::GraphDegree,
            top_n: 5,
            max_candidates: 25,
            exploration_epsilon: epsilon,
            consolidate_sides: consolidate,
            prune_with_rules: prune,
            seed,
            threads: 1,
            ..DiscoveryConfig::default()
        };
        let report = discover_facts(model.as_ref(), &store, &config);
        let mut seen = std::collections::HashSet::new();
        for fact in &report.facts {
            prop_assert!(!store.contains(&fact.triple));
            prop_assert!(fact.rank >= 1.0 && fact.rank <= 5.0);
            prop_assert!(seen.insert(fact.triple));
        }
        for rel in &report.per_relation {
            prop_assert!(rel.candidates <= 25);
            if !prune {
                prop_assert_eq!(rel.pruned, 0);
            }
        }
    }

    #[test]
    fn pruned_runs_admit_only_rule_compliant_candidates(
        store in arb_store(),
        seed in 0u64..100,
    ) {
        let model = new_model(ModelKind::TransE, N as usize, K as usize, 8, seed);
        let config = DiscoveryConfig {
            strategy: StrategyKind::UniformRandom,
            top_n: usize::MAX >> 1,
            max_candidates: 30,
            prune_with_rules: true,
            seed,
            threads: 1,
            ..DiscoveryConfig::default()
        };
        let report = discover_facts(model.as_ref(), &store, &config);
        let rules = CandidateRules::learn(&store, 5);
        for fact in &report.facts {
            prop_assert!(rules.admits(&store, &fact.triple));
        }
    }

    #[test]
    fn rules_never_reject_observed_structures(store in arb_store()) {
        // A rule mined from the graph must be consistent with it: re-testing
        // each training triple's *pattern* (same relation, fresh entities
        // chosen from the same pools) never violates the self-loop rule for
        // relations that exhibit loops.
        let rules = CandidateRules::learn(&store, 1);
        for t in store.triples() {
            if t.is_loop() {
                // The relation has an observed loop → loops are admitted
                // (unless functionality forbids this specific pair).
                let fresh = Triple::new(t.subject.0, t.relation.0, t.subject.0);
                let _ = rules.admits(&store, &fresh); // must not panic
            }
        }
        prop_assert!(true);
    }
}
