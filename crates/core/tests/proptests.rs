//! Property-based tests of the fact-discovery invariants.

use fact_discovery::{
    compute_weights, discover_facts, normalize_or_uniform, AliasSampler, DiscoveryConfig, Measures,
    StrategyKind,
};
use kgfd_embed::{new_model, ModelKind};
use kgfd_kg::{Side, Triple, TripleStore};
use proptest::prelude::*;

const N: u32 = 10;
const K: u32 = 3;

fn arb_store() -> impl Strategy<Value = TripleStore> {
    proptest::collection::vec((0..N, 0..K, 0..N), 1..60).prop_map(|raw| {
        let triples = raw
            .into_iter()
            .map(|(s, r, o)| Triple::new(s, r, o))
            .collect();
        TripleStore::new(N as usize, K as usize, triples).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn weights_are_a_distribution_for_every_strategy(store in arb_store()) {
        for kind in StrategyKind::ALL {
            let m = Measures::compute(kind, &store);
            for r in store.used_relations() {
                for side in Side::BOTH {
                    let w = compute_weights(kind, &m, store.side_index(r, side));
                    prop_assert!(!w.is_empty());
                    let sum: f64 = w.iter().sum();
                    prop_assert!((sum - 1.0).abs() < 1e-9, "{kind}: {sum}");
                    prop_assert!(w.iter().all(|&x| (0.0..=1.0).contains(&x)));
                }
            }
        }
    }

    #[test]
    fn normalize_or_uniform_always_yields_distribution(
        weights in proptest::collection::vec(0.0f64..10.0, 1..40)
    ) {
        let w = normalize_or_uniform(weights);
        let sum: f64 = w.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn alias_sampler_stays_in_range(
        weights in proptest::collection::vec(0.0f64..10.0, 1..30),
        seed in 0u64..1000
    ) {
        let w = normalize_or_uniform(weights);
        let sampler = AliasSampler::new(&w);
        let mut rng = rand::SeedableRng::seed_from_u64(seed);
        for _ in 0..100 {
            let i = sampler.sample(&mut rng);
            prop_assert!(i < w.len());
            // Never sample a zero-weight item.
            prop_assert!(w[i] > 0.0 || w.iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn discovery_invariants_hold_on_untrained_models(store in arb_store(), seed in 0u64..100) {
        // Even with random embeddings the structural invariants must hold.
        let model = new_model(ModelKind::DistMult, N as usize, K as usize, 8, seed);
        let config = DiscoveryConfig {
            strategy: StrategyKind::EntityFrequency,
            top_n: 5,
            max_candidates: 20,
            seed,
            threads: 1,
            ..DiscoveryConfig::default()
        };
        let report = discover_facts(model.as_ref(), &store, &config);
        let mut seen = std::collections::HashSet::new();
        for fact in &report.facts {
            prop_assert!(!store.contains(&fact.triple), "facts must be novel");
            prop_assert!(fact.rank >= 1.0 && fact.rank <= N as f64);
            prop_assert!(fact.rank <= 5.0, "top_n filter");
            prop_assert!(seen.insert(fact.triple), "facts must be unique");
        }
        for rel in &report.per_relation {
            prop_assert!(rel.candidates <= 20);
            prop_assert!(rel.facts <= rel.candidates);
            prop_assert!(rel.iterations <= 5);
        }
        prop_assert!(report.mrr() <= 1.0);
    }

    #[test]
    fn sampled_entities_come_from_relation_pools(store in arb_store(), seed in 0u64..50) {
        let model = new_model(ModelKind::TransE, N as usize, K as usize, 8, seed);
        let config = DiscoveryConfig {
            strategy: StrategyKind::GraphDegree,
            top_n: usize::MAX >> 1, // keep everything: inspect raw candidates
            max_candidates: 30,
            seed,
            threads: 1,
            ..DiscoveryConfig::default()
        };
        let report = discover_facts(model.as_ref(), &store, &config);
        for fact in &report.facts {
            let r = fact.triple.relation;
            prop_assert!(store
                .subject_index(r)
                .entities
                .contains(&fact.triple.subject));
            prop_assert!(store
                .object_index(r)
                .entities
                .contains(&fact.triple.object));
        }
    }
}
