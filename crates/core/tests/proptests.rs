//! Property-based tests of the fact-discovery invariants.

use fact_discovery::{
    compute_weights, discover_facts, fact_order, normalize_or_uniform, AliasSampler,
    CandidateStream, CdfSampler, DiscoveredFact, DiscoveryConfig, Measures, StrategyKind,
    TopKFacts,
};
use kgfd_embed::{new_model, ModelKind};
use kgfd_kg::{Side, Triple, TripleStore};
use proptest::prelude::*;
use rand::Rng;

const N: u32 = 10;
const K: u32 = 3;

fn arb_store() -> impl Strategy<Value = TripleStore> {
    proptest::collection::vec((0..N, 0..K, 0..N), 1..60).prop_map(|raw| {
        let triples = raw
            .into_iter()
            .map(|(s, r, o)| Triple::new(s, r, o))
            .collect();
        TripleStore::new(N as usize, K as usize, triples).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn weights_are_a_distribution_for_every_strategy(store in arb_store()) {
        for kind in StrategyKind::ALL {
            let m = Measures::compute(kind, &store);
            for r in store.used_relations() {
                for side in Side::BOTH {
                    let w = compute_weights(kind, &m, store.side_index(r, side));
                    prop_assert!(!w.is_empty());
                    let sum: f64 = w.iter().sum();
                    prop_assert!((sum - 1.0).abs() < 1e-9, "{kind}: {sum}");
                    prop_assert!(w.iter().all(|&x| (0.0..=1.0).contains(&x)));
                }
            }
        }
    }

    #[test]
    fn normalize_or_uniform_always_yields_distribution(
        weights in proptest::collection::vec(0.0f64..10.0, 1..40)
    ) {
        let w = normalize_or_uniform(weights);
        let sum: f64 = w.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn alias_sampler_stays_in_range(
        weights in proptest::collection::vec(0.0f64..10.0, 1..30),
        seed in 0u64..1000
    ) {
        let w = normalize_or_uniform(weights);
        let sampler = AliasSampler::new(&w);
        let mut rng = rand::SeedableRng::seed_from_u64(seed);
        for _ in 0..100 {
            let i = sampler.sample(&mut rng);
            prop_assert!(i < w.len());
            // Never sample a zero-weight item.
            prop_assert!(w[i] > 0.0 || w.iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn alias_and_cdf_samplers_agree_on_arbitrary_weights(
        weights in proptest::collection::vec(0.0f64..10.0, 1..20),
        seed in 0u64..1000
    ) {
        // Both samplers target the same normalized distribution, so their
        // empirical frequencies over many draws must match each other (and
        // the target) within statistical tolerance.
        const DRAWS: usize = 20_000;
        let n = weights.len();
        let alias = AliasSampler::new(&weights);
        let cdf = CdfSampler::new(&weights);
        let mut rng_a = rand::SeedableRng::seed_from_u64(seed);
        let mut rng_c = rand::SeedableRng::seed_from_u64(seed.wrapping_add(1));
        let mut freq_a = vec![0.0f64; n];
        let mut freq_c = vec![0.0f64; n];
        for _ in 0..DRAWS {
            freq_a[alias.sample(&mut rng_a)] += 1.0 / DRAWS as f64;
            freq_c[cdf.sample(&mut rng_c)] += 1.0 / DRAWS as f64;
        }
        let target = normalize_or_uniform(weights);
        for i in 0..n {
            prop_assert!(
                (freq_a[i] - freq_c[i]).abs() < 0.03,
                "samplers disagree at {i}: alias {} vs cdf {}", freq_a[i], freq_c[i]
            );
            prop_assert!(
                (freq_a[i] - target[i]).abs() < 0.03,
                "alias off-target at {i}: {} vs {}", freq_a[i], target[i]
            );
            prop_assert!(
                (freq_c[i] - target[i]).abs() < 0.03,
                "cdf off-target at {i}: {} vs {}", freq_c[i], target[i]
            );
        }
    }

    #[test]
    fn zero_weight_items_are_never_drawn_by_either_sampler(
        raw in proptest::collection::vec((0.1f64..10.0, 0u8..2), 1..20),
        seed in 0u64..1000
    ) {
        // Mask a random subset of weights to exactly zero; as long as one
        // weight stays positive (we force index 0 if the mask covered
        // everything — all-zero triggers the uniform fallback instead), a
        // masked index must never surface from either sampler.
        let mut weights: Vec<f64> = raw
            .iter()
            .map(|&(w, masked)| if masked == 1 { 0.0 } else { w })
            .collect();
        if weights.iter().all(|&w| w == 0.0) {
            weights[0] = raw[0].0;
        }
        let alias = AliasSampler::new(&weights);
        let cdf = CdfSampler::new(&weights);
        let mut rng = rand::SeedableRng::seed_from_u64(seed);
        for _ in 0..2_000 {
            let a = alias.sample(&mut rng);
            prop_assert!(weights[a] > 0.0, "alias drew zero-weight index {a}");
            let c = cdf.sample(&mut rng);
            prop_assert!(weights[c] > 0.0, "cdf drew zero-weight index {c}");
        }
    }

    #[test]
    fn discovery_invariants_hold_on_untrained_models(store in arb_store(), seed in 0u64..100) {
        // Even with random embeddings the structural invariants must hold.
        let model = new_model(ModelKind::DistMult, N as usize, K as usize, 8, seed);
        let config = DiscoveryConfig {
            strategy: StrategyKind::EntityFrequency,
            top_n: 5,
            max_candidates: 20,
            seed,
            threads: 1,
            ..DiscoveryConfig::default()
        };
        let report = discover_facts(model.as_ref(), &store, &config);
        let mut seen = std::collections::HashSet::new();
        for fact in &report.facts {
            prop_assert!(!store.contains(&fact.triple), "facts must be novel");
            prop_assert!(fact.rank >= 1.0 && fact.rank <= N as f64);
            prop_assert!(fact.rank <= 5.0, "top_n filter");
            prop_assert!(seen.insert(fact.triple), "facts must be unique");
        }
        for rel in &report.per_relation {
            prop_assert!(rel.candidates <= 20);
            prop_assert!(rel.facts <= rel.candidates);
            prop_assert!(rel.iterations <= 5);
        }
        prop_assert!(report.mrr() <= 1.0);
    }

    #[test]
    fn seeded_fxhash_dedup_matches_std_hashset_dedup(
        raw in proptest::collection::vec((0..N, 0..K, 0..N), 0..80),
        seed in 0u64..1000
    ) {
        // The candidate-generation loop dedups triples through a seeded
        // FxHashSet; first-seen filtering must behave exactly like the std
        // HashSet it replaced, for any stream and any hasher seed.
        let stream: Vec<Triple> = raw.into_iter().map(|(s, r, o)| Triple::new(s, r, o)).collect();
        let mut fx: fxhash::FxHashSet<Triple> = fxhash::FxHashSet::with_capacity_and_hasher(
            stream.len() * 2,
            fxhash::FxBuildHasher::seeded(seed),
        );
        let mut std_set = std::collections::HashSet::new();
        let kept_fx: Vec<Triple> = stream.iter().copied().filter(|t| fx.insert(*t)).collect();
        let kept_std: Vec<Triple> =
            stream.iter().copied().filter(|t| std_set.insert(*t)).collect();
        prop_assert_eq!(&kept_fx, &kept_std);
        prop_assert_eq!(fx.len(), std_set.len());
        for t in &stream {
            prop_assert_eq!(fx.contains(t), std_set.contains(t));
        }
    }

    #[test]
    fn top_k_heap_is_arrival_order_invariant(
        raw in proptest::collection::vec((0..N, 0..K, 0..N, 0u32..20), 1..40),
        cap in 0usize..12,
        seed in 0u64..1000,
    ) {
        // The heap's keep-set is defined by the total order
        // (rank, s, r, o) alone: permuting arrival order must never change
        // WHICH facts survive, even with heavy rank ties. (Emission order
        // tracks arrival by design, so compare sorted.)
        let mut facts: Vec<DiscoveredFact> = Vec::new();
        let mut distinct = std::collections::HashSet::new();
        for (s, r, o, rank) in raw {
            let triple = Triple::new(s, r, o);
            if distinct.insert(triple) {
                // Coarse ranks force plenty of exact ties.
                facts.push(DiscoveredFact { triple, rank: (rank / 4) as f64 });
            }
        }

        // Expected keep-set: the `cap` smallest under the total order.
        let mut expected = facts.clone();
        expected.sort_by(fact_order);
        expected.truncate(cap);

        let mut base = TopKFacts::new(Some(cap));
        for f in &facts {
            base.push(*f);
        }
        let mut base_kept = base.into_ordered();
        base_kept.sort_by(fact_order);
        prop_assert_eq!(&base_kept, &expected, "kept set is not the k best");

        // Fisher–Yates permutation of the arrival order.
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(seed);
        let mut shuffled = facts.clone();
        for i in (1..shuffled.len()).rev() {
            let j = rng.random_range(0..=i);
            shuffled.swap(i, j);
        }
        let mut heap = TopKFacts::new(Some(cap));
        for f in &shuffled {
            heap.push(*f);
        }
        let mut kept = heap.into_ordered();
        kept.sort_by(fact_order);
        prop_assert_eq!(&kept, &expected, "arrival order changed the kept set");
    }

    #[test]
    fn candidate_stream_is_unique_novel_and_chunking_invariant(
        store in arb_store(),
        seed in 0u64..100,
        chunk in 1usize..40,
    ) {
        let config = DiscoveryConfig {
            strategy: StrategyKind::EntityFrequency,
            max_candidates: 25,
            seed,
            threads: 1,
            ..DiscoveryConfig::default()
        };
        let measures = Measures::compute(config.strategy, &store);
        for r in store.used_relations() {
            let stream =
                CandidateStream::for_relation(&store, &config, r, &measures, None, None).unwrap();
            let all: Vec<Triple> = stream.collect();
            prop_assert!(all.len() <= config.max_candidates, "budget exceeded");
            let mut seen = std::collections::HashSet::new();
            for t in &all {
                prop_assert!(!store.contains(t), "yielded an existing triple");
                prop_assert!(seen.insert(*t), "duplicate candidate {t:?}");
                prop_assert_eq!(t.relation, r);
            }

            // Pulling in arbitrary chunk sizes must reproduce the exact
            // one-by-one sequence, and the bookkeeping must match.
            let mut chunked_stream =
                CandidateStream::for_relation(&store, &config, r, &measures, None, None).unwrap();
            let mut chunked = Vec::new();
            loop {
                let before = chunked.len();
                chunked_stream.fill_chunk(&mut chunked, before + chunk);
                if chunked.len() == before {
                    break;
                }
            }
            prop_assert_eq!(&chunked, &all);
            prop_assert_eq!(chunked_stream.produced(), all.len());
            prop_assert!(chunked_stream.iterations() <= config.max_iterations);
        }
    }

    #[test]
    fn sampled_entities_come_from_relation_pools(store in arb_store(), seed in 0u64..50) {
        let model = new_model(ModelKind::TransE, N as usize, K as usize, 8, seed);
        let config = DiscoveryConfig {
            strategy: StrategyKind::GraphDegree,
            top_n: usize::MAX >> 1, // keep everything: inspect raw candidates
            max_candidates: 30,
            seed,
            threads: 1,
            ..DiscoveryConfig::default()
        };
        let report = discover_facts(model.as_ref(), &store, &config);
        for fact in &report.facts {
            let r = fact.triple.relation;
            prop_assert!(store
                .subject_index(r)
                .entities
                .contains(&fact.triple.subject));
            prop_assert!(store
                .object_index(r)
                .entities
                .contains(&fact.triple.object));
        }
    }
}
