//! The streaming candidate path: generator-driven, bounded-memory building
//! blocks behind [`crate::discover_facts`].
//!
//! Three pieces:
//!
//! * [`CandidateStream`] — Algorithm 1's generation loop (lines 4–13) as a
//!   resumable iterator. It consumes the per-relation RNG stream in exactly
//!   the order the materialized loop does (all `sample_size` subject draws,
//!   then all object draws, then the subject-major mesh walk), so the
//!   sequence of candidates is *bit-identical* to
//!   [`crate::discover_facts_materialized`] at any chunking.
//! * [`TopKFacts`] — a bounded max-heap keeping the `k` best facts under
//!   the total order `(rank, subject, relation, object)` (ranks compared
//!   with `f64::total_cmp`; the id triple breaks rank ties, and distinct
//!   triples make the key unique, so the kept set is independent of arrival
//!   order). Kept facts are emitted in generation order, which makes an
//!   unbounded heap (`top_k = None`) literally reproduce the materialized
//!   fact vector.
//! * [`cached_measures`] — a process-wide cache of the strategy measure
//!   tables keyed by `(graph fingerprint, strategy)`, so grid/sweep cells
//!   that revisit the same graph stop recomputing the superlinear
//!   triangle/coefficient/PageRank tables.

use crate::{
    compute_weights, AliasSampler, CandidateRules, DiscoveredFact, DiscoveryConfig, Measures,
    StrategyKind,
};
use fxhash::{FxBuildHasher, FxHashSet};
use kgfd_kg::{EntityId, KgError, RelationId, SideIndex, Triple, TripleStore};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::sync::{Arc, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// Candidate stream
// ---------------------------------------------------------------------------

/// Deterministic candidate iterator for one relation — the generation loop
/// of Algorithm 1 in resumable form. Yields each candidate triple exactly
/// once (never a triple already in the graph), respects the
/// `max_candidates` budget and the `max_iterations` bound, and tracks the
/// same bookkeeping (`iterations`, `pruned`) as the materialized loop.
pub struct CandidateStream<'a> {
    store: &'a TripleStore,
    rules: Option<&'a CandidateRules>,
    relation: RelationId,
    subject_pool: &'a SideIndex,
    object_pool: &'a SideIndex,
    /// `None` when either pool is empty: the stream is born exhausted.
    samplers: Option<(AliasSampler, AliasSampler)>,
    rng: StdRng,
    seen: FxHashSet<Triple>,
    sample_size: usize,
    max_candidates: usize,
    max_iterations: usize,
    s_samples: Vec<EntityId>,
    o_samples: Vec<EntityId>,
    si: usize,
    oi: usize,
    produced: usize,
    iterations: usize,
    pruned: usize,
}

impl<'a> CandidateStream<'a> {
    /// Builds the stream for relation `r`: resolves the side pools
    /// (per-relation, or the consolidated graph-global ones), computes the
    /// strategy weights, applies the exploration mix, and seeds the
    /// relation's independent RNG stream — the exact preparation the
    /// materialized path performs.
    ///
    /// Returns [`KgError::NonFiniteWeight`] if the computed weights contain
    /// a NaN or infinity (impossible for the built-in strategies, which
    /// normalize defensively, but enforced at the sampler boundary).
    pub fn for_relation(
        store: &'a TripleStore,
        config: &DiscoveryConfig,
        r: RelationId,
        measures: &Measures,
        rules: Option<&'a CandidateRules>,
        consolidated: Option<&'a (SideIndex, SideIndex)>,
    ) -> Result<CandidateStream<'a>, KgError> {
        // Independent stream per relation: results do not depend on which
        // other relations run or in what order.
        let stream_seed = config
            .seed
            .wrapping_add((r.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let (subject_pool, object_pool) = match consolidated {
            Some((s_pool, o_pool)) => (s_pool, o_pool),
            None => (store.subject_index(r), store.object_index(r)),
        };
        let samplers = if subject_pool.is_empty() || object_pool.is_empty() {
            None
        } else {
            let mut s_weights = compute_weights(config.strategy, measures, subject_pool);
            let mut o_weights = compute_weights(config.strategy, measures, object_pool);
            if config.exploration_epsilon > 0.0 {
                crate::discover::mix_uniform(&mut s_weights, config.exploration_epsilon);
                crate::discover::mix_uniform(&mut o_weights, config.exploration_epsilon);
            }
            Some((
                AliasSampler::try_new(&s_weights)?,
                AliasSampler::try_new(&o_weights)?,
            ))
        };
        // Line 4: the mesh grid is sample_size², so √max_candidates (+10
        // slack) entities per side fill the budget in one iteration in
        // expectation.
        let sample_size = (config.max_candidates as f64).sqrt() as usize + 10;
        Ok(CandidateStream {
            store,
            rules,
            relation: r,
            subject_pool,
            object_pool,
            samplers,
            rng: StdRng::seed_from_u64(stream_seed),
            // Seeded fast-hash dedup: candidate volume is bounded by
            // `max_candidates`, so pre-size the set to skip rehashing; the
            // seed keeps bucket layout independent of any ambient hasher
            // randomisation.
            seen: FxHashSet::with_capacity_and_hasher(
                config.max_candidates * 2,
                FxBuildHasher::seeded(stream_seed),
            ),
            sample_size,
            max_candidates: config.max_candidates,
            max_iterations: config.max_iterations,
            s_samples: Vec::new(),
            o_samples: Vec::new(),
            si: 0,
            oi: 0,
            produced: 0,
            iterations: 0,
            pruned: 0,
        })
    }

    /// Appends candidates to `out` until it holds `chunk_size` entries or
    /// the stream is exhausted. `out` is the caller's reusable buffer — the
    /// only per-chunk allocation site — so the live candidate footprint is
    /// bounded by `chunk_size` regardless of `max_candidates`.
    pub fn fill_chunk(&mut self, out: &mut Vec<Triple>, chunk_size: usize) {
        while out.len() < chunk_size {
            match self.next_candidate() {
                Some(t) => out.push(t),
                None => break,
            }
        }
    }

    /// Yields the next candidate triple, or `None` when the budget is
    /// spent, the iteration bound is hit, or a pool is empty.
    pub fn next_candidate(&mut self) -> Option<Triple> {
        let (s_sampler, o_sampler) = self.samplers.as_ref()?;
        loop {
            if self.produced >= self.max_candidates {
                return None;
            }
            // Lines 11–13: walk the current mesh grid subject-major,
            // skipping known triples, duplicates, and rule-pruned ones.
            while self.si < self.s_samples.len() {
                while self.oi < self.o_samples.len() {
                    let t = Triple {
                        subject: self.s_samples[self.si],
                        relation: self.relation,
                        object: self.o_samples[self.oi],
                    };
                    self.oi += 1;
                    if self.store.contains(&t) || !self.seen.insert(t) {
                        continue;
                    }
                    if let Some(rules) = self.rules {
                        if !rules.admits(self.store, &t) {
                            self.pruned += 1;
                            continue;
                        }
                    }
                    self.produced += 1;
                    return Some(t);
                }
                self.si += 1;
                self.oi = 0;
            }
            // Mesh exhausted: draw the next iteration's samples, or stop.
            if self.iterations >= self.max_iterations {
                return None;
            }
            self.iterations += 1;
            self.s_samples = (0..self.sample_size)
                .map(|_| self.subject_pool.entities[s_sampler.sample(&mut self.rng)])
                .collect();
            self.o_samples = (0..self.sample_size)
                .map(|_| self.object_pool.entities[o_sampler.sample(&mut self.rng)])
                .collect();
            self.si = 0;
            self.oi = 0;
        }
    }

    /// The relation this stream generates candidates for.
    pub fn relation(&self) -> RelationId {
        self.relation
    }

    /// Candidates yielded so far (≤ `max_candidates`).
    pub fn produced(&self) -> usize {
        self.produced
    }

    /// Generation-loop iterations consumed so far (≤ `max_iterations`).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Candidates rejected by the structural pruning rules so far.
    pub fn pruned(&self) -> usize {
        self.pruned
    }
}

impl Iterator for CandidateStream<'_> {
    type Item = Triple;

    fn next(&mut self) -> Option<Triple> {
        self.next_candidate()
    }
}

// ---------------------------------------------------------------------------
// Bounded top-k fact heap
// ---------------------------------------------------------------------------

/// The total order deciding which facts a bounded [`TopKFacts`] keeps:
/// ascending `(rank, subject, relation, object)` — lower is better. Ranks
/// use `f64::total_cmp`; the id triple breaks exact rank ties, and since
/// candidate triples are distinct the key is unique, making the kept set
/// independent of arrival order.
pub fn fact_order(a: &DiscoveredFact, b: &DiscoveredFact) -> Ordering {
    a.rank
        .total_cmp(&b.rank)
        .then(a.triple.subject.0.cmp(&b.triple.subject.0))
        .then(a.triple.relation.0.cmp(&b.triple.relation.0))
        .then(a.triple.object.0.cmp(&b.triple.object.0))
}

struct HeapEntry {
    fact: DiscoveredFact,
    /// Arrival number of this fact, used to restore generation order at
    /// emission so the streaming path's fact vector matches the
    /// materialized one byte for byte.
    seq: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        fact_order(&self.fact, &other.fact) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        fact_order(&self.fact, &other.fact)
    }
}

/// Fixed-capacity collection of the best facts seen so far — a max-heap on
/// [`fact_order`] whose root is the *worst* kept fact, evicted whenever a
/// better one arrives. With `capacity = None` nothing is ever evicted and
/// [`TopKFacts::into_ordered`] reproduces insertion order exactly.
pub struct TopKFacts {
    cap: usize,
    heap: BinaryHeap<HeapEntry>,
    next_seq: usize,
}

impl TopKFacts {
    /// A heap keeping at most `capacity` facts (`None` = unbounded).
    pub fn new(capacity: Option<usize>) -> Self {
        let cap = capacity.unwrap_or(usize::MAX);
        TopKFacts {
            cap,
            heap: BinaryHeap::with_capacity(cap.min(1024)),
            next_seq: 0,
        }
    }

    /// Offers a fact; returns `true` if it was kept (possibly evicting the
    /// currently-worst fact under [`fact_order`]).
    pub fn push(&mut self, fact: DiscoveredFact) -> bool {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.cap == 0 {
            return false;
        }
        if self.heap.len() < self.cap {
            self.heap.push(HeapEntry { fact, seq });
            return true;
        }
        let worst = self.heap.peek().expect("cap > 0 and heap full");
        if fact_order(&fact, &worst.fact) == Ordering::Less {
            self.heap.pop();
            self.heap.push(HeapEntry { fact, seq });
            true
        } else {
            false
        }
    }

    /// Number of facts currently kept.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing has been kept.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The kept facts in their original arrival (generation) order.
    pub fn into_ordered(self) -> Vec<DiscoveredFact> {
        let mut entries = self.heap.into_vec();
        entries.sort_unstable_by_key(|e| e.seq);
        entries.into_iter().map(|e| e.fact).collect()
    }
}

// ---------------------------------------------------------------------------
// Measure cache
// ---------------------------------------------------------------------------

/// Entries kept before the cache is cleared wholesale. Measure tables are a
/// `Vec<f64>` per entity, so 64 graph×strategy combinations bound the cache
/// at a few MB for the synthetic datasets while covering every grid/sweep
/// run many times over.
const MEASURE_CACHE_CAP: usize = 64;

type MeasureCache = Mutex<HashMap<(u64, StrategyKind), Arc<Measures>>>;

static MEASURE_CACHE: OnceLock<MeasureCache> = OnceLock::new();

/// The strategy's measure table for `store`, computed at most once per
/// `(graph fingerprint, strategy)` process-wide. Repeat discovery runs on
/// the same graph — grid cells iterating strategies, sweep cells iterating
/// `max_candidates`/`top_n` — hit the cache instead of recomputing the
/// superlinear triangle/coefficient/PageRank tables. Hits and misses are
/// counted on `discover.cache.measures_hit` / `discover.cache.measures_miss`.
///
/// Pool-local strategies (UNIFORM RANDOM, ENTITY FREQUENCY) have no global
/// table and bypass the cache entirely.
pub fn cached_measures(strategy: StrategyKind, store: &TripleStore) -> Arc<Measures> {
    if matches!(
        strategy,
        StrategyKind::UniformRandom | StrategyKind::EntityFrequency
    ) {
        return Arc::new(Measures::PoolLocal);
    }
    let key = (store.fingerprint(), strategy);
    let cache = MEASURE_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().expect("measure cache lock").get(&key) {
        kgfd_obs::counter("discover.cache.measures_hit").inc();
        return Arc::clone(hit);
    }
    kgfd_obs::counter("discover.cache.measures_miss").inc();
    // Compute outside the lock: concurrent misses on the same key both
    // compute (deterministically equal tables) and the first insert wins.
    let computed = Arc::new(Measures::compute(strategy, store));
    let mut guard = cache.lock().expect("measure cache lock");
    if guard.len() >= MEASURE_CACHE_CAP && !guard.contains_key(&key) {
        guard.clear();
    }
    Arc::clone(guard.entry(key).or_insert(computed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgfd_kg::Triple;

    fn fact(s: u32, r: u32, o: u32, rank: f64) -> DiscoveredFact {
        DiscoveredFact {
            triple: Triple::new(s, r, o),
            rank,
        }
    }

    #[test]
    fn unbounded_heap_preserves_insertion_order() {
        let mut top = TopKFacts::new(None);
        let facts = [fact(3, 0, 1, 5.0), fact(1, 0, 2, 2.0), fact(2, 1, 0, 9.0)];
        for f in facts {
            assert!(top.push(f));
        }
        assert_eq!(top.into_ordered(), facts.to_vec());
    }

    #[test]
    fn bounded_heap_keeps_the_k_best_and_evicts_the_worst() {
        let mut top = TopKFacts::new(Some(2));
        assert!(top.push(fact(0, 0, 1, 7.0)));
        assert!(top.push(fact(0, 0, 2, 3.0)));
        // Better than the worst kept (rank 7): evict it.
        assert!(top.push(fact(0, 0, 3, 5.0)));
        // Worse than everything kept: rejected.
        assert!(!top.push(fact(0, 0, 4, 9.0)));
        let kept = top.into_ordered();
        assert_eq!(kept, vec![fact(0, 0, 2, 3.0), fact(0, 0, 3, 5.0)]);
    }

    #[test]
    fn rank_ties_break_on_subject_relation_object() {
        let mut top = TopKFacts::new(Some(1));
        assert!(top.push(fact(5, 1, 1, 4.0)));
        // Same rank, smaller subject: wins the tie.
        assert!(top.push(fact(2, 9, 9, 4.0)));
        // Same rank and subject, larger relation: loses.
        assert!(!top.push(fact(2, 10, 0, 4.0)));
        assert_eq!(top.into_ordered(), vec![fact(2, 9, 9, 4.0)]);
    }

    #[test]
    fn zero_capacity_keeps_nothing() {
        let mut top = TopKFacts::new(Some(0));
        assert!(!top.push(fact(0, 0, 1, 1.0)));
        assert!(top.is_empty());
        assert!(top.into_ordered().is_empty());
    }

    #[test]
    fn cached_measures_returns_the_same_table_for_the_same_graph() {
        let store = TripleStore::new(
            4,
            1,
            vec![
                Triple::new(0u32, 0u32, 1u32),
                Triple::new(1u32, 0u32, 2u32),
                Triple::new(2u32, 0u32, 0u32),
            ],
        )
        .unwrap();
        let a = cached_measures(StrategyKind::ClusteringTriangles, &store);
        let b = cached_measures(StrategyKind::ClusteringTriangles, &store);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be a cache hit");
        // The cached table matches a direct computation.
        let direct = Measures::compute(StrategyKind::ClusteringTriangles, &store);
        for e in 0..4 {
            let e = kgfd_kg::EntityId(e);
            assert_eq!(a.value(e), direct.value(e));
        }
        // Pool-local strategies bypass the cache.
        let p = cached_measures(StrategyKind::UniformRandom, &store);
        assert!(matches!(*p, Measures::PoolLocal));
    }
}
