//! Weighted sampling of pool indices.
//!
//! The discovery inner loop draws `sample_size` entities per side per
//! iteration, so draw cost matters. [`AliasSampler`] (Walker's method) pays
//! O(n) once and O(1) per draw; [`CdfSampler`] is the textbook O(log n)
//! binary-search alternative kept for the `ablation_sampler` bench.

use kgfd_kg::KgError;
use rand::rngs::StdRng;
use rand::Rng;

/// Walker alias-method sampler over `0..n` with fixed weights.
#[derive(Debug, Clone)]
pub struct AliasSampler {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasSampler {
    /// Builds the alias table from non-negative weights. Weights are
    /// normalized defensively — callers conventionally pass a distribution
    /// summing to ~1, but an unnormalized vector would otherwise build a
    /// silently skewed table. A degenerate vector (all-zero or non-finite
    /// sum) falls back to the uniform distribution, mirroring
    /// `normalize_or_uniform`. Panics on an empty weight vector.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "cannot sample from an empty pool");
        let n = weights.len();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        let total: f64 = weights.iter().sum();
        let mut scaled: Vec<f64> = if total > 0.0 && total.is_finite() {
            weights.iter().map(|w| w / total * n as f64).collect()
        } else {
            vec![1.0; n]
        };

        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers (numerical slack) get probability 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        AliasSampler { prob, alias }
    }

    /// [`AliasSampler::new`] with the weight vector validated first:
    /// returns a typed [`KgError::NonFiniteWeight`] instead of silently
    /// falling back to the uniform distribution when a weight is NaN or
    /// infinite, and [`KgError::Invariant`] for an empty pool.
    pub fn try_new(weights: &[f64]) -> Result<Self, KgError> {
        if weights.is_empty() {
            return Err(KgError::Invariant(
                "cannot sample from an empty pool".into(),
            ));
        }
        crate::validate_weights(weights)?;
        Ok(AliasSampler::new(weights))
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// `true` when the pool is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index in O(1).
    #[inline]
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let i = rng.random_range(0..self.prob.len());
        if rng.random::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// CDF + binary-search sampler (O(n) build, O(log n) draw) — the baseline
/// the alias method is benchmarked against.
#[derive(Debug, Clone)]
pub struct CdfSampler {
    cdf: Vec<f64>,
    /// Index drawn when `u` lands beyond the final CDF value
    /// (floating-point summation slack): the last index with positive
    /// weight, so rounding can never surface a zero-weight item.
    overflow: usize,
}

impl CdfSampler {
    /// Builds the cumulative distribution from non-negative weights. A
    /// degenerate vector (all-zero or non-finite sum) falls back to the
    /// uniform distribution, mirroring `normalize_or_uniform` — previously
    /// the zero-total CDF was left unnormalized at all-zeros, which made
    /// `sample()` always return the last index. Panics on an empty weight
    /// vector.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "cannot sample from an empty pool");
        let n = weights.len();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(n);
        if total > 0.0 && total.is_finite() {
            let mut acc = 0.0;
            for &w in weights {
                acc += w;
                cdf.push(acc / total);
            }
            let overflow = weights
                .iter()
                .rposition(|&w| w > 0.0)
                .expect("positive total implies a positive weight");
            CdfSampler { cdf, overflow }
        } else {
            for i in 0..n {
                cdf.push((i + 1) as f64 / n as f64);
            }
            CdfSampler {
                cdf,
                overflow: n - 1,
            }
        }
    }

    /// [`CdfSampler::new`] with the weight vector validated first — see
    /// [`AliasSampler::try_new`].
    pub fn try_new(weights: &[f64]) -> Result<Self, KgError> {
        if weights.is_empty() {
            return Err(KgError::Invariant(
                "cannot sample from an empty pool".into(),
            ));
        }
        crate::validate_weights(weights)?;
        Ok(CdfSampler::new(weights))
    }

    /// Draws one index in O(log n).
    #[inline]
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random();
        let i = self.cdf.partition_point(|&c| c <= u);
        if i < self.cdf.len() {
            i
        } else {
            self.overflow
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn empirical(weights: &[f64], draws: usize, seed: u64) -> Vec<f64> {
        let sampler = AliasSampler::new(weights);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[sampler.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn alias_matches_target_distribution() {
        let weights = [0.5, 0.25, 0.125, 0.125];
        let freq = empirical(&weights, 100_000, 1);
        for (f, w) in freq.iter().zip(&weights) {
            assert!((f - w).abs() < 0.01, "freq {f} vs weight {w}");
        }
    }

    #[test]
    fn alias_handles_degenerate_distribution() {
        let weights = [0.0, 1.0, 0.0];
        let freq = empirical(&weights, 10_000, 2);
        assert_eq!(freq[1], 1.0);
    }

    #[test]
    fn alias_single_item() {
        let sampler = AliasSampler::new(&[1.0]);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(sampler.sample(&mut rng), 0);
        assert_eq!(sampler.len(), 1);
    }

    #[test]
    fn cdf_matches_target_distribution() {
        let weights = [0.1, 0.2, 0.7];
        let sampler = CdfSampler::new(&weights);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for _ in 0..50_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        for (c, w) in counts.iter().zip(&weights) {
            let f = *c as f64 / 50_000.0;
            assert!((f - w).abs() < 0.01);
        }
    }

    #[test]
    #[should_panic(expected = "empty pool")]
    fn empty_weights_panic() {
        AliasSampler::new(&[]);
    }

    #[test]
    fn cdf_zero_total_falls_back_to_uniform() {
        // Regression: the zero-total CDF used to stay all-zeros, so every
        // draw returned the last index.
        let sampler = CdfSampler::new(&[0.0, 0.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            let f = c as f64 / 30_000.0;
            assert!((f - 1.0 / 3.0).abs() < 0.02, "freq {f} not ~uniform");
        }
    }

    #[test]
    fn alias_zero_total_falls_back_to_uniform() {
        let sampler = AliasSampler::new(&[0.0, 0.0]);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 2];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        let f = counts[0] as f64 / 20_000.0;
        assert!((f - 0.5).abs() < 0.02, "freq {f} not ~uniform");
    }

    #[test]
    fn alias_normalizes_unnormalized_weights() {
        // Regression: weights summing to 8 used to be scaled by n instead
        // of normalized, silently skewing the table.
        let freq = empirical(&[2.0, 6.0], 50_000, 6);
        assert!((freq[0] - 0.25).abs() < 0.01, "freq {} vs 0.25", freq[0]);
        assert!((freq[1] - 0.75).abs() < 0.01, "freq {} vs 0.75", freq[1]);
    }

    #[test]
    fn try_new_rejects_non_finite_weights_with_a_typed_error() {
        // Regression: a NaN weight used to propagate into the running total
        // and trip the degenerate-sum fallback, so both samplers silently
        // replaced the caller's distribution with the uniform one.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            match AliasSampler::try_new(&[0.5, bad]) {
                Err(KgError::NonFiniteWeight { index: 1, .. }) => {}
                other => panic!("alias: expected NonFiniteWeight, got {other:?}"),
            }
            match CdfSampler::try_new(&[0.5, bad]) {
                Err(KgError::NonFiniteWeight { index: 1, .. }) => {}
                other => panic!("cdf: expected NonFiniteWeight, got {other:?}"),
            }
        }
        assert!(matches!(
            AliasSampler::try_new(&[]),
            Err(KgError::Invariant(_))
        ));
        assert!(matches!(
            CdfSampler::try_new(&[]),
            Err(KgError::Invariant(_))
        ));
        assert!(AliasSampler::try_new(&[1.0, 2.0]).is_ok());
        assert!(
            CdfSampler::try_new(&[0.0, 0.0]).is_ok(),
            "zero-sum is legal"
        );
    }

    #[test]
    fn cdf_zero_weight_items_are_never_drawn() {
        let sampler = CdfSampler::new(&[0.0, 1.0, 0.0, 2.0]);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20_000 {
            let i = sampler.sample(&mut rng);
            assert!(i == 1 || i == 3, "drew zero-weight index {i}");
        }
    }
}
